#!/usr/bin/env bash
# One-command smoke check: tier-1 tests, a quick CLI experiment run (serial
# and process execution backends), and artifact validation.  Intended as the
# CI entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
ARTIFACT="${1:-/tmp/repro-smoke-table1.json}"
BACKEND_ARTIFACT="${2:-/tmp/repro-smoke-lis-process.json}"

echo "== tier-1 test-suite =="
python -m pytest -x -q

echo
echo "== experiment registry =="
python -m repro list

echo
echo "== quick table1 run -> ${ARTIFACT} =="
python -m repro run table1 --quick --json "${ARTIFACT}"

echo
echo "== quick lis_rounds run on the process execution backend -> ${BACKEND_ARTIFACT} =="
python -m repro run lis_rounds --quick --backend process --json "${BACKEND_ARTIFACT}"

echo
echo "== artifact schema validation =="
python -m repro validate "${ARTIFACT}"
python -m repro validate "${BACKEND_ARTIFACT}"

echo
echo "smoke: OK"
