#!/usr/bin/env bash
# One-command smoke check: tier-1 tests, a quick CLI experiment run (serial
# and process execution backends), a serving batch-mode smoke (build ->
# cached re-query -> artifact validate), a streaming cold/warm cycle
# (sliding-window session -> artifact validate), a quick perf pass gated
# against the recorded results/perf_core.json baseline (cpu-normalised
# regression check + the >= speedup floor), and schema validation of every
# artifact — the freshly written ones and everything recorded under
# results/.  Intended as the CI entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
ARTIFACT="${1:-/tmp/repro-smoke-table1.json}"
BACKEND_ARTIFACT="${2:-/tmp/repro-smoke-lis-process.json}"
SERVE_ARTIFACT="${3:-/tmp/repro-smoke-serve.json}"
SERVICE_ARTIFACT="${4:-/tmp/repro-smoke-service-throughput.json}"
STREAM_ARTIFACT="${5:-/tmp/repro-smoke-stream.json}"
STREAMING_ARTIFACT="${6:-/tmp/repro-smoke-streaming-throughput.json}"
PERF_ARTIFACT="${7:-/tmp/repro-smoke-perf.json}"

echo "== tier-1 test-suite =="
python -m pytest -x -q

echo
echo "== experiment registry =="
python -m repro list

echo
echo "== quick table1 run -> ${ARTIFACT} =="
python -m repro run table1 --quick --json "${ARTIFACT}"

echo
echo "== quick lis_rounds run on the process execution backend -> ${BACKEND_ARTIFACT} =="
python -m repro run lis_rounds --quick --backend process --json "${BACKEND_ARTIFACT}"

echo
echo "== quick service_throughput run (serial/thread/process grid) -> ${SERVICE_ARTIFACT} =="
python -m repro run service_throughput --quick --json "${SERVICE_ARTIFACT}"

echo
echo "== serve batch mode: build, cached re-query -> ${SERVE_ARTIFACT} =="
python -m repro serve --requests examples/service_requests.json --repeat 2 \
    --artifact "${SERVE_ARTIFACT}"

echo
echo "== quick streaming_throughput run (serial/thread/process grid) -> ${STREAMING_ARTIFACT} =="
python -m repro run streaming_throughput --quick --json "${STREAMING_ARTIFACT}"

echo
echo "== stream cold/warm cycle: warm build, sliding ticks -> ${STREAM_ARTIFACT} =="
python -m repro stream --window 512 --ticks 4 --slide 64 --seed 7 \
    --artifact "${STREAM_ARTIFACT}"
python -m repro stream --session lcs --window 128 --ticks 3 --slide 16 --seed 7

echo
echo "== quick perf pass, gated against results/perf_core.json -> ${PERF_ARTIFACT} =="
python -m repro perf --quick --json "${PERF_ARTIFACT}"

echo
echo "== artifact schema validation (fresh runs + everything in results/) =="
python -m repro validate "${ARTIFACT}"
python -m repro validate "${BACKEND_ARTIFACT}"
python -m repro validate "${SERVICE_ARTIFACT}"
python -m repro validate "${SERVE_ARTIFACT}"
python -m repro validate "${STREAMING_ARTIFACT}"
python -m repro validate "${STREAM_ARTIFACT}"
python -m repro validate "${PERF_ARTIFACT}"
for recorded in results/*.json; do
    python -m repro validate "${recorded}"
done

echo
echo "smoke: OK"
