#!/usr/bin/env bash
# One-command smoke check: tier-1 tests, a quick CLI experiment run (serial
# and process execution backends), a serving batch-mode smoke (build ->
# cached re-query -> artifact validate), an HTTP front-end smoke (serve-http
# in the background -> cold/warm POST cycle -> background build poll ->
# /metrics scrape with monotone-counter assertions + a scrape-interval
# self-test: two scrapes under traffic, counters monotone, gauges within
# bounds, exemplar annotations parsed and resolved via /debug/traces ->
# teardown even on failure), a sharded serve-http cycle (--shards 2: health
# poll, cold/warm POST, per-shard /stats assertions reconciled against the
# per-shard /metrics counters, trap teardown), a sampled serve-http cycle
# (1% head rate: sampler counters tick, /debug/slo reconciles with /stats,
# an SLO burn-rate artifact is recorded on shutdown and validated, and the
# --slo-history JSONL persists window rows across the restart boundary), a
# chaos serve-http cycle (--shards 2 under a seeded --fault-plan injecting
# a worker hang, a worker crash and spill corruption, with a 500 ms
# hung-worker timeout: every request answered or failed fast with a
# structured error, non-degraded answers bit-identical to a serial oracle,
# hang/restart/fault counters on /stats, worker-side fault fires merged
# into /metrics, and a 1 ms X-Repro-Deadline-Ms probe answering a
# structured 504), the
# quick service_latency load-generator spec, the quick shard_scaling spec
# (cross-shard-count answer checksum identity), a streaming cold/warm cycle
# (sliding-window session -> artifact validate), a quick perf pass gated
# against the recorded results/perf_core.json baseline (cpu-normalised
# regression check + the >= speedup floor) with a trend row appended and
# validated, the repro report renderer (ASCII tables + capacity planning +
# the --slo burn-rate summary, zero third-party deps), and schema
# validation of every artifact — the freshly written ones and everything
# recorded under results/.  Intended as the CI entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
ARTIFACT="${1:-/tmp/repro-smoke-table1.json}"
BACKEND_ARTIFACT="${2:-/tmp/repro-smoke-lis-process.json}"
SERVE_ARTIFACT="${3:-/tmp/repro-smoke-serve.json}"
SERVICE_ARTIFACT="${4:-/tmp/repro-smoke-service-throughput.json}"
STREAM_ARTIFACT="${5:-/tmp/repro-smoke-stream.json}"
STREAMING_ARTIFACT="${6:-/tmp/repro-smoke-streaming-throughput.json}"
PERF_ARTIFACT="${7:-/tmp/repro-smoke-perf.json}"
LATENCY_ARTIFACT="${8:-/tmp/repro-smoke-service-latency.json}"
SHARD_ARTIFACT="${9:-/tmp/repro-smoke-shard-scaling.json}"
TREND_LOG="${TREND_LOG:-/tmp/repro-smoke-perf-trend.jsonl}"
SERVE_HTTP_PORT="${SERVE_HTTP_PORT:-8077}"
SHARD_HTTP_PORT="${SHARD_HTTP_PORT:-8078}"
SLO_HTTP_PORT="${SLO_HTTP_PORT:-8079}"
CHAOS_HTTP_PORT="${CHAOS_HTTP_PORT:-8081}"
SLO_ARTIFACT="${SLO_ARTIFACT:-/tmp/repro-smoke-slo.json}"
SLO_HISTORY="${SLO_HISTORY:-/tmp/repro-smoke-slo-history.jsonl}"
CHAOS_PLAN="${CHAOS_PLAN:-/tmp/repro-smoke-fault-plan.json}"

SERVER_PID=""
cleanup() {
    # Tear the HTTP server down even when the smoke fails mid-flight.
    if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
        kill -INT "${SERVER_PID}" 2>/dev/null || true
        wait "${SERVER_PID}" 2>/dev/null || true
    fi
}
trap cleanup EXIT

echo "== tier-1 test-suite =="
python -m pytest -x -q

echo
echo "== experiment registry =="
python -m repro list

echo
echo "== quick table1 run -> ${ARTIFACT} =="
python -m repro run table1 --quick --json "${ARTIFACT}"

echo
echo "== quick lis_rounds run on the process execution backend -> ${BACKEND_ARTIFACT} =="
python -m repro run lis_rounds --quick --backend process --json "${BACKEND_ARTIFACT}"

echo
echo "== quick service_throughput run (serial/thread/process grid) -> ${SERVICE_ARTIFACT} =="
python -m repro run service_throughput --quick --json "${SERVICE_ARTIFACT}"

echo
echo "== serve batch mode: build, cached re-query -> ${SERVE_ARTIFACT} =="
python -m repro serve --requests examples/service_requests.json --repeat 2 \
    --artifact "${SERVE_ARTIFACT}"

echo
echo "== serve-http cycle: background server, cold/warm POST, build poll =="
python -m repro serve-http --port "${SERVE_HTTP_PORT}" --duration 60 &
SERVER_PID=$!
python - "${SERVE_HTTP_PORT}" <<'EOF'
import json
import sys
import time
import urllib.request

port = sys.argv[1]
base = f"http://127.0.0.1:{port}"


def call(method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


for attempt in range(100):
    try:
        call("GET", "/healthz")
        break
    except OSError:
        time.sleep(0.1)
else:
    sys.exit("serve-http did not come up within 10s")

document = {
    "schema": "repro.service.requests",
    "requests": [
        {"op": "lis_length", "id": "len", "workload": "random", "n": 1024, "seed": 7},
        {"op": "substring_query", "id": "sub", "workload": "random", "n": 1024,
         "seed": 7, "i": [0, 128], "j": [512, 1024]},
    ],
}
cold = call("POST", "/v2/batch", document)
assert cold["ok"] == 2 and cold["errors"] == 0, cold
assert not cold["results"][0]["cache_hit"], "cold POST unexpectedly hit the cache"
warm = call("POST", "/v2/batch", document)
assert all(entry["cache_hit"] for entry in warm["results"]), "warm POST missed the cache"
assert [e["result"] for e in cold["results"]] == [e["result"] for e in warm["results"]]

build = call("POST", "/builds", {"workload": "near_sorted", "n": 512, "seed": 5})
for attempt in range(200):
    record = call("GET", f"/builds/{build['token']}")
    if record["status"] in ("done", "failed"):
        break
    time.sleep(0.05)
assert record["status"] == "done", record

stats = call("GET", "/stats")
assert stats["requests"]["answered"] == 4, stats["requests"]
assert stats["builds"]["done"] == 1, stats["builds"]
assert stats["stats_schema"] == "repro.server.stats.v1", stats["stats_schema"]

# /metrics exposition: key series present, counters monotone across scrapes.
from repro.obs.metrics import parse_exemplars, parse_prometheus_text


def scrape():
    with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
        assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = response.read().decode("utf-8")
        return parse_prometheus_text(text), text


first, _ = scrape()
for series in (
    "repro_http_requests_total",
    "repro_server_passes_total",
    "repro_service_requests_total",
    "repro_cache_lookups_total",
    "repro_index_builds_total",
    "repro_multiply_total",
    "repro_server_uptime_seconds",
    "repro_build_info",
    "repro_traces_sampled_total",
    "repro_trace_ring_occupancy",
):
    assert series in first, f"missing /metrics series {series}"
call("POST", "/v2/batch", document)
second, _ = scrape()
for series in (
    "repro_http_requests_total",
    "repro_server_passes_total",
    "repro_traces_sampled_total",
):
    before = sum(first[series].values())
    after = sum(second[series].values())
    assert after > before, f"{series} not monotone across scrapes ({before} -> {after})"

# Scrape-interval self-test: two scrapes a fixed interval apart while
# request traffic flows between them.  Counters must be monotone, gauges
# must stay within their physical bounds, and the exemplar annotations on
# the latency histogram must parse and cite retained traces.
scrape_a, _ = scrape()
for _ in range(4):
    call("POST", "/v2/batch", document)
time.sleep(0.25)
scrape_b, text_b = scrape()
for series in (
    "repro_http_requests_total",
    "repro_http_request_seconds_count",
    "repro_traces_sampled_total",
    "repro_cache_lookups_total",
):
    before = sum(scrape_a[series].values())
    after = sum(scrape_b[series].values())
    assert after >= before, f"{series} went backwards ({before} -> {after})"
assert sum(scrape_b["repro_http_requests_total"].values()) > sum(
    scrape_a["repro_http_requests_total"].values()
), "no requests counted between the two scrapes"
ring = sum(scrape_b["repro_trace_ring_occupancy"].values())
assert 0 <= ring <= 128, f"trace ring occupancy {ring} outside [0, capacity]"
uptime_a = sum(scrape_a["repro_server_uptime_seconds"].values())
uptime_b = sum(scrape_b["repro_server_uptime_seconds"].values())
assert uptime_b > uptime_a > 0, f"uptime gauge not advancing ({uptime_a} -> {uptime_b})"
exemplars = [
    record for record in parse_exemplars(text_b)
    if record["series"] == "repro_http_request_seconds_bucket"
]
assert exemplars, "no exemplar annotations on the latency histogram"
resolved = call("GET", f"/debug/traces/{exemplars[-1]['trace_id']}")
assert resolved["trace_id"] == exemplars[-1]["trace_id"], resolved

print(
    f"serve-http OK: transport={stats['transport']}, "
    f"{stats['requests']['answered']} answered, cold->warm cache hit verified, "
    f"background build {build['token']} done, /metrics monotone, "
    f"scrape self-test passed (ring occupancy {ring:g}, "
    f"{len(exemplars)} exemplar(s) parsed and resolved)"
)
EOF
kill -INT "${SERVER_PID}"
wait "${SERVER_PID}"
SERVER_PID=""

echo
echo "== sharded serve-http cycle (--shards 2): cold/warm POST, per-shard stats =="
python -m repro serve-http --port "${SHARD_HTTP_PORT}" --shards 2 --duration 60 &
SERVER_PID=$!
python - "${SHARD_HTTP_PORT}" <<'EOF'
import json
import sys
import time
import urllib.request

port = sys.argv[1]
base = f"http://127.0.0.1:{port}"


def call(method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


for attempt in range(100):
    try:
        call("GET", "/healthz")
        break
    except OSError:
        time.sleep(0.1)
else:
    sys.exit("sharded serve-http did not come up within 10s")

# Several distinct fingerprints so both shards get routed traffic.
document = {
    "schema": "repro.service.requests",
    "requests": [
        {"op": "lis_length", "id": f"len{seed}", "workload": "random",
         "n": 512, "seed": seed}
        for seed in range(6)
    ] + [
        {"op": "lcs_length", "id": "lcs", "string_workload": "correlated_pair",
         "n": 128, "seed": 3},
    ],
}
cold = call("POST", "/v2/batch", document)
assert cold["ok"] == 7 and cold["errors"] == 0, cold
warm = call("POST", "/v2/batch", document)
assert all(entry["cache_hit"] for entry in warm["results"]), "warm POST missed the shard caches"
assert [e["result"] for e in cold["results"]] == [e["result"] for e in warm["results"]]

stats = call("GET", "/stats")
service = stats["service"]
assert stats["service_concurrency"] == 2, stats["service_concurrency"]
assert service["sharded"] and service["shards"] == 2, service
assert sum(service["load"]["per_shard_requests"]) == 14, service["load"]
assert service["load"]["shards_exercised"] == 2, service["load"]
assert service["restarts"] == 0, service["restarts"]
timings = service["router_timings"]
assert timings["shard_exec"]["total_seconds"] > 0.0, timings

# Per-shard /metrics counters reconcile exactly with the /stats JSON.
from repro.obs.metrics import parse_prometheus_text

with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
    parsed = parse_prometheus_text(response.read().decode("utf-8"))
shard_series = parsed["repro_shard_requests_total"]
for shard_id, expected in enumerate(service["load"]["per_shard_requests"]):
    observed = shard_series[(("shard", str(shard_id)),)]
    assert observed == float(expected), (
        f"/metrics shard {shard_id} counter {observed} != /stats {expected}"
    )
assert "repro_shard_pipe_seconds_count" in parsed, "pipe timing histogram missing"

# A traced batch covers edge -> coalesce -> route -> worker -> answer.
trace_id = cold.get("trace_id") or warm.get("trace_id")
assert trace_id, "batch response carries no trace_id"
trace = call("GET", f"/debug/traces/{trace_id}")
names = {span["name"] for span in trace["spans"]}
assert {"edge", "coalesce", "route", "worker", "answer"} <= names, names
print(
    f"sharded serve-http OK: workers={service['workers']}, "
    f"per-shard requests={service['load']['per_shard_requests']} "
    f"(reconciled with /metrics), trace {trace_id} spans={sorted(names)}, "
    f"cold->warm shard-cache hit verified"
)
EOF
kill -INT "${SERVER_PID}"
wait "${SERVER_PID}"
SERVER_PID=""

echo
echo "== sampled serve-http cycle (1% head rate): tail retention + SLO record =="
rm -f "${SLO_HISTORY}"
python -m repro serve-http --port "${SLO_HTTP_PORT}" --duration 60 \
    --trace-head-rate 0.01 --trace-tail-min-ms 250 \
    --slo-record "${SLO_ARTIFACT}" --slo-history "${SLO_HISTORY}" --slo-alerts &
SERVER_PID=$!
python - "${SLO_HTTP_PORT}" <<'EOF'
import json
import sys
import time
import urllib.request

port = sys.argv[1]
base = f"http://127.0.0.1:{port}"


def call(method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


for attempt in range(100):
    try:
        call("GET", "/healthz")
        break
    except OSError:
        time.sleep(0.1)
else:
    sys.exit("sampled serve-http did not come up within 10s")

document = {
    "schema": "repro.service.requests",
    "requests": [
        {"op": "lis_length", "id": "len", "workload": "random", "n": 512, "seed": 11},
    ],
}
for _ in range(20):
    assert call("POST", "/v2/batch", document)["errors"] == 0

stats = call("GET", "/stats")
tracing = stats["tracing"]
assert tracing["sampler"]["head_rate"] == 0.01, tracing["sampler"]
assert tracing["sampled_total"] + tracing["dropped_total"] >= 20, tracing
assert tracing["dropped_total"] > 0, "1% head sampling dropped nothing over 20 fast requests"

slo = call("GET", "/debug/slo")
assert slo["schema"] == "repro.server.slo", slo["schema"]
by_name = {entry["name"]: entry for entry in slo["objectives"]}
for name, summary in stats["slo"].items():
    assert by_name[name]["totals"]["total"] == summary["total"], (
        f"/debug/slo and /stats disagree on {name} totals"
    )
availability = by_name["batch-availability-99.9"]
assert availability["totals"]["total"] >= 20, availability["totals"]
assert availability["alerts"]["severity"] == "ok", availability["alerts"]
print(
    f"sampled serve-http OK: {tracing['dropped_total']} traces dropped at 1% head "
    f"rate, /debug/slo reconciles with /stats, severity=ok across objectives"
)
EOF
kill -INT "${SERVER_PID}"
wait "${SERVER_PID}"
SERVER_PID=""
test -s "${SLO_ARTIFACT}" || { echo "missing SLO artifact ${SLO_ARTIFACT}"; exit 1; }
test -s "${SLO_HISTORY}" || { echo "missing SLO history ${SLO_HISTORY}"; exit 1; }

echo
echo "== chaos serve-http cycle (--shards 2 + seeded fault plan): resilience =="
cat > "${CHAOS_PLAN}" <<'EOF'
{
  "seed": 42,
  "rules": [
    {"site": "worker.dispatch", "kind": "hang", "hits": [2],
     "delay_ms": 30000, "match": {"shard": 0}},
    {"site": "worker.dispatch", "kind": "crash", "hits": [3],
     "match": {"shard": 1}},
    {"site": "worker.dispatch", "kind": "delay", "hits": [1], "delay_ms": 50},
    {"site": "cache.spill_load", "kind": "corrupt", "probability": 0.5}
  ]
}
EOF
python -m repro serve-http --port "${CHAOS_HTTP_PORT}" --shards 2 --duration 60 \
    --worker-timeout-ms 500 --default-deadline-ms 30000 \
    --fault-plan "${CHAOS_PLAN}" &
SERVER_PID=$!
python - "${CHAOS_HTTP_PORT}" <<'EOF'
import json
import sys
import time
import urllib.error
import urllib.request

port = sys.argv[1]
base = f"http://127.0.0.1:{port}"


def call(method, path, payload=None, headers=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request_headers = {"Content-Type": "application/json"}
    if headers:
        request_headers.update(headers)
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=request_headers
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


for attempt in range(100):
    try:
        call("GET", "/healthz")
        break
    except OSError:
        time.sleep(0.1)
else:
    sys.exit("chaos serve-http did not come up within 10s")

# Several distinct fingerprints so both (faulty) shards see traffic; the
# same documents feed a serial in-process oracle for bit-identity.
documents = [
    {
        "schema": "repro.service.requests",
        "requests": [
            {"op": "lis_length", "id": f"r{burst}-{seed}", "workload": "random",
             "n": 256 + 64 * seed, "seed": seed}
            for seed in range(4)
        ],
    }
    for burst in range(4)
]
from repro.service import IndexCache, QueryService, parse_requests_document

oracle = QueryService(cache=IndexCache())
answered = 0
for document in documents:
    body = call("POST", "/v2/batch", document)
    assert len(body["results"]) == len(document["requests"]), body
    _, oracle_requests = parse_requests_document(document)
    expected = [o.result for o in oracle.submit(oracle_requests).outcomes]
    for entry, want in zip(body["results"], expected):
        answered += 1
        if entry["status"] == "ok" and not entry.get("degraded"):
            assert entry["result"] == want, (
                f"non-degraded answer diverged from the serial oracle: {entry}"
            )
        elif entry["status"] == "error":
            assert entry["error"], f"unstructured error entry: {entry}"
assert answered == sum(len(d["requests"]) for d in documents)

stats = call("GET", "/stats")
service = stats["service"]
resilience = service["resilience"]
assert resilience["fault_plan"] is not None, "fault plan not visible on /stats"
assert service["restarts"] >= 1, f"no worker restarts under chaos: {service['restarts']}"
assert resilience["hangs"] >= 1, f"hang never detected: {resilience}"
assert set(resilience["breakers"]) == {"0", "1"}, resilience["breakers"]

# Worker-side fault fires reach the merged /metrics exposition through the
# per-shard registry snapshots (a killed worker's counts die with it — the
# delay rule fires in every incarnation so survivors always carry one),
# and the per-shard hang series reconciles with the /stats aggregate.
with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
    text = response.read().decode("utf-8")
assert "repro_breaker_state" in text, "breaker state gauge missing from /metrics"
fired = sum(
    float(line.rsplit(None, 1)[1])
    for line in text.splitlines()
    if line.startswith("repro_faults_injected_total{")
)
assert fired >= 1.0, "no injected faults counted on /metrics"
hangs = sum(
    float(line.rsplit(None, 1)[1])
    for line in text.splitlines()
    if line.startswith("repro_shard_hangs_total{")
)
# Stats/metrics polls are worker dispatches too, so the count can advance
# between the two scrapes: bracket it instead of demanding equality.
after = call("GET", "/stats")["service"]["resilience"]["hangs"]
assert resilience["hangs"] <= hangs <= after, (
    f"/metrics hangs {hangs} outside [{resilience['hangs']}, {after}]"
)

# An expired budget answers a structured 504 instead of hanging.
tight = {
    "schema": "repro.service.requests",
    "requests": [
        {"op": "lis_length", "id": "tight", "workload": "random",
         "n": 4096, "seed": 99},
    ],
}
try:
    body = call("POST", "/v2/batch", tight, headers={"X-Repro-Deadline-Ms": "1"})
    status = 200
except urllib.error.HTTPError as exc:
    status = exc.code
    body = json.load(exc)
assert status in (200, 504), status
if status == 504:
    assert body["results"][0]["deadline_exceeded"], body

print(
    f"chaos serve-http OK: {answered} requests answered under seeded faults "
    f"(restarts={service['restarts']}, hangs={resilience['hangs']:g}, "
    f"faults fired={fired:g}), non-degraded answers oracle-identical, "
    f"/metrics reconciles with /stats"
)
EOF
kill -INT "${SERVER_PID}"
wait "${SERVER_PID}"
SERVER_PID=""

echo
echo "== quick service_latency load-generator run -> ${LATENCY_ARTIFACT} =="
python -m repro run service_latency --quick --json "${LATENCY_ARTIFACT}"

echo
echo "== quick shard_scaling run (answers shard-invariant) -> ${SHARD_ARTIFACT} =="
python -m repro run shard_scaling --quick --json "${SHARD_ARTIFACT}"

echo
echo "== quick streaming_throughput run (serial/thread/process grid) -> ${STREAMING_ARTIFACT} =="
python -m repro run streaming_throughput --quick --json "${STREAMING_ARTIFACT}"

echo
echo "== stream cold/warm cycle: warm build, sliding ticks -> ${STREAM_ARTIFACT} =="
python -m repro stream --window 512 --ticks 4 --slide 64 --seed 7 \
    --artifact "${STREAM_ARTIFACT}"
python -m repro stream --session lcs --window 128 --ticks 3 --slide 16 --seed 7

echo
echo "== quick perf pass, gated against results/perf_core.json -> ${PERF_ARTIFACT} =="
rm -f "${TREND_LOG}"  # append-only log: start fresh so the row count below is exact
python -m repro perf --quick --json "${PERF_ARTIFACT}" --record-trend "${TREND_LOG}"

echo
echo "== perf trend log validation (${TREND_LOG} + recorded results/perf_trend.jsonl) =="
python - "${TREND_LOG}" <<'EOF'
import os
import sys

from repro.perf.trend import load_trend

fresh = load_trend(sys.argv[1])
assert len(fresh) == 1 and fresh[0]["normalized"], fresh
recorded = "results/perf_trend.jsonl"
if os.path.exists(recorded):
    rows = load_trend(recorded)
    assert rows, "recorded trend log is empty"
    print(f"trend OK: 1 fresh row, {len(rows)} recorded row(s) validated")
else:
    print("trend OK: 1 fresh row validated (no recorded log)")
EOF

echo
echo "== repro report: recorded artifacts + trend + capacity + SLO (ASCII only) =="
python -m repro report --trend --capacity 500 --slo > /tmp/repro-smoke-report.txt
grep -q "capacity plan for 500" /tmp/repro-smoke-report.txt
grep -q "perf trend" /tmp/repro-smoke-report.txt
grep -q "SLO burn-rate summary" /tmp/repro-smoke-report.txt
python -m repro report --slo "${SLO_ARTIFACT}" > /tmp/repro-smoke-slo-report.txt
grep -q "burn_5m" /tmp/repro-smoke-slo-report.txt
echo "report OK: $(wc -l < /tmp/repro-smoke-report.txt) lines rendered (+ SLO summary)"

echo
echo "== artifact schema validation (fresh runs + everything in results/) =="
python -m repro validate "${ARTIFACT}"
python -m repro validate "${BACKEND_ARTIFACT}"
python -m repro validate "${SERVICE_ARTIFACT}"
python -m repro validate "${SERVE_ARTIFACT}"
python -m repro validate "${STREAMING_ARTIFACT}"
python -m repro validate "${STREAM_ARTIFACT}"
python -m repro validate "${PERF_ARTIFACT}"
python -m repro validate "${LATENCY_ARTIFACT}"
python -m repro validate "${SHARD_ARTIFACT}"
python -m repro validate "${SLO_ARTIFACT}"
for recorded in results/*.json; do
    python -m repro validate "${recorded}"
done

echo
echo "smoke: OK"
