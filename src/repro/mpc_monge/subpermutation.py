"""Theorem 1.2: subunit-Monge multiplication of sub-permutation matrices.

The reduction of Section 4.1: delete zero rows of ``P_A`` / zero columns of
``P_B``, pad both operands to full ``n2 x n2`` permutation matrices with
O(1)-round prefix sums and sorting, multiply with the Theorem 1.1 algorithm,
and strip the padding from the product.

Execution-backend selection flows through unchanged: the cluster's backend
(or ``MongeMPCConfig.backend``) governs how the inner Theorem 1.1
multiplication schedules its fork-groups and local work.
"""

from __future__ import annotations

from typing import Optional

from ..core.permutation import SubPermutation
from ..core.seaweed import pad_to_permutations, strip_padding
from ..mpc.cluster import MPCCluster, SORT_ROUNDS
from .constant_round import MongeMPCConfig, mpc_multiply

__all__ = ["mpc_multiply_subpermutation"]


def mpc_multiply_subpermutation(
    cluster: MPCCluster,
    pa: SubPermutation,
    pb: SubPermutation,
    config: Optional[MongeMPCConfig] = None,
) -> SubPermutation:
    """``P_A ⊡ P_B`` for sub-permutation matrices in O(1) rounds (Theorem 1.2)."""
    if pa.n_cols != pb.n_rows:
        raise ValueError(f"inner dimensions do not match: {pa.shape} x {pb.shape}")
    if (
        pa.n_rows == pa.n_cols == pb.n_rows == pb.n_cols
        and pa.is_full_permutation()
        and pb.is_full_permutation()
    ):
        return mpc_multiply(cluster, pa.as_permutation(), pb.as_permutation(), config)

    n2 = pa.n_cols
    machine_load = max(1, (2 * n2) // max(1, cluster.num_machines) + 1)
    # Padding: mark empty rows/columns (prefix sums) and shift the existing
    # entries — O(1) rounds (paper §4.1 uses one prefix sum and one sort).
    cluster.charge_rounds(
        SORT_ROUNDS, "pad:sort", words_per_round=2 * n2, max_load=machine_load, phase="pad"
    )
    cluster.charge_round("pad:prefix-sum", words=2 * n2, max_load=machine_load, phase="pad")
    perm_a, perm_b, info = pad_to_permutations(pa, pb)

    product = mpc_multiply(cluster, perm_a, perm_b, config)

    # Stripping the padding: drop the upper rows / right columns and route the
    # surviving points back to the original coordinates — one round.
    cluster.charge_round("pad:strip", words=n2, max_load=machine_load, phase="pad")
    return strip_padding(product, info)
