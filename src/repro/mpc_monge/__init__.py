"""MPC algorithms for (sub)unit-Monge matrix multiplication (Theorems 1.1/1.2)."""

from .common import SubgridInstance, grid_corners
from .constant_round import (
    MongeMPCConfig,
    default_fanin,
    mpc_combine,
    mpc_multiply,
    paper_fanin,
    paper_grid_size,
)
from .subpermutation import mpc_multiply_subpermutation
from .warmup import mpc_multiply_warmup, warmup_config

__all__ = [
    "default_fanin",
    "SubgridInstance",
    "grid_corners",
    "MongeMPCConfig",
    "mpc_combine",
    "mpc_multiply",
    "mpc_multiply_subpermutation",
    "mpc_multiply_warmup",
    "warmup_config",
    "paper_fanin",
    "paper_grid_size",
]
