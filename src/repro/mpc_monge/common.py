"""Shared machinery for the MPC (sub)unit-Monge multiplication algorithms.

The heart of this module is :class:`SubgridInstance`, the object built for
every *active* subgrid in Section 3.3 of the paper.  An instance contains only
information that fits on one machine:

* the colored union points inside the subgrid's row band and column band
  (the "non-invariant information"; O(G) points for a full permutation),
* per-color boundary offsets at the subgrid's upper-left corner
  (``PΣ_x(r0, n)``, ``PΣ_x(0, c0)`` and ``PΣ_x(r0, c0)`` for every color x;
  O(H) words — the "invariant information"),

and it can evaluate ``F_q`` / ``PΣ_C`` at any corner inside the subgrid using
only that local data, which is what lets one machine finish the subgrid by
itself in a single round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["SubgridInstance", "grid_corners"]


def grid_corners(n: int, grid_size: int) -> np.ndarray:
    """Grid-line coordinates ``0, G, 2G, ..., n`` (always including ``n``)."""
    grid_size = max(1, int(grid_size))
    corners = np.arange(0, n + 1, grid_size, dtype=np.int64)
    if corners[-1] != n:
        corners = np.append(corners, n)
    return corners


@dataclass
class SubgridInstance:
    """All machine-local data needed to solve one active subgrid (§3.3).

    Coordinates: the subgrid spans rows ``[r0, r1)`` and columns ``[c0, c1)``
    of the parent problem; corner evaluations are valid for any
    ``r0 <= r <= r1`` and ``c0 <= c <= c1``.
    """

    r0: int
    r1: int
    c0: int
    c1: int
    num_colors: int
    # Points whose row lies in [r0, r1):
    band_row_rows: np.ndarray
    band_row_cols: np.ndarray
    band_row_colors: np.ndarray
    # Points whose column lies in [c0, c1):
    band_col_rows: np.ndarray
    band_col_cols: np.ndarray
    band_col_colors: np.ndarray
    # Per-color boundary offsets at the corner (r0, c0):
    row_total_at_r0: np.ndarray  # PΣ_x(r0, n)
    col_total_at_c0: np.ndarray  # PΣ_x(0, c0)
    corner_value: np.ndarray  # PΣ_x(r0, c0)

    # ------------------------------------------------------------------ size
    @property
    def size_words(self) -> int:
        """Number of words a machine must hold to process this instance."""
        return int(
            3 * (len(self.band_row_rows) + len(self.band_col_rows))
            + 3 * self.num_colors
            + 8
        )

    # ------------------------------------------------------------ evaluation
    def f_values(self, r: np.ndarray, c: np.ndarray) -> np.ndarray:
        """``out[b, q] = F_q(r[b], c[b])`` for corners inside the subgrid."""
        r = np.asarray(r, dtype=np.int64)[:, None]
        c = np.asarray(c, dtype=np.int64)[:, None]
        H = self.num_colors
        batch = r.shape[0]

        # Row-band masks (points with row in [r0, row-threshold)).
        rb_rows = self.band_row_rows[None, :]
        rb_cols = self.band_row_cols[None, :]
        rb_colors = self.band_row_colors

        # Column-band masks (points with col in [c0, col-threshold)).
        cb_rows = self.band_col_rows[None, :]
        cb_cols = self.band_col_cols[None, :]
        cb_colors = self.band_col_colors

        def per_color_count(mask: np.ndarray, colors: np.ndarray) -> np.ndarray:
            # mask: (batch, points) boolean; returns (batch, H) counts per color.
            out = np.zeros((batch, H), dtype=np.int64)
            if colors.size:
                for color in range(H):
                    sel = colors == color
                    if sel.any():
                        out[:, color] = mask[:, sel].sum(axis=1)
            return out

        # rowtot_x(r) = PΣ_x(r, n) = PΣ_x(r0, n) − #{x-points: r0 <= row < r}
        row_removed = per_color_count(rb_rows < r, rb_colors)
        rowtot = self.row_total_at_r0[None, :] - row_removed

        # coltot_x(c) = PΣ_x(0, c) = PΣ_x(0, c0) + #{x-points: c0 <= col < c}
        col_added = per_color_count(cb_cols < c, cb_colors)
        coltot = self.col_total_at_c0[None, :] + col_added

        # dom_x(r, c) = PΣ_x(r, c)
        #            = PΣ_x(r0, c0)
        #              + #{x-points: row >= r0, c0 <= col < c}
        #              − #{x-points: r0 <= row < r, col < c}
        dom_add = per_color_count((cb_cols < c) & (cb_rows >= self.r0), cb_colors)
        dom_sub = per_color_count((rb_rows < r) & (rb_cols < c), rb_colors)
        dom = self.corner_value[None, :] + dom_add - dom_sub

        before = np.cumsum(rowtot, axis=1) - rowtot
        after = coltot.sum(axis=1, keepdims=True) - np.cumsum(coltot, axis=1)
        return before + dom + after

    def sigma(self, r: np.ndarray, c: np.ndarray) -> np.ndarray:
        """``PΣ_C(r, c) = min_q F_q(r, c)`` using only subgrid-local data."""
        return self.f_values(r, c).min(axis=1)

    # ----------------------------------------------------------------- solve
    def solve(self) -> Tuple[np.ndarray, np.ndarray]:
        """Find the product's points that lie inside this subgrid.

        For every row of the subgrid's row band, a vectorised binary search
        over the subgrid's column range locates the column at which
        ``PΣ_C(r, ·) − PΣ_C(r+1, ·)`` steps from 0 to 1 (the row's output
        point), provided that step happens inside ``[c0, c1)``.  Returns the
        ``(rows, cols)`` of the discovered points.
        """
        rows = np.arange(self.r0, self.r1, dtype=np.int64)
        if rows.size == 0:
            return rows, rows.copy()

        def g(columns: np.ndarray, active_rows: np.ndarray) -> np.ndarray:
            stacked_r = np.concatenate([active_rows, active_rows + 1])
            stacked_c = np.concatenate([columns, columns])
            sig = self.sigma(stacked_r, stacked_c)
            half = len(active_rows)
            return sig[:half] - sig[half:]

        c0_col = np.full(len(rows), self.c0, dtype=np.int64)
        c1_col = np.full(len(rows), self.c1, dtype=np.int64)
        inside = (g(c0_col, rows) == 0) & (g(c1_col, rows) >= 1)
        active = rows[inside]
        if active.size == 0:
            return active, active.copy()

        lo = np.full(len(active), self.c0, dtype=np.int64)
        hi = np.full(len(active), self.c1, dtype=np.int64)
        while np.any(lo + 1 < hi):
            mid = (lo + hi) // 2
            take_hi = g(mid, active) >= 1
            hi = np.where(take_hi, mid, hi)
            lo = np.where(take_hi, lo, mid)
        return active, hi - 1
