"""The warm-up O(log n)-round multiplication (paper §1.4).

The warm-up algorithm is the binary (fan-in 2) instantiation of the same
split / recurse / combine skeleton: every level merges two subproblems in O(1)
rounds, and the recursion depth is ``Θ(log n)``, so the whole multiplication
takes ``Θ(log n)`` rounds.  It is used both as a pedagogical stepping stone
and as the intermediate baseline in the round-complexity benchmarks.
"""

from __future__ import annotations

from typing import Optional

from ..core.permutation import Permutation
from ..mpc.cluster import MPCCluster
from .constant_round import MongeMPCConfig, mpc_multiply

__all__ = ["mpc_multiply_warmup", "warmup_config"]


def warmup_config(base: Optional[MongeMPCConfig] = None) -> MongeMPCConfig:
    """A configuration with fan-in 2 (everything else as in the main algorithm)."""
    base = base or MongeMPCConfig()
    return MongeMPCConfig(
        fanin=2,
        tree_arity=base.tree_arity,
        grid_size=base.grid_size,
        local_threshold=base.local_threshold,
        sequential_base_size=base.sequential_base_size,
        backend=base.backend,
    )


def mpc_multiply_warmup(
    cluster: MPCCluster,
    pa: Permutation,
    pb: Permutation,
    config: Optional[MongeMPCConfig] = None,
) -> Permutation:
    """Multiply two permutation matrices with the O(log n)-round warm-up."""
    return mpc_multiply(cluster, pa, pb, warmup_config(config))
