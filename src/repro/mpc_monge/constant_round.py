"""The paper's O(1)-round MPC algorithm for unit-Monge multiplication.

This module implements Theorem 1.1: a fully-scalable deterministic MPC
algorithm computing ``P_C = P_A ⊡ P_B`` for permutation matrices, structured
exactly as in Section 3 of the paper:

1. **Split & compact** (§3.1): ``P_A`` is cut into ``H`` column blocks and
   ``P_B`` into ``H`` row blocks; empty rows/columns are removed by sorting
   and relabelling (the maps ``M_A`` / ``M_B``).  O(1) rounds.
2. **Recurse** on the ``H`` compacted pairs in parallel machine groups.  With
   the paper's fan-in ``H = n^{(1-δ)/10}`` the recursion depth is
   ``10δ/(1-δ) = O(1)``; with fan-in 2 it is ``O(log n)`` (the warm-up
   algorithm of §1.4 — see :mod:`repro.mpc_monge.warmup`).
3. **Combine** (§3.2-3.3): expand the sub-results to parent coordinates
   (giving the colored union permutation), compute ``opt`` on the grid lines
   spaced ``G = n^{1-δ}`` apart with the flattened ``H``-ary tree, classify
   the subgrids, and finish every *active* subgrid on a single machine from
   its O(G + H)-sized :class:`~repro.mpc_monge.common.SubgridInstance`.

Every stage charges rounds, communication and per-machine loads to the
cluster; the returned permutation is the exact product (validated against the
sequential and dense implementations by the test-suite).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.combine import ColoredPointSet
from ..core.permutation import Permutation, SubPermutation
from ..core.plan import MultiplyPlan
from ..core.seaweed import (
    expand_block_results,
    multiply_permutations,
    split_into_blocks,
)
from ..mpc.cluster import MPCCluster, RANK_SEARCH_ROUNDS, SORT_ROUNDS
from ..mpc.engine import resolve_backend
from ..mpc.errors import SpaceExceededError
from .common import SubgridInstance, grid_corners

__all__ = [
    "MongeMPCConfig",
    "mpc_multiply",
    "paper_fanin",
    "default_fanin",
    "paper_grid_size",
]


def paper_fanin(n: int, delta: float) -> int:
    """The paper's fan-in ``H = n^{(1-δ)/10}`` (at least 2).

    Note that for every practically simulable ``n`` this rounds to 2 or 3 —
    the exponent ``(1-δ)/10`` is chosen in the paper purely to make the space
    analysis slack, and any fixed polynomial exponent preserves the O(1)
    round/depth structure.  The simulator therefore defaults to
    :func:`default_fanin` (exponent ``(1-δ)/4``, still satisfying the paper's
    constraints ``H² ≤ G`` and ``H⁴ ≤ G·polylog``), which exposes the
    constant-depth behaviour at benchmarkable sizes.
    """
    return max(2, int(round(n ** ((1.0 - delta) / 10.0))))


def default_fanin(n: int, delta: float) -> int:
    """Simulator default fan-in ``H = n^{(1-δ)/4}`` (at least 2)."""
    return max(2, int(round(n ** ((1.0 - delta) / 4.0))))


def paper_grid_size(n: int, delta: float) -> int:
    """The paper's grid spacing ``G = n^{1-δ}`` (at least 1)."""
    return max(1, int(math.ceil(n ** (1.0 - delta))))


@dataclass
class MongeMPCConfig:
    """Tunable parameters of the O(1)-round multiplication.

    All defaults follow the formulas of the paper; the benchmarks override
    individual fields for the fan-in / grid-size / tree-arity ablations.
    """

    #: Number of subproblems merged per recursion level (``H``).  ``None``
    #: selects :func:`default_fanin` (``n^{(1-δ)/4}``); use
    #: :func:`paper_fanin` for the paper's literal ``n^{(1-δ)/10}``.
    fanin: Optional[int] = None
    #: Arity of the flattened tree used for the §3.2 grid-line searches.
    #: ``None`` selects :func:`default_fanin`.
    tree_arity: Optional[int] = None
    #: Grid spacing ``G``.  ``None`` selects the paper's ``n^{1-δ}``.
    grid_size: Optional[int] = None
    #: Subproblems of at most this size are gathered on one machine and
    #: solved locally.  ``None`` selects the cluster's space budget ``s``.
    local_threshold: Optional[int] = None
    #: Base size handed to the sequential solver for local subproblems.
    sequential_base_size: int = 64
    #: Plan for the sequential local solver and the combine engine's dense-
    #: table budget.  ``None`` keeps the default plan shaped as fan-in 2 with
    #: ``sequential_base_size`` (the default engine applies either way);
    #: results are bit-identical across plans — this tunes wall-clock only.
    multiply_plan: Optional["MultiplyPlan"] = None
    #: Execution backend name (``"serial"``/``"thread"``/``"process"``) used
    #: for the duration of a top-level multiplication call (the cluster's own
    #: backend is restored afterwards).  ``None`` keeps whatever backend the
    #: cluster was constructed with.  Backends change wall-clock behaviour
    #: only — rounds, communication and loads are bit-identical.
    backend: Optional[str] = None


@dataclass
class _CombineReport:
    """Diagnostics of one combine step (used by tests and benchmarks)."""

    num_colors: int
    grid_size: int
    num_grid_lines: int
    num_subgrids: int
    num_active_subgrids: int
    max_instance_words: int


def _resolve(config: Optional[MongeMPCConfig]) -> MongeMPCConfig:
    return config if config is not None else MongeMPCConfig()


def _recurse_task(
    child: MPCCluster,
    a_blk: Permutation,
    b_blk: Permutation,
    config: MongeMPCConfig,
    depth: int,
) -> Permutation:
    """One fork-group branch of the §3 recursion (module-level so the process
    backend can ship it to a worker)."""
    return mpc_multiply(child, a_blk, b_blk, config, _depth=depth)


def mpc_multiply(
    cluster: MPCCluster,
    pa: Permutation,
    pb: Permutation,
    config: Optional[MongeMPCConfig] = None,
    *,
    _depth: int = 0,
) -> Permutation:
    """Multiply two permutation matrices in the MPC model (Theorem 1.1).

    The number of rounds charged to ``cluster`` is O(1) for the paper's
    fan-in and ``O(log n)`` for fan-in 2; the per-machine space never exceeds
    the cluster budget ``s = Õ(n^{1-δ})`` (otherwise
    :class:`~repro.mpc.errors.SpaceExceededError` is raised).
    """
    config = _resolve(config)
    n = pa.size
    if pb.size != n:
        raise ValueError("operands must have equal size")
    if _depth == 0 and config.backend is not None:
        # Scope the backend override to this call: swap it in, recurse with a
        # backend-free config (children inherit the cluster backend at fork
        # time), and restore the caller's backend afterwards.
        original_backend = cluster.backend
        cluster.backend = resolve_backend(config.backend)
        try:
            return mpc_multiply(
                cluster, pa, pb, dataclasses.replace(config, backend=None), _depth=0
            )
        finally:
            cluster.backend = original_backend
    phase = f"level{_depth}"
    local_threshold = (
        config.local_threshold
        if config.local_threshold is not None
        else cluster.space_per_machine // 2
    )

    fanin = config.fanin if config.fanin is not None else default_fanin(n, cluster.delta)
    fanin = int(max(2, min(fanin, n)))

    # The combine step needs room for its per-line interval state (O(H²)) and
    # for one minimal subgrid instance.  If the requested fan-in does not fit
    # the machine space (possible only for toy instances), degrade it — the
    # algorithm stays correct, only the recursion gets deeper.
    while fanin > 2 and fanin * fanin + 5 * fanin + 16 > cluster.space_per_machine:
        fanin -= 1
    min_combine_space = fanin * fanin + 5 * fanin + 16
    if n <= max(2, local_threshold) or cluster.space_per_machine < min_combine_space:
        # Base case: the whole subproblem fits in one machine.
        cluster.charge_round(
            "local:gather", words=2 * n, max_load=2 * n, phase=phase
        )
        if config.multiply_plan is not None:
            return multiply_permutations(pa, pb, plan=config.multiply_plan)
        return multiply_permutations(
            pa, pb, fanin=2, base_size=config.sequential_base_size
        )

    # ------------------------------------------------------------- §3.1 split
    # Sorting the nonzero row indices of every P_{A,q} (and the columns of
    # P_{B,q}) and relabelling yields the compaction maps M_A / M_B.
    block_load = math.ceil(2 * n / cluster.num_machines) + fanin
    cluster.charge_rounds(
        SORT_ROUNDS, "split:sort", words_per_round=2 * n, max_load=block_load, phase=phase
    )
    cluster.charge_round("split:relabel", words=2 * n, max_load=block_load, phase=phase)
    split = split_into_blocks(pa, pb, fanin)

    # --------------------------------------------------------------- recurse
    # The H compacted subproblems compose in parallel machine groups; the
    # execution backend runs them concurrently (threads/processes) while the
    # join keeps the max-rounds / sum-words parallel accounting.
    results: List[Permutation] = cluster.run_forked(
        [
            (_recurse_task, (a_blk, b_blk, config, _depth + 1))
            for a_blk, b_blk in zip(split.a_blocks, split.b_blocks)
        ],
        label=f"recurse@{phase}",
    )

    # --------------------------------------------------------------- combine
    rows, cols, colors = expand_block_results(results, split)
    cluster.charge_round("combine:expand", words=3 * n, max_load=block_load, phase=phase)
    merged, _report = mpc_combine(
        cluster, rows, cols, colors, fanin, n, config, phase=phase
    )
    return merged.as_permutation()


def mpc_combine(
    cluster: MPCCluster,
    rows: np.ndarray,
    cols: np.ndarray,
    colors: np.ndarray,
    num_colors: int,
    n: int,
    config: Optional[MongeMPCConfig] = None,
    *,
    phase: str = "combine",
) -> Tuple[SubPermutation, _CombineReport]:
    """Merge ``H`` expanded sub-results into the product (§3.2 + §3.3).

    ``rows``/``cols``/``colors`` describe the colored union permutation.  The
    function charges the grid-line and subgrid rounds to ``cluster`` and
    returns the merged sub-permutation together with a diagnostics report.
    """
    config = _resolve(config)
    s = cluster.space_per_machine
    H = int(num_colors)

    grid_size = (
        config.grid_size if config.grid_size is not None else paper_grid_size(n, cluster.delta)
    )
    # An active subgrid instance stores ~2G band points (3 words each) plus
    # O(H) offsets; keep G small enough for one machine.
    grid_size = int(max(1, min(grid_size, max(1, (s - 3 * H - 16) // 8), n)))
    tree_arity = (
        config.tree_arity if config.tree_arity is not None else default_fanin(n, cluster.delta)
    )
    tree_arity = int(max(2, tree_arity))

    point_set = ColoredPointSet(
        rows, cols, colors, H, n, n,
        dense_table_limit=(
            config.multiply_plan.dense_table_limit
            if config.multiply_plan is not None
            else None
        ),
    )
    grid = grid_corners(n, grid_size)
    num_lines = len(grid)

    # ------------------------------------------------------ §3.2 grid lines
    # Build the flattened tree over the colored union permutation (one O(1)-
    # round sort per level of the implicit representation) and descend it for
    # every pair (q, r) on every grid line.
    tree_height = max(1, math.ceil(math.log(max(n, 2), tree_arity)))
    pair_searches = num_lines * H * (H - 1)
    package_words = min(pair_searches * tree_arity * H, cluster.total_space)
    cluster.charge_rounds(
        SORT_ROUNDS, "gridline:tree-build", words_per_round=3 * n,
        max_load=math.ceil(3 * n / cluster.num_machines), phase=phase,
    )
    per_line_state = H * H + 2 * H
    for _ in range(tree_height):
        cluster.charge_rounds(
            RANK_SEARCH_ROUNDS,
            "gridline:tree-descent",
            words_per_round=max(package_words, 1),
            max_load=min(s, max(per_line_state * tree_arity, 1)),
            phase=phase,
        )
    # The per-line output is the opt(*, jG) interval structure (O(H) words).
    cluster.charge_round(
        "gridline:intervals", words=num_lines * 2 * H, max_load=per_line_state, phase=phase
    )

    # The simulator evaluates opt at the grid corners directly; these values
    # are exactly what the cmp/interval computation above produces.
    corner_i, corner_j = np.meshgrid(grid, grid, indexing="ij")
    opt_corner = point_set.opt(corner_i.ravel(), corner_j.ravel()).reshape(
        num_lines, num_lines
    )

    # ------------------------------------------------- §3.3 subgrid analysis
    top_left = opt_corner[:-1, :-1]
    same = (
        (top_left == opt_corner[1:, :-1])
        & (top_left == opt_corner[:-1, 1:])
        & (top_left == opt_corner[1:, 1:])
    )
    active_mask = ~same
    active_i, active_j = np.nonzero(active_mask)
    num_subgrids = (num_lines - 1) ** 2

    # Survivors in inactive subgrids: by Lemma 3.10 the product restricted to a
    # subgrid with constant opt = a equals P_{C,a}; a union point survives
    # there iff its color equals a.
    row_block = np.searchsorted(grid, rows, side="right") - 1
    col_block = np.searchsorted(grid, cols, side="right") - 1
    in_active = active_mask[row_block, col_block]
    survivor_opt = top_left[row_block, col_block]
    survive = (~in_active) & (colors == survivor_opt)
    out_rows = [rows[survive]]
    out_cols = [cols[survive]]
    cluster.charge_round(
        "subgrid:classify", words=3 * n,
        max_load=math.ceil(3 * n / cluster.num_machines), phase=phase,
    )

    # Build one instance per active subgrid and solve it on its own machine.
    order_by_row = np.argsort(rows, kind="stable")
    rows_r, cols_r, colors_r = rows[order_by_row], cols[order_by_row], colors[order_by_row]
    order_by_col = np.argsort(cols, kind="stable")
    rows_c, cols_c, colors_c = rows[order_by_col], cols[order_by_col], colors[order_by_col]

    unique_r0 = grid[active_i]
    unique_c0 = grid[active_j]
    if len(active_i):
        row_totals = point_set.row_suffix_counts(unique_r0)
        col_totals = point_set.col_prefix_counts(unique_c0)
        corner_vals = point_set.dominance_counts(unique_r0, unique_c0)
    else:
        row_totals = col_totals = corner_vals = np.zeros((0, H), dtype=np.int64)

    max_instance_words = 0
    total_instance_words = 0
    for index in range(len(active_i)):
        r0, r1 = int(grid[active_i[index]]), int(grid[active_i[index] + 1])
        c0, c1 = int(grid[active_j[index]]), int(grid[active_j[index] + 1])
        lo = np.searchsorted(rows_r, r0, side="left")
        hi = np.searchsorted(rows_r, r1, side="left")
        clo = np.searchsorted(cols_c, c0, side="left")
        chi = np.searchsorted(cols_c, c1, side="left")
        instance = SubgridInstance(
            r0=r0,
            r1=r1,
            c0=c0,
            c1=c1,
            num_colors=H,
            band_row_rows=rows_r[lo:hi],
            band_row_cols=cols_r[lo:hi],
            band_row_colors=colors_r[lo:hi],
            band_col_rows=rows_c[clo:chi],
            band_col_cols=cols_c[clo:chi],
            band_col_colors=colors_c[clo:chi],
            row_total_at_r0=row_totals[index],
            col_total_at_c0=col_totals[index],
            corner_value=corner_vals[index],
        )
        words = instance.size_words
        max_instance_words = max(max_instance_words, words)
        total_instance_words += words
        cluster.stats.record_load(words)
        if words > s and cluster.strict_space:
            raise SpaceExceededError(-1, words, s, "subgrid instance")
        found_rows, found_cols = instance.solve()
        out_rows.append(found_rows)
        out_cols.append(found_cols)

    # Rounds of the §3.3 stage: instance sizing + greedy packing, instance
    # population, and reporting the discovered points.
    cluster.charge_round(
        "subgrid:pack", words=2 * max(len(active_i), 1), max_load=max(max_instance_words, 1), phase=phase
    )
    cluster.charge_round(
        "subgrid:populate", words=max(total_instance_words, 1),
        max_load=max(max_instance_words, 1), phase=phase,
    )
    cluster.charge_round(
        "subgrid:report", words=n, max_load=max(max_instance_words, 1), phase=phase
    )

    all_rows = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=np.int64)
    all_cols = np.concatenate(out_cols) if out_cols else np.empty(0, dtype=np.int64)
    merged = SubPermutation.from_points(all_rows, all_cols, n, n, validate=True)
    report = _CombineReport(
        num_colors=H,
        grid_size=grid_size,
        num_grid_lines=num_lines,
        num_subgrids=num_subgrids,
        num_active_subgrids=int(len(active_i)),
        max_instance_words=max_instance_words,
    )
    return merged, report
