"""Versioned JSON artifacts for experiment results.

Every CLI run (and any caller of :func:`write_artifact`) lands in one
machine-readable document so results can be diffed across PRs and compared
against the prior-work baselines.  The schema is deliberately flat and
self-identifying:

.. code-block:: json

    {
      "schema": "repro.experiments.result",
      "schema_version": 1,
      "package_version": "1.1.0",
      "experiment": "table1",
      "title": "Table 1 reproduction ...",
      "claim": "Table 1",
      "quick": false,
      "workers": 1,
      "created_unix": 1722211200.0,
      "grid": {"delta": [0.25, 0.5], "algorithm": ["kt10", "..."]},
      "fixed": {"n": 4096, "seed": 1},
      "wall_clock_seconds": 1.23,
      "checks_passed": true,
      "points": [
        {"params": {"delta": 0.25, "algorithm": "kt10"},
         "metrics": {"rounds": 42, "...": "..."},
         "seconds": 0.05}
      ]
    }

``schema_version`` is bumped whenever a field changes meaning; consumers must
reject documents with a newer major version than they understand.
:func:`validate_artifact` enforces the invariants below and is used by the
test-suite and ``python -m repro validate``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

from ..analysis.serialize import to_jsonable
from .runner import ExperimentResult

__all__ = [
    "SCHEMA_ID",
    "SCHEMA_VERSION",
    "ArtifactError",
    "result_to_artifact",
    "write_artifact",
    "write_document",
    "load_artifact",
    "validate_artifact",
]

SCHEMA_ID = "repro.experiments.result"
SCHEMA_VERSION = 1


class ArtifactError(ValueError):
    """A document does not conform to the experiment-artifact schema."""


def result_to_artifact(result: ExperimentResult) -> Dict[str, Any]:
    """Serialise an :class:`ExperimentResult` into the schema-v1 document."""
    from .. import __version__

    return {
        "schema": SCHEMA_ID,
        "schema_version": SCHEMA_VERSION,
        "package_version": __version__,
        "experiment": result.spec.name,
        "title": result.spec.title,
        "claim": result.spec.claim,
        "quick": bool(result.quick),
        "workers": int(result.workers),
        "created_unix": time.time(),
        "grid": to_jsonable(result.grid),
        "fixed": to_jsonable(result.fixed),
        "wall_clock_seconds": float(result.wall_clock_seconds),
        "checks_passed": result.checks_passed,
        "check_error": result.check_error,
        "points": [
            {
                "params": to_jsonable(point.params),
                "metrics": to_jsonable(point.metrics),
                "seconds": float(point.seconds),
            }
            for point in result.points
        ],
    }


def write_document(document: Dict[str, Any], path: str) -> None:
    """Validate and persist one artifact document (the single on-disk format).

    Every artifact writer goes through here so the byte format (indentation,
    key order, trailing newline) is identical across ``run`` and ``serve``.
    """
    validate_artifact(document)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_artifact(result: ExperimentResult, path: str) -> Dict[str, Any]:
    """Validate and write the artifact for ``result`` to ``path``."""
    document = result_to_artifact(result)
    write_document(document, path)
    return document


def load_artifact(path: str) -> Dict[str, Any]:
    """Load and validate an artifact document from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_artifact(document)
    return document


_REQUIRED_FIELDS = {
    "schema": str,
    "schema_version": int,
    "package_version": str,
    "experiment": str,
    "title": str,
    "claim": str,
    "quick": bool,
    "workers": int,
    "created_unix": (int, float),
    "grid": dict,
    "fixed": dict,
    "wall_clock_seconds": (int, float),
    "points": list,
}


def validate_artifact(document: Any) -> None:
    """Raise :class:`ArtifactError` unless ``document`` is a valid artifact."""
    if not isinstance(document, dict):
        raise ArtifactError(f"artifact must be a JSON object, got {type(document).__name__}")
    for fieldname, expected in _REQUIRED_FIELDS.items():
        if fieldname not in document:
            raise ArtifactError(f"artifact is missing required field {fieldname!r}")
        if not isinstance(document[fieldname], expected):
            raise ArtifactError(
                f"artifact field {fieldname!r} has type {type(document[fieldname]).__name__}, "
                f"expected {expected}"
            )
    if document["schema"] != SCHEMA_ID:
        raise ArtifactError(f"unknown artifact schema {document['schema']!r} (expected {SCHEMA_ID!r})")
    if document["schema_version"] > SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact schema_version {document['schema_version']} is newer than "
            f"supported version {SCHEMA_VERSION}"
        )
    for key, values in document["grid"].items():
        if not isinstance(values, list):
            raise ArtifactError(f"grid entry {key!r} must be a list of swept values")
    for index, point in enumerate(document["points"]):
        if not isinstance(point, dict):
            raise ArtifactError(f"points[{index}] must be an object")
        for fieldname, expected in (("params", dict), ("metrics", dict), ("seconds", (int, float))):
            if fieldname not in point:
                raise ArtifactError(f"points[{index}] is missing {fieldname!r}")
            if not isinstance(point[fieldname], expected):
                raise ArtifactError(f"points[{index}].{fieldname} has the wrong type")
