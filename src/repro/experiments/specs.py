"""The built-in experiment specs (one per reproduced table/figure/claim).

Each spec below is the single source of truth for one experiment: the
``benchmarks/bench_*.py`` files are thin pytest wrappers around these
registrations, and ``python -m repro run <name>`` executes exactly the same
point functions.  Point functions are module-level and derive all randomness
from explicit seed parameters so the runner can fan them out across worker
processes.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..analysis.serialize import stats_summary, weighted_checksum
from ..baselines import chs23_lis_length, chs23_multiply, kt10_lis_length
from ..core import multiply_permutations, random_permutation
from ..core.plan import MultiplyPlan, resolve_plan
from ..core.permutation import Permutation
from ..core.seaweed import expand_block_results, split_into_blocks
from ..lcs import count_matches, lcs_cluster_for, lcs_length_dp, mpc_lcs_length
from ..lis import (
    lis_length,
    lis_length_seaweed,
    mpc_lis_approx,
    mpc_lis_length,
    value_interval_matrix,
)
from ..mpc import MPCCluster, ScalabilityError
from ..server.loadgen import PERCENTILE_METHOD, percentile_linear
from ..mpc_monge import MongeMPCConfig, mpc_multiply, mpc_multiply_warmup
from ..mpc_monge.constant_round import mpc_combine
from ..service import (
    IndexCache,
    QueryRequest,
    QueryService,
    TargetSpec,
    build_lis_index,
    parse_requests_document,
)
from ..streaming import StreamingLIS
from ..workloads import make_sequence, make_string_pair
from .spec import ExperimentSpec, PointResult, register_spec

__all__ = ["sequential_case_callable"]


def _permutation_pair(n: int, seed: int):
    rng = np.random.default_rng(seed)
    return random_permutation(n, rng), random_permutation(n, rng)


def _point_plan(plan=None, fanin=None, base_size=None):
    """Resolve the optional per-point multiply-engine knobs.

    Returns ``None`` when no knob was set (callers then keep their historical
    defaults), so recorded artifacts only change when a knob is actually
    used.  Knobs are mechanics-only: every metric other than wall-clock is
    bit-identical across plans.
    """
    if plan is None and fanin is None and base_size is None:
        return None
    return resolve_plan(plan, fanin=fanin, base_size=base_size)


def _workload_permutation_pair(workload: str, n: int, seed: int):
    """Operands for the multiply ablations, shaped by a named workload.

    ``P_A`` is the rank permutation of the named sequence workload (stable
    ranks, so duplicate-heavy workloads like ``zipfian`` still yield a valid
    permutation); ``P_B`` is an independent random permutation.  ``random``
    keeps the historical pair so existing grids reproduce unchanged.
    """
    if workload == "random":
        return _permutation_pair(n, seed)
    sequence = make_sequence(workload, n, seed=seed)
    order = np.argsort(sequence, kind="stable")
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(seed + 1)
    return Permutation(ranks), random_permutation(n, rng)


def _series_by(points: List[PointResult], group_key: str, x: str, y: str) -> Dict[Any, List[Any]]:
    """Group one metric into per-group series ordered by ``x``."""
    groups: Dict[Any, List[Any]] = {}
    for point in sorted(points, key=lambda p: p.row().get(x, 0)):
        row = point.row()
        if row.get(y) is None:
            continue
        groups.setdefault(row[group_key], []).append(row[y])
    return groups


# --------------------------------------------------------------------- table1
# E1 — Table 1: rounds / scalability / exactness of the four LIS algorithms.

TABLE1_ALGORITHMS: Dict[str, str] = {
    "kt10": "KT10 [KT10a]",
    "ims17_approx": "IMS17-style (1+eps)",
    "chs23": "CHS23",
    "this_paper": "This paper",
}


def _table1_algorithm(name: str, epsilon: float) -> Callable[[MPCCluster, np.ndarray], int]:
    if name == "kt10":
        return kt10_lis_length
    if name == "ims17_approx":
        return lambda cluster, seq: mpc_lis_approx(cluster, seq, epsilon=epsilon).length
    if name == "chs23":
        return chs23_lis_length
    if name == "this_paper":
        return mpc_lis_length
    raise KeyError(f"unknown Table 1 algorithm {name!r}")


def run_table1_point(
    algorithm: str, delta: float, n: int, seed: int = 1, epsilon: float = 0.1, backend: str = "serial"
) -> Dict[str, Any]:
    seq = make_sequence("random", n, seed=seed)
    exact = lis_length(seq)
    fn = _table1_algorithm(algorithm, epsilon)
    try:
        cluster = MPCCluster(n, delta=delta, backend=backend)
        value = int(fn(cluster, seq))
        return {
            "label": TABLE1_ALGORITHMS[algorithm],
            "rounds": cluster.stats.num_rounds,
            "scalable": "yes",
            "answer": "exact" if value == exact else f"approx ({value}/{exact})",
            "lis": exact,
            "stats": stats_summary(cluster.stats),
        }
    except ScalabilityError:
        return {
            "label": TABLE1_ALGORITHMS[algorithm],
            "rounds": None,
            "scalable": "no (delta too large)",
            "answer": None,
            "lis": exact,
            "stats": None,
        }


def check_table1(points: List[PointResult]) -> None:
    # The exactness column is the claim; round counts at one fixed n are
    # reported, not compared (the asymptotic comparison is `lis_rounds`).
    for point in points:
        row = point.row()
        if row["algorithm"] in ("chs23", "this_paper"):
            assert row["answer"] == "exact", (
                f"{row['algorithm']} must be exact at delta={row['delta']}, got {row['answer']}"
            )
        if row["algorithm"] == "this_paper":
            assert row["scalable"] == "yes", "this paper must be fully scalable"


def timer_table1(delta: float = 0.5, n: int = 4096) -> Callable[[], Any]:
    # Timer factories take optional kwargs so the parametrized benchmark
    # wrappers can time per-parameter variants; the CLI never passes any.
    seq = make_sequence("random", n, seed=1)
    return lambda: mpc_lis_length(MPCCluster(n, delta=delta), seq)


register_spec(
    ExperimentSpec(
        name="table1",
        title="Table 1 reproduction: massively parallel LIS algorithms",
        claim="Table 1 (Theorems 1.1-1.3 vs prior work)",
        grid={"delta": [0.25, 0.5], "algorithm": list(TABLE1_ALGORITHMS)},
        fixed={"n": 4096, "seed": 1, "epsilon": 0.1, "backend": "serial"},
        quick_fixed={"n": 512},
        point=run_table1_point,
        columns=["label", "delta", "rounds", "scalable", "answer"],
        checks=check_table1,
        timer=timer_table1,
        bench_file="benchmarks/bench_table1.py",
    )
)


# ------------------------------------------------------------ multiply_rounds
# E2 — Theorem 1.1: O(1)-round multiplication vs the warm-up and CHS23.

MULTIPLY_ALGORITHMS: Dict[str, str] = {
    "this_paper": "this paper",
    "warmup": "warm-up (fanin 2)",
    "chs23": "CHS23-style",
}


def run_multiply_point(
    algorithm: str, n: int, delta: float, seed: int = 2024, backend: str = "serial"
) -> Dict[str, Any]:
    pa, pb = _permutation_pair(n, seed + n)
    cluster = MPCCluster(n, delta=delta, backend=backend)
    if algorithm == "this_paper":
        result = mpc_multiply(cluster, pa, pb)
    elif algorithm == "warmup":
        result = mpc_multiply_warmup(cluster, pa, pb)
    elif algorithm == "chs23":
        result = chs23_multiply(cluster, pa, pb)
    else:
        raise KeyError(f"unknown multiply algorithm {algorithm!r}")
    if n <= 16384:
        assert result == multiply_permutations(pa, pb), f"{algorithm} produced a wrong product at n={n}"
    summary = stats_summary(cluster.stats)
    return {
        "label": MULTIPLY_ALGORITHMS[algorithm],
        "rounds": summary["rounds"],
        "peak_machine_load": summary["peak_machine_load"],
        "space_per_machine": summary["space_per_machine"],
        "total_communication": summary["total_communication"],
    }


def check_multiply_rounds(points: List[PointResult]) -> None:
    series = _series_by(points, "algorithm", "n", "rounds")
    main, warm = series.get("this_paper"), series.get("warmup")
    if main and warm and len(main) >= 2 and len(warm) >= 2:
        growth_main = main[-1] / main[0]
        growth_warm = warm[-1] / warm[0]
        assert growth_main < growth_warm, (
            f"constant-round algorithm grew {growth_main:.2f}x vs warm-up {growth_warm:.2f}x"
        )


def timer_multiply_rounds() -> Callable[[], Any]:
    n, delta = 4096, 0.5
    pa, pb = _permutation_pair(n, 2024 + n)
    return lambda: mpc_multiply(MPCCluster(n, delta=delta), pa, pb)


register_spec(
    ExperimentSpec(
        name="multiply_rounds",
        title="Multiplication rounds vs n (Theorem 1.1)",
        claim="Theorem 1.1 (O(1)-round subunit-Monge multiplication)",
        grid={"n": [1024, 4096, 16384, 65536], "algorithm": list(MULTIPLY_ALGORITHMS)},
        fixed={"delta": 0.5, "seed": 2024, "backend": "serial"},
        quick_grid={"n": [1024, 4096], "algorithm": list(MULTIPLY_ALGORITHMS)},
        point=run_multiply_point,
        columns=["n", "label", "rounds", "peak_machine_load", "space_per_machine"],
        checks=check_multiply_rounds,
        timer=timer_multiply_rounds,
        bench_file="benchmarks/bench_multiply_rounds.py",
    )
)


# ---------------------------------------------------------- scalability_delta
# E3 — Fully-scalable claim: rounds and space across the whole delta range.


def run_scalability_point(
    delta: float, workload: str = "random", n: int = 8192, seed: int = 2024, backend: str = "serial"
) -> Dict[str, Any]:
    pa, pb = _workload_permutation_pair(workload, n, seed)
    cluster = MPCCluster(n, delta=delta, backend=backend)
    mpc_multiply(cluster, pa, pb)
    summary = stats_summary(cluster.stats)
    assert summary["peak_machine_load"] <= summary["space_per_machine"], (
        f"space budget violated at delta={delta} ({workload})"
    )
    return summary


def check_scalability(points: List[PointResult]) -> None:
    for point in points:
        row = point.row()
        assert row["peak_machine_load"] <= row["space_per_machine"], (
            f"space budget violated at delta={row['delta']}"
        )


def timer_scalability() -> Callable[[], Any]:
    n, delta = 8192, 0.5
    pa, pb = _permutation_pair(n, 2024)
    return lambda: mpc_multiply(MPCCluster(n, delta=delta), pa, pb)


register_spec(
    ExperimentSpec(
        name="scalability_delta",
        title="Scalability sweep: rounds and space across delta (Theorem 1.2)",
        claim="Theorem 1.2 (fully scalable: every 0 < delta < 1)",
        grid={
            "delta": [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            "workload": ["random", "zipfian", "block_sorted_noisy", "adversarial_alternating"],
        },
        fixed={"n": 8192, "seed": 2024, "backend": "serial"},
        quick_grid={"delta": [0.25, 0.5, 0.75], "workload": ["random", "zipfian"]},
        quick_fixed={"n": 1024},
        point=run_scalability_point,
        columns=["delta", "workload", "machines", "space_per_machine", "rounds", "peak_machine_load", "space_utilisation"],
        checks=check_scalability,
        timer=timer_scalability,
        bench_file="benchmarks/bench_scalability_delta.py",
    )
)


# ----------------------------------------------------------------- lis_rounds
# E4 — Theorem 1.3: exact LIS round growth vs the CHS23-style baseline.


def run_lis_rounds_point(workload: str, n: int, delta: float, backend: str = "serial") -> Dict[str, Any]:
    seq = make_sequence(workload, n, seed=n)
    expected = lis_length(seq)
    ours = MPCCluster(n, delta=delta, backend=backend)
    assert mpc_lis_length(ours, seq) == expected, "this paper's LIS is not exact"
    chs = MPCCluster(n, delta=delta, backend=backend)
    assert chs23_lis_length(chs, seq) == expected, "CHS23 baseline LIS is not exact"
    return {
        "lis": expected,
        "rounds": ours.stats.num_rounds,
        "rounds_chs23": chs.stats.num_rounds,
        "stats": stats_summary(ours.stats),
    }


def check_lis_rounds(points: List[PointResult]) -> None:
    for point in points:
        row = point.row()
        assert row["rounds"] < row["rounds_chs23"], (
            f"this paper must beat CHS23 rounds at n={row['n']} ({row['workload']})"
        )


def timer_lis_rounds() -> Callable[[], Any]:
    n, delta = 512, 0.5
    seq = make_sequence("random", n, seed=n)
    return lambda: mpc_lis_length(MPCCluster(n, delta=delta), seq)


register_spec(
    ExperimentSpec(
        name="lis_rounds",
        title="Exact LIS rounds vs n (Theorem 1.3)",
        claim="Theorem 1.3 (exact LIS in O(log n) rounds)",
        grid={"workload": ["random", "planted"], "n": [512, 2048, 8192]},
        fixed={"delta": 0.5, "backend": "serial"},
        quick_grid={"workload": ["random", "planted"], "n": [512, 1024]},
        point=run_lis_rounds_point,
        columns=["workload", "n", "lis", "rounds", "rounds_chs23"],
        checks=check_lis_rounds,
        timer=timer_lis_rounds,
        bench_file="benchmarks/bench_lis_rounds.py",
    )
)


# ----------------------------------------------------------------- sequential
# E5 — Sequential substrate wall-clock sanity checks (not a paper claim).

SEQUENTIAL_TASKS = ("multiply", "seaweed_lis", "patience", "semilocal_matrix")


def sequential_case_callable(
    task: str, n: int, plan: Optional[MultiplyPlan] = None
) -> Callable[[], Any]:
    """The timed kernel of one sequential case (shared with pytest-benchmark).

    Each task keeps the seed convention of the original benchmark harness
    (multiply: 2024, sequences: seed=n, semilocal: seed=7) so timings stay
    comparable across PRs; there is deliberately no global seed knob.
    ``plan`` tunes the multiply engine where the task bottoms out in it.
    """
    if task == "multiply":
        pa, pb = _permutation_pair(n, 2024)
        return lambda: multiply_permutations(pa, pb, plan=plan)
    if task == "seaweed_lis":
        seq = make_sequence("random", n, seed=n)
        return lambda: lis_length_seaweed(seq)
    if task == "patience":
        seq = make_sequence("random", n, seed=n)
        return lambda: lis_length(seq)
    if task == "semilocal_matrix":
        seq = make_sequence("random", n, seed=7)
        return lambda: value_interval_matrix(seq, plan=plan)
    raise KeyError(f"unknown sequential task {task!r}")


def _sequential_point(
    case: Any,
    backend: str = "serial",
    fanin: Optional[int] = None,
    base_size: Optional[int] = None,
    plan: Optional[str] = None,
) -> Dict[str, Any]:
    # `backend` is accepted for CLI uniformity (`--backend` works on every
    # spec) but unused: the sequential substrate has no cluster to schedule.
    if not isinstance(case, dict) or not {"task", "n"} <= set(case):
        raise ValueError(
            "the sequential experiment's grid values are objects like "
            f"{{'task': 'multiply', 'n': 2048}}; got {case!r} "
            "(this grid cannot be overridden with the CLI --set flag)"
        )
    return run_sequential_point(
        case["task"], case["n"], plan=_point_plan(plan, fanin, base_size)
    )


def run_sequential_point(
    task: str, n: int, plan: Optional[MultiplyPlan] = None
) -> Dict[str, Any]:
    kernel = sequential_case_callable(task, n, plan=plan)
    started = time.perf_counter()
    result = kernel()
    seconds = time.perf_counter() - started
    if task == "multiply":
        ok = result.size == n
    elif task in ("seaweed_lis", "patience"):
        ok = result == lis_length(make_sequence("random", n, seed=n))
    else:
        ok = result.lis_length() == lis_length(make_sequence("random", n, seed=7))
    return {"task": task, "n": n, "kernel_seconds": seconds, "ok": bool(ok)}


def check_sequential(points: List[PointResult]) -> None:
    for point in points:
        row = point.row()
        assert row["ok"], f"sequential task {row['task']} at n={row['n']} returned a wrong answer"


def timer_sequential() -> Callable[[], Any]:
    return sequential_case_callable("multiply", 2048)


register_spec(
    ExperimentSpec(
        name="sequential",
        title="Sequential substrate wall-clock (seaweed framework sanity)",
        claim="substrate sanity check (no corresponding paper experiment)",
        grid={
            "case": [
                {"task": "multiply", "n": 2048},
                {"task": "multiply", "n": 8192},
                {"task": "seaweed_lis", "n": 1024},
                {"task": "seaweed_lis", "n": 4096},
                {"task": "patience", "n": 4096},
                {"task": "patience", "n": 65536},
                {"task": "semilocal_matrix", "n": 2048},
            ]
        },
        quick_grid={
            "case": [
                {"task": "multiply", "n": 1024},
                {"task": "seaweed_lis", "n": 512},
                {"task": "patience", "n": 4096},
                {"task": "semilocal_matrix", "n": 512},
            ]
        },
        point=_sequential_point,
        fixed={"backend": "serial"},
        columns=["task", "n", "kernel_seconds", "ok"],
        checks=check_sequential,
        timer=timer_sequential,
        bench_file="benchmarks/bench_sequential.py",
    )
)


# ------------------------------------------------------------------------ lcs
# E6 — Corollary 1.3.1: LCS rounds and total space via Hunt-Szymanski.

LCS_WORKLOADS: Dict[str, Dict[str, Any]] = {
    "random16": {"label": "random, alphabet 16", "workload": "random_pair", "alphabet": 16},
    "random4": {"label": "random, alphabet 4", "workload": "random_pair", "alphabet": 4},
    "correlated10": {
        "label": "correlated (10% mutation)",
        "workload": "correlated_pair",
        "alphabet": 16,
        "mutation_rate": 0.1,
    },
}


def run_lcs_point(workload: str, n: int, backend: str = "serial") -> Dict[str, Any]:
    try:
        case = LCS_WORKLOADS[workload]
    except KeyError:
        raise KeyError(
            f"unknown lcs workload {workload!r}; available: {sorted(LCS_WORKLOADS)}"
        ) from None
    kwargs: Dict[str, Any] = {"alphabet": case["alphabet"]}
    if case["workload"] == "correlated_pair":
        kwargs["mutation_rate"] = case["mutation_rate"]
        seed = n
    else:
        seed = n + case["alphabet"]
    s, t = make_string_pair(case["workload"], n, seed=seed, **kwargs)
    matches = count_matches(s, t)
    cluster = lcs_cluster_for(len(s), len(t), matches, backend=backend)
    result = mpc_lcs_length(cluster, s, t)
    assert result.length == lcs_length_dp(s, t), f"MPC LCS is not exact on {workload}"
    return {
        "label": case["label"],
        "matches": int(matches),
        "machines": cluster.num_machines,
        "space_per_machine": cluster.space_per_machine,
        "rounds": cluster.stats.num_rounds,
        "lcs": int(result.length),
    }


def timer_lcs() -> Callable[[], Any]:
    n = 256
    s, t = make_string_pair("random_pair", n, seed=3, alphabet=16)
    return lambda: mpc_lcs_length(lcs_cluster_for(n, n, count_matches(s, t)), s, t)


register_spec(
    ExperimentSpec(
        name="lcs",
        title="LCS via Hunt-Szymanski (Corollary 1.3.1)",
        claim="Corollary 1.3.1 (exact LCS in O(log n) rounds)",
        grid={"workload": list(LCS_WORKLOADS)},
        fixed={"n": 256, "backend": "serial"},
        quick_fixed={"n": 96},
        point=run_lcs_point,
        columns=["label", "matches", "machines", "space_per_machine", "rounds", "lcs"],
        timer=timer_lcs,
        bench_file="benchmarks/bench_lcs.py",
    )
)


# -------------------------------------------------------------- communication
# E7 — Communication volume per round of the MPC algorithms.


def run_communication_point(n: int, delta: float, seed: int = 2024, backend: str = "serial") -> Dict[str, Any]:
    pa, pb = _permutation_pair(n, seed + n)
    mult = MPCCluster(n, delta=delta, backend=backend)
    mpc_multiply(mult, pa, pb)
    seq = make_sequence("random", n, seed=n)
    lis = MPCCluster(n, delta=delta, backend=backend)
    mpc_lis_length(lis, seq)
    return {
        "multiply_total": mult.stats.total_communication,
        "multiply_max_round": mult.stats.max_round_communication,
        "multiply_words_per_elem": mult.stats.total_communication / n,
        "lis_total": lis.stats.total_communication,
        "lis_words_per_elem": lis.stats.total_communication / n,
    }


def timer_communication() -> Callable[[], Any]:
    n, delta = 1024, 0.5
    pa, pb = _permutation_pair(n, 2024 + n)
    return lambda: mpc_multiply(MPCCluster(n, delta=delta), pa, pb)


register_spec(
    ExperimentSpec(
        name="communication",
        title="Total communication (words): multiply and LIS",
        claim="communication accounting of Theorems 1.1 / 1.3",
        grid={"n": [1024, 4096, 16384]},
        fixed={"delta": 0.5, "seed": 2024, "backend": "serial"},
        quick_grid={"n": [1024, 4096]},
        point=run_communication_point,
        columns=[
            "n",
            "multiply_total",
            "multiply_max_round",
            "multiply_words_per_elem",
            "lis_total",
            "lis_words_per_elem",
        ],
        timer=timer_communication,
        bench_file="benchmarks/bench_communication.py",
    )
)


# ------------------------------------------------------------- fanin_ablation
# E8 — Ablation: fan-in H of the multiway combine.


def run_fanin_point(
    fanin: int, workload: str = "random", n: int = 8192, delta: float = 0.5,
    seed: int = 2024, backend: str = "serial",
    base_size: Optional[int] = None, plan: Optional[str] = None,
) -> Dict[str, Any]:
    """One fan-in measurement.  ``fanin`` sweeps the MPC combine's H; the
    optional ``base_size``/``plan`` knobs tune the *sequential* multiply
    engine used for the local phases and the cross-check (mechanics only)."""
    multiply_plan = _point_plan(plan, None, base_size)
    pa, pb = _workload_permutation_pair(workload, n, seed)
    cluster = MPCCluster(n, delta=delta, backend=backend)
    config = MongeMPCConfig(fanin=fanin, tree_arity=fanin, multiply_plan=multiply_plan)
    assert mpc_multiply(cluster, pa, pb, config) == multiply_permutations(
        pa, pb, plan=multiply_plan
    ), f"wrong product at fan-in {fanin} ({workload})"
    return {
        "rounds": cluster.stats.num_rounds,
        "peak_machine_load": cluster.stats.peak_machine_load,
        "total_communication": cluster.stats.total_communication,
    }


def check_fanin(points: List[PointResult]) -> None:
    # Per workload: larger fan-in must not deepen the recursion.
    by_workload: Dict[Any, Dict[int, int]] = {}
    for point in points:
        row = point.row()
        by_workload.setdefault(row.get("workload", "random"), {})[row["fanin"]] = row["rounds"]
    for workload, rounds in by_workload.items():
        if len(rounds) >= 2:
            assert rounds[max(rounds)] <= rounds[min(rounds)], (
                f"larger fan-in must not use more rounds than the smallest fan-in ({workload})"
            )


def timer_fanin() -> Callable[[], Any]:
    n, delta = 8192, 0.5
    pa, pb = _permutation_pair(n, 2024)
    config = MongeMPCConfig(fanin=8, tree_arity=8)
    return lambda: mpc_multiply(MPCCluster(n, delta=delta), pa, pb, config)


register_spec(
    ExperimentSpec(
        name="fanin_ablation",
        title="Fan-in ablation of the multiway combine",
        claim="Section 3 (fan-in H = n^((1-delta)/10) trade-off)",
        grid={
            "fanin": [2, 4, 8, 16],
            "workload": ["random", "zipfian", "block_sorted_noisy", "adversarial_alternating"],
        },
        fixed={"n": 8192, "delta": 0.5, "seed": 2024, "backend": "serial"},
        quick_grid={"fanin": [2, 4, 8, 16], "workload": ["random", "adversarial_alternating"]},
        quick_fixed={"n": 1024},
        point=run_fanin_point,
        columns=["fanin", "workload", "rounds", "peak_machine_load", "total_communication"],
        checks=check_fanin,
        timer=timer_fanin,
        bench_file="benchmarks/bench_fanin_ablation.py",
    )
)


# ------------------------------------------------------------- space_overhead
# E9 — Ablation: grid spacing G and the subgrid-instance space overhead.


@functools.lru_cache(maxsize=4)
def _space_overhead_inputs(n: int, num_blocks: int, seed: int):
    # Shared read-only setup for every grid_size point of one sweep: the
    # sequential reference product and block split do not depend on G.
    pa, pb = _permutation_pair(n, seed)
    expected = multiply_permutations(pa, pb)
    split = split_into_blocks(pa, pb, num_blocks)
    results = [multiply_permutations(a, b) for a, b in zip(split.a_blocks, split.b_blocks)]
    rows_, cols_, colors_ = expand_block_results(results, split)
    return expected, rows_, cols_, colors_


def run_space_overhead_point(
    grid_size: int, n: int, num_blocks: int, delta: float, seed: int = 2024, backend: str = "serial"
) -> Dict[str, Any]:
    expected, rows_, cols_, colors_ = _space_overhead_inputs(n, num_blocks, seed)
    cluster = MPCCluster(n, delta=delta, backend=backend)
    merged, report = mpc_combine(
        cluster, rows_, cols_, colors_, num_blocks, n, MongeMPCConfig(grid_size=grid_size)
    )
    assert merged.as_permutation() == expected, f"wrong combine result at G={grid_size}"
    return {
        "grid_lines": report.num_grid_lines,
        "active_subgrids": report.num_active_subgrids,
        "max_instance_words": report.max_instance_words,
        "space_per_machine": cluster.space_per_machine,
        "combine_rounds": cluster.stats.num_rounds,
    }


def timer_space_overhead() -> Callable[[], Any]:
    n, num_blocks, delta = 4096, 4, 0.5
    _, rows_, cols_, colors_ = _space_overhead_inputs(n, num_blocks, 2024)
    return lambda: mpc_combine(
        MPCCluster(n, delta=delta), rows_, cols_, colors_, num_blocks, n, MongeMPCConfig(grid_size=64)
    )


register_spec(
    ExperimentSpec(
        name="space_overhead",
        title="Grid-size / subgrid space-overhead ablation",
        claim="Section 3.3 (subgrid instance packaging overhead)",
        grid={"grid_size": [16, 32, 64, 128]},
        fixed={"n": 4096, "num_blocks": 4, "delta": 0.5, "seed": 2024, "backend": "serial"},
        quick_grid={"grid_size": [16, 32]},
        quick_fixed={"n": 1024},
        point=run_space_overhead_point,
        columns=[
            "grid_size",
            "grid_lines",
            "active_subgrids",
            "max_instance_words",
            "space_per_machine",
            "combine_rounds",
        ],
        timer=timer_space_overhead,
        bench_file="benchmarks/bench_space_overhead.py",
    )
)


# ----------------------------------------------------------- backend_wallclock
# E10 — Execution engine: wall-clock and accounting identity across backends.


def run_backend_wallclock_point(backend: str, n: int, delta: float, seed: int = 2024) -> Dict[str, Any]:
    import os

    pa, pb = _permutation_pair(n, seed + n)
    cluster = MPCCluster(n, delta=delta, backend=backend)
    started = time.perf_counter()
    result = mpc_multiply(cluster, pa, pb)
    multiply_seconds = time.perf_counter() - started

    seq = make_sequence("random", n, seed=seed)
    lis_cluster = MPCCluster(n, delta=delta, backend=backend)
    started = time.perf_counter()
    lis_value = mpc_lis_length(lis_cluster, seq)
    lis_seconds = time.perf_counter() - started

    # A cheap order-sensitive digest of the product; identical across backends
    # iff the output permutations are bit-identical.
    checksum = weighted_checksum(result.row_to_col)
    return {
        "backend": backend,
        "multiply_seconds": multiply_seconds,
        "lis_seconds": lis_seconds,
        "rounds": cluster.stats.num_rounds,
        "total_communication": cluster.stats.total_communication,
        "peak_machine_load": cluster.stats.peak_machine_load,
        "lis_rounds": lis_cluster.stats.num_rounds,
        "lis": int(lis_value),
        "product_checksum": checksum,
        "cpu_count": os.cpu_count(),
    }


def check_backend_wallclock(points: List[PointResult]) -> None:
    # The scientific assertion: backends change wall-clock only.  All points
    # of one run share the same fixed n, so every simulated quantity must be
    # identical across the swept backends.
    invariant = ("rounds", "total_communication", "peak_machine_load", "lis_rounds", "lis", "product_checksum")
    rows = [point.row() for point in points]
    reference = rows[0]
    for row in rows[1:]:
        for key in invariant:
            assert row[key] == reference[key], (
                f"backend {row['backend']} diverges from {reference['backend']} "
                f"on {key}: {row[key]} != {reference[key]}"
            )


def timer_backend_wallclock() -> Callable[[], Any]:
    n, delta = 4096, 0.5
    pa, pb = _permutation_pair(n, 2024 + n)
    return lambda: mpc_multiply(MPCCluster(n, delta=delta, backend="process"), pa, pb)


register_spec(
    ExperimentSpec(
        name="backend_wallclock",
        title="Execution-backend wall-clock comparison (serial vs thread vs process)",
        claim="execution-engine invariant: backends change wall-clock only",
        grid={"backend": ["serial", "thread", "process"]},
        fixed={"n": 16384, "delta": 0.5, "seed": 2024},
        quick_fixed={"n": 2048},
        point=run_backend_wallclock_point,
        columns=[
            "backend",
            "multiply_seconds",
            "lis_seconds",
            "rounds",
            "peak_machine_load",
            "product_checksum",
            "cpu_count",
        ],
        checks=check_backend_wallclock,
        timer=timer_backend_wallclock,
        bench_file="benchmarks/bench_backend_wallclock.py",
    )
)


# --------------------------------------------------------- service_throughput
# E11 — The serving subsystem: cached batch querying vs rebuild-per-query.


def _service_query_windows(n: int, batch: int, seed: int):
    rng = np.random.default_rng(seed + batch)
    i = rng.integers(0, max(1, n - 1), size=batch)
    widths = rng.integers(1, max(2, n // 4), size=batch)
    j = np.minimum(i + widths, n)
    return i, j


def run_service_throughput_point(
    workload: str,
    batch: int,
    backend: str,
    n: int = 4096,
    seed: int = 7,
    delta: float = 0.5,
    naive_sample: int = 1,
    mode: str = "mpc",
    fanin: Optional[int] = None,
    base_size: Optional[int] = None,
    plan: Optional[str] = None,
) -> Dict[str, Any]:
    """One serving measurement: cold build, warm cached batch, naive rebuild.

    ``cached_qps`` times a *warm* ``QueryService.submit`` of the whole batch
    (fingerprint lookup + one vectorised dominance-count pass).  The naive
    baseline rebuilds the index from scratch for each of ``naive_sample``
    sampled queries — the pre-subsystem one-shot usage pattern — and its
    per-query cost is what ``speedup`` divides by.  The multiply-engine
    knobs (``fanin``/``base_size``/``plan``) tune sequential index builds.
    """
    multiply_plan = _point_plan(plan, fanin, base_size)
    i_arr, j_arr = _service_query_windows(n, batch, seed)
    target = TargetSpec(kind="sequence", workload=workload, n=n, seed=seed)
    service = QueryService(
        cache=IndexCache(), mode=mode, delta=delta, backend=backend, plan=multiply_plan
    )
    requests = [
        QueryRequest(op="substring_query", target=target, request_id="batch", i=i_arr, j=j_arr)
    ]
    cold = service.submit(requests)
    warm_started = time.perf_counter()
    warm = service.submit(requests)
    warm_seconds = time.perf_counter() - warm_started
    answers = np.asarray(warm.outcomes[0].result, dtype=np.int64)
    assert warm.outcomes[0].cache_hit and not cold.outcomes[0].cache_hit

    sequence = target.realise()
    naive_sample = max(1, int(naive_sample))
    naive_started = time.perf_counter()
    for q in range(naive_sample):
        rebuilt = build_lis_index(
            sequence, mode=mode, delta=delta, backend=backend, plan=multiply_plan
        )
        value = int(rebuilt.query_substrings(i_arr[q % batch], j_arr[q % batch])[0])
        assert value == int(answers[q % batch]), "naive rebuild disagrees with cached index"
    naive_per_query = (time.perf_counter() - naive_started) / naive_sample

    cached_qps = batch / warm_seconds if warm_seconds > 0 else float("inf")
    naive_qps = 1.0 / naive_per_query if naive_per_query > 0 else float("inf")
    checksum = weighted_checksum(answers)
    counters = service.cache.counters()
    return {
        "n": n,
        "build_seconds": service.build_seconds,
        "warm_batch_seconds": warm_seconds,
        "cached_qps": cached_qps,
        "naive_per_query_seconds": naive_per_query,
        "naive_qps": naive_qps,
        "speedup": cached_qps / naive_qps,
        "cache_hits": counters["hits"],
        "cache_misses": counters["misses"],
        "cache_evictions": counters["evictions"],
        "cache_hit_rate": counters["hit_rate"],
        "answers_checksum": checksum,
    }


def check_service_throughput(points: List[PointResult]) -> None:
    # (1) Answers are bit-identical across execution backends; (2) cached
    # batch serving beats rebuild-per-query by >= 10x at production sizes.
    by_case: Dict[Any, Dict[str, Any]] = {}
    for point in points:
        row = point.row()
        case = (row["workload"], row["batch"])
        reference = by_case.setdefault(case, row)
        assert row["answers_checksum"] == reference["answers_checksum"], (
            f"backend {row['backend']} answers diverge from {reference['backend']} "
            f"on {case}: {row['answers_checksum']} != {reference['answers_checksum']}"
        )
        assert row["cache_hits"] >= 1 and row["cache_misses"] >= 1, (
            f"cache counters not exercised on {case} ({row['backend']})"
        )
        if row["n"] >= 4096:
            assert row["speedup"] >= 10.0, (
                f"cached batch serving must be >= 10x rebuild-per-query at "
                f"n={row['n']}, got {row['speedup']:.1f}x on {case} ({row['backend']})"
            )


def timer_service_throughput() -> Callable[[], Any]:
    n, batch = 4096, 256
    target = TargetSpec(kind="sequence", workload="random", n=n, seed=7)
    i_arr, j_arr = _service_query_windows(n, batch, 7)
    service = QueryService(cache=IndexCache(), mode="mpc")
    requests = [
        QueryRequest(op="substring_query", target=target, request_id="batch", i=i_arr, j=j_arr)
    ]
    service.submit(requests)  # cold build outside the timed region
    return lambda: service.submit(requests)


# ------------------------------------------------------- streaming_throughput
# E12 — The streaming subsystem: amortised sliding-window recomposition vs
# rebuild-per-tick (the PR-3 one-shot pattern applied to a changing input).


def _streaming_probe_windows(m: int, probes: int, seed: int):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, max(1, m), size=probes)
    widths = rng.integers(1, max(2, m // 3), size=probes)
    y = np.minimum(x + widths, m)
    return x, y


def _streaming_oracle_answers(window: np.ndarray, x, y, strict: bool):
    """Rebuild-from-scratch DP oracle for one tick's answers.

    The global answer and every rank-window probe are recomputed by patience
    sorting over the window's rank transform — a completely independent code
    path from the seaweed recomposition.
    """
    from ..lis import lis_length as patience_lis
    from ..lis import rank_transform

    ranks = rank_transform(window, strict=strict)
    answers = [patience_lis(ranks.tolist())]
    for xi, yi in zip(x, y):
        answers.append(patience_lis(ranks[(ranks >= xi) & (ranks < yi)].tolist()))
    return answers


def run_streaming_throughput_point(
    workload: str,
    backend: str,
    n: int = 4096,
    ticks: int = 12,
    slide: int = 64,
    leaf_size: int = 64,
    seed: int = 7,
    probes: int = 4,
    strict: bool = True,
    rebuild_sample: int = 2,
    fanin: Optional[int] = None,
    base_size: Optional[int] = None,
    plan: Optional[str] = None,
) -> Dict[str, Any]:
    """One streaming measurement: warm build, sliding ticks, rebuild baseline.

    Each tick slides the window by ``slide`` symbols and answers the global
    LIS plus ``probes`` rank-interval queries; every answer is checked
    against the DP oracle on the spot.  ``rebuild_per_tick_seconds`` times
    the cheapest possible per-tick alternative — a from-scratch sequential
    ``value_interval_matrix`` of the current window — and the sampled rebuild
    is also compared bit-for-bit against the aggregator's root product.  The
    multiply-engine knobs tune both the aggregator merges and the rebuild
    baseline (answers stay bit-identical across plans).
    """
    multiply_plan = _point_plan(plan, fanin, base_size)
    stream = make_sequence(workload, n + ticks * slide, seed=seed).astype(np.float64)
    session = StreamingLIS(
        window=n, strict=strict, leaf_size=leaf_size, backend=backend, plan=multiply_plan
    )
    warm_started = time.perf_counter()
    session.append(stream[:n])
    session.lis_length()
    warm_build_seconds = time.perf_counter() - warm_started

    before = session.counters()
    answers: List[int] = []
    tick_seconds: List[float] = []
    for tick in range(ticks):
        lo = n + tick * slide
        started = time.perf_counter()
        session.push(stream[lo : lo + slide])
        x, y = _streaming_probe_windows(len(session), probes, seed + tick)
        tick_answers = [session.lis_length()] + session.rank_intervals(x, y).tolist()
        tick_seconds.append(time.perf_counter() - started)
        answers.extend(tick_answers)
        window = session.window_values()
        assert np.array_equal(window, stream[lo + slide - n : lo + slide]), "window drifted"
        assert tick_answers == _streaming_oracle_answers(window, x, y, strict), (
            f"tick {tick} answers diverge from the rebuild-from-scratch DP oracle"
        )
    after = session.counters()

    rebuild_seconds: List[float] = []
    rebuilt = None
    for _ in range(max(1, int(rebuild_sample))):
        started = time.perf_counter()
        rebuilt = value_interval_matrix(
            session.window_values(), strict=strict, plan=multiply_plan
        )
        rebuild_seconds.append(time.perf_counter() - started)
    assert session.to_semilocal().matrix == rebuilt.matrix, (
        "aggregator root product diverges from the from-scratch seaweed rebuild"
    )

    amortised = float(np.mean(tick_seconds))
    rebuild_per_tick = float(np.mean(rebuild_seconds))
    return {
        "n": n,
        "ticks": ticks,
        "slide": slide,
        "amortised_tick_seconds": amortised,
        "rebuild_per_tick_seconds": rebuild_per_tick,
        "speedup": rebuild_per_tick / amortised if amortised > 0 else float("inf"),
        "warm_build_seconds": warm_build_seconds,
        "multiplies": after["multiplies"] - before["multiplies"],
        "blocks_rebuilt": after["blocks_built"] - before["blocks_built"],
        "node_store_bytes": after["node_store"]["nbytes"],
        "answers_checksum": weighted_checksum(np.asarray(answers, dtype=np.int64)),
    }


def check_streaming_throughput(points: List[PointResult]) -> None:
    # (1) Every tick answer is checksum-identical across execution backends
    # (the per-tick DP-oracle identity is asserted inside the point itself);
    # (2) the slide path genuinely recombines rather than rebuilding; (3) the
    # amortised tick beats rebuild-per-tick by >= 10x at production sizes.
    by_case: Dict[Any, Dict[str, Any]] = {}
    for point in points:
        row = point.row()
        reference = by_case.setdefault(row["workload"], row)
        assert row["answers_checksum"] == reference["answers_checksum"], (
            f"backend {row['backend']} answers diverge from {reference['backend']} "
            f"on {row['workload']}: {row['answers_checksum']} != {reference['answers_checksum']}"
        )
        assert row["blocks_rebuilt"] >= 1, f"no leaf blocks rebuilt on {row['workload']}"
        if row["n"] >= 4096:
            assert row["speedup"] >= 10.0, (
                f"amortised sliding tick must be >= 10x faster than rebuild-per-tick "
                f"at n={row['n']}, got {row['speedup']:.1f}x on {row['workload']} "
                f"({row['backend']})"
            )


def timer_streaming_throughput() -> Callable[[], Any]:
    n, slide = 2048, 64
    stream = make_sequence("random", 4 * n, seed=7).astype(np.float64)
    session = StreamingLIS(window=n, strict=True, leaf_size=64)
    session.append(stream[:n])
    session.lis_length()
    state = {"offset": n}

    def tick():
        if state["offset"] + slide > len(stream):
            state["offset"] = n
        session.push(stream[state["offset"] : state["offset"] + slide])
        state["offset"] += slide
        return session.lis_length()

    return tick


register_spec(
    ExperimentSpec(
        name="streaming_throughput",
        title="Streaming sliding-window recomposition vs rebuild-per-tick",
        claim="monoid recomposition of Theorem 1.3 products (streaming workloads)",
        grid={
            "workload": ["random", "near_sorted"],
            "backend": ["serial", "thread", "process"],
        },
        fixed={
            "n": 4096,
            "ticks": 12,
            "slide": 64,
            "leaf_size": 64,
            "seed": 7,
            "probes": 4,
            "strict": True,
            "rebuild_sample": 2,
        },
        quick_grid={"workload": ["random"], "backend": ["serial", "thread", "process"]},
        quick_fixed={"n": 512, "ticks": 6, "slide": 32, "rebuild_sample": 1},
        point=run_streaming_throughput_point,
        columns=[
            "workload",
            "backend",
            "amortised_tick_seconds",
            "rebuild_per_tick_seconds",
            "speedup",
            "multiplies",
            "blocks_rebuilt",
            "answers_checksum",
        ],
        checks=check_streaming_throughput,
        timer=timer_streaming_throughput,
        bench_file="benchmarks/bench_streaming_throughput.py",
    )
)


register_spec(
    ExperimentSpec(
        name="service_throughput",
        title="Query-serving throughput: cached batches vs rebuild-per-query",
        claim="serving amortisation of Theorem 1.3 / Corollary 1.3.2 build products",
        grid={
            "workload": ["random", "near_sorted"],
            "batch": [64, 256],
            "backend": ["serial", "thread", "process"],
        },
        fixed={"n": 4096, "seed": 7, "delta": 0.5, "naive_sample": 1, "mode": "mpc"},
        quick_grid={
            "workload": ["random"],
            "batch": [32],
            "backend": ["serial", "thread", "process"],
        },
        quick_fixed={"n": 512},
        point=run_service_throughput_point,
        columns=[
            "workload",
            "batch",
            "backend",
            "cached_qps",
            "naive_qps",
            "speedup",
            "cache_hits",
            "cache_misses",
            "answers_checksum",
        ],
        checks=check_service_throughput,
        timer=timer_service_throughput,
        bench_file="benchmarks/bench_service_throughput.py",
    )
)


# ------------------------------------------------------------ service_latency
# E13 — The HTTP front-end under load: open/closed-loop latency and QPS with
# request coalescing, measured by the in-process load generator.


def _latency_documents(
    workload: str, n: int, seed: int, batch: int, variants: int = 4
) -> List[Dict[str, Any]]:
    """Per-variant batch documents: same index fingerprint, distinct windows.

    Every variant queries the *same* named target, so concurrent variants
    coalesce into shared passes; the windows differ per variant so the
    bit-identity assertion actually distinguishes them.
    """
    documents = []
    for variant in range(variants):
        rng = np.random.default_rng(seed + 1000 * variant)
        i = rng.integers(0, max(1, n - 1), size=batch)
        widths = rng.integers(1, max(2, n // 4), size=batch)
        j = np.minimum(i + widths, n)
        documents.append(
            {
                "schema": "repro.service.requests",
                "version": 2,
                "requests": [
                    {
                        "op": "substring_query",
                        "id": f"v{variant}",
                        "workload": workload,
                        "n": n,
                        "seed": seed,
                        "i": i.tolist(),
                        "j": j.tolist(),
                    }
                ],
            }
        )
    return documents


def run_service_latency_point(
    pattern: str,
    batch: int,
    n: int = 2048,
    seed: int = 7,
    workload: str = "random",
    total: int = 96,
    concurrency: int = 8,
    rate: float = 120.0,
    duration: float = 0.8,
    max_inflight: int = 64,
    coalesce_seconds: float = 0.002,
    transport: Optional[str] = None,
) -> Dict[str, Any]:
    """One load-generator measurement against an in-process HTTP server.

    Starts a server, warms the index with one POST, then drives ``pattern``
    traffic (closed loop: ``concurrency`` saturating workers; open loop:
    fixed-``rate`` arrivals).  Every successful answer is compared
    bit-for-bit against a serial :class:`QueryService` oracle evaluated
    outside the server — the transport/coalescing machinery must never
    change an answer.
    """
    from ..server import get_json, post_json, run_load, start_server

    documents = _latency_documents(workload, n, seed, batch)
    handle = start_server(
        QueryService(cache=IndexCache()),
        transport=transport,
        max_inflight=max_inflight,
        coalesce_seconds=coalesce_seconds,
    )
    try:
        warm_status, _, warm_body = post_json(handle.url + "/v2/batch", documents[0])
        assert warm_status == 200 and warm_body["errors"] == 0, (
            f"warm-up POST failed: {warm_status} {warm_body}"
        )
        report = run_load(
            handle.url,
            documents,
            pattern=pattern,
            total=total,
            concurrency=concurrency,
            rate=rate,
            duration=duration,
        )
        _, _, stats = get_json(handle.url + "/stats")
    finally:
        handle.stop()

    # Serial oracle: the same requests through a fresh QueryService, no
    # HTTP, no coalescing, no concurrency.
    oracle = QueryService(cache=IndexCache())
    expected: Dict[int, List[Any]] = {}
    for variant, document in enumerate(documents):
        _, requests = parse_requests_document(document)
        outcome = oracle.submit(requests).outcomes[0]
        expected[variant] = [outcome.result]
    mismatches = 0
    for variant, observed_lists in report.answers.items():
        for observed in observed_lists:
            if observed != expected[variant]:
                mismatches += 1
    answers_checksum = weighted_checksum(
        np.asarray(
            [value for variant in sorted(expected) for value in expected[variant][0]],
            dtype=np.int64,
        )
    )
    coalescing = stats["coalescing"]
    return {
        "n": n,
        "transport": handle.transport,
        "aiohttp_available": bool(stats["aiohttp_available"]),
        "requests": report.requests,
        "ok": report.ok,
        "rejected": report.rejected,
        "failed": report.failed,
        "mismatches": mismatches,
        "qps": report.qps,
        "p50_ms": report.p50_ms,
        "p95_ms": report.p95_ms,
        "p99_ms": report.p99_ms,
        "max_ms": report.max_ms,
        "hist_p50_ms": report.hist_p50_ms,
        "hist_p95_ms": report.hist_p95_ms,
        "hist_p99_ms": report.hist_p99_ms,
        "latency_hist": dict(report.latency_hist),
        "percentile_method": report.percentile_method,
        "passes": coalescing["passes"],
        "merged_passes": coalescing["merged_passes"],
        "coalesced_requests": coalescing["coalesced_requests"],
        "peak_inflight": stats["peak_inflight"],
        "answers_checksum": answers_checksum,
    }


def check_service_latency(points: List[PointResult]) -> None:
    # (1) No request lost or wrong: every issued request is answered (or
    # honestly rejected), and every answer matched the serial oracle; (2)
    # latency percentiles are non-degenerate and ordered; (3) the same
    # workload yields the same answers checksum across arrival patterns.
    by_batch: Dict[Any, Dict[str, Any]] = {}
    for point in points:
        row = point.row()
        case = f"{row['pattern']}/batch={row['batch']}"
        assert row["ok"] > 0, f"no successful requests on {case}"
        assert row["failed"] == 0, f"{row['failed']} failed requests on {case}"
        assert row["mismatches"] == 0, (
            f"{row['mismatches']} answers diverged from the serial oracle on {case}"
        )
        assert row["ok"] + row["rejected"] == row["requests"], (
            f"requests silently dropped on {case}: "
            f"{row['ok']} ok + {row['rejected']} rejected != {row['requests']} issued"
        )
        assert 0.0 < row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"] <= row["max_ms"], (
            f"degenerate latency percentiles on {case}: "
            f"p50={row['p50_ms']}, p95={row['p95_ms']}, p99={row['p99_ms']}"
        )
        assert row["qps"] > 0.0, f"zero sustained QPS on {case}"
        assert row["transport"] in ("asyncio", "thread"), (
            f"unknown transport {row['transport']!r} on {case}"
        )
        reference = by_batch.setdefault(row["batch"], row)
        assert row["answers_checksum"] == reference["answers_checksum"], (
            f"answers diverge across arrival patterns at batch={row['batch']}: "
            f"{row['answers_checksum']} != {reference['answers_checksum']}"
        )


def timer_service_latency() -> Callable[[], Any]:
    from ..server import post_json, start_server

    documents = _latency_documents("random", 1024, 7, 16)
    handle = start_server(QueryService(cache=IndexCache()))
    post_json(handle.url + "/v2/batch", documents[0])
    state = {"next": 0}

    def shot():
        variant = state["next"] % len(documents)
        state["next"] += 1
        return post_json(handle.url + "/v2/batch", documents[variant])

    return shot


register_spec(
    ExperimentSpec(
        name="service_latency",
        title="HTTP front-end latency under open/closed-loop load",
        claim="network serving of Theorem 1.3 build products at interactive latency",
        grid={"pattern": ["closed", "open"], "batch": [1, 8]},
        fixed={
            "n": 2048,
            "seed": 7,
            "workload": "random",
            "total": 96,
            "concurrency": 8,
            "rate": 120.0,
            "duration": 0.8,
            "max_inflight": 64,
            "coalesce_seconds": 0.002,
        },
        quick_grid={"pattern": ["closed", "open"], "batch": [4]},
        quick_fixed={"n": 512, "total": 32, "rate": 80.0, "duration": 0.5},
        point=run_service_latency_point,
        columns=[
            "pattern",
            "batch",
            "transport",
            "ok",
            "rejected",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "merged_passes",
            "answers_checksum",
        ],
        checks=check_service_latency,
        timer=timer_service_latency,
        bench_file="benchmarks/bench_service_latency.py",
    )
)


# ------------------------------------------------------------- shard_scaling
# E14 — The sharded serving tier: consistent-hash routing across N worker
# processes, answers bit-identical to the single-process service, throughput
# and latency measured from 1 to N shards.


def _shard_scaling_requests(n: int, seed: int, windows: int) -> List[QueryRequest]:
    """A mixed LIS/LCS batch spanning many distinct index fingerprints.

    Six sequence targets × {length, substring windows, rank interval} plus
    three string-pair targets × {length, substring windows} touch ~21
    distinct ``(target, kind, strict)`` index identities — enough that the
    (deterministic) hash ring spreads them over every shard of the 1→4
    grid.  Window geometry is seeded so the batch is reproducible from
    ``(n, seed, windows)`` alone.
    """
    rng = np.random.default_rng(seed + 4099)
    requests: List[QueryRequest] = []

    def windows_for(length: int):
        i = rng.integers(0, max(1, length - 1), size=windows)
        widths = rng.integers(1, max(2, length // 4), size=windows)
        return i, np.minimum(i + widths, length)

    sequence_targets = [
        TargetSpec(kind="sequence", workload=workload, n=n, seed=seed + offset)
        for workload in ("random", "near_sorted", "duplicate_heavy")
        for offset in (0, 17)
    ]
    for index, target in enumerate(sequence_targets):
        i, j = windows_for(n)
        requests.append(
            QueryRequest(op="lis_length", target=target, request_id=f"len{index}")
        )
        requests.append(
            QueryRequest(
                op="substring_query", target=target, request_id=f"win{index}", i=i, j=j
            )
        )
        requests.append(
            QueryRequest(
                op="rank_interval_query",
                target=target,
                request_id=f"rank{index}",
                x=0,
                y=n,
            )
        )

    pair_targets = [
        TargetSpec(kind="string_pair", workload="correlated_pair", n=max(32, n // 4), seed=seed + offset)
        for offset in (3, 23, 43)
    ]
    for index, target in enumerate(pair_targets):
        i, j = windows_for(max(32, n // 4))
        requests.append(
            QueryRequest(op="lcs_length", target=target, request_id=f"lcs{index}")
        )
        requests.append(
            QueryRequest(
                op="substring_query", target=target, request_id=f"lwin{index}", i=i, j=j
            )
        )
    return requests


def _outcome_values(outcomes) -> np.ndarray:
    """Flatten a batch's results into one order-sensitive integer vector."""
    parts = [np.asarray(outcome.result, dtype=np.int64).ravel() for outcome in outcomes]
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)


def run_shard_scaling_point(
    shards: int,
    n: int = 768,
    seed: int = 7,
    windows: int = 8,
    rounds: int = 10,
    cache_bytes: int = 64 << 20,
    plan=None,
    fanin: Optional[int] = None,
    base_size: Optional[int] = None,
) -> Dict[str, Any]:
    """One shard-count measurement of the sharded serving tier.

    A serial :class:`QueryService` oracle answers the mixed batch first;
    the :class:`~repro.service.sharding.ShardRouter` must then reproduce
    those answers **bit-identically** on every timed round (asserted here,
    per round, not just in the cross-point checks).  Warm-up is the
    router's ``prefetch`` — so the timed rounds measure routed cache-hit
    serving, not index builds.  Inside a daemonic runner worker the router
    falls back to in-process shards automatically; the point records which
    flavour actually ran (``workers`` / ``serial_fallback``) and, on
    single-core hosts, an honest note that process fan-out cannot speed
    anything up there.
    """
    from ..service.sharding import ShardRouter

    requests = _shard_scaling_requests(n, seed, windows)

    oracle = QueryService(cache=IndexCache())
    expected = oracle.submit(requests).outcomes
    expected_values = [np.asarray(outcome.result, dtype=np.int64) for outcome in expected]
    answers_checksum = weighted_checksum(_outcome_values(expected))

    router = ShardRouter(
        shards,
        cache_bytes=cache_bytes,
        plan=_point_plan(plan, fanin, base_size),
        fanin=None,
        base_size=None,
    )
    try:
        prefetch_specs = sorted(
            {
                (
                    request.target,
                    request.index_kind(),
                    bool(request.strict) if request.index_kind() != "lcs" else True,
                )
                for request in requests
            },
            key=lambda item: item[1],
        )
        warmup = router.prefetch(prefetch_specs)

        latencies: List[float] = []
        mismatches = 0
        started = time.perf_counter()
        for _ in range(max(1, int(rounds))):
            round_started = time.perf_counter()
            batch = router.submit(requests)
            latencies.append((time.perf_counter() - round_started) * 1000.0)
            for outcome, reference in zip(batch.outcomes, expected_values):
                if not np.array_equal(
                    np.asarray(outcome.result, dtype=np.int64), reference
                ):
                    mismatches += 1
        elapsed = time.perf_counter() - started
        stats = router.stats()
    finally:
        router.close()

    assert mismatches == 0, (
        f"{mismatches} sharded answers diverged from the serial oracle "
        f"at shards={shards}"
    )
    lat = np.asarray(latencies, dtype=np.float64)
    cpu_count = os.cpu_count() or 1
    note = ""
    if cpu_count == 1 and stats["workers"] == "process":
        note = (
            "single-core host: worker processes interleave on one core, so "
            "sharding adds pipe/dispatch overhead without parallel speedup; "
            "QPS ratios here measure that overhead, not scaling"
        )
    elif stats["serial_fallback"]:
        note = f"in-process shards ({stats['serial_fallback']}): no parallelism measured"
    return {
        "requests": len(requests),
        "rounds": len(latencies),
        "workers": stats["workers"],
        "serial_fallback": stats["serial_fallback"] or "",
        "cpu_count": cpu_count,
        "prefetched": warmup["prefetched"],
        "qps": (len(requests) * len(latencies)) / elapsed if elapsed > 0 else 0.0,
        "p50_ms": percentile_linear(lat, 50),
        "p95_ms": percentile_linear(lat, 95),
        "p99_ms": percentile_linear(lat, 99),
        "max_ms": float(lat.max()),
        "percentile_method": PERCENTILE_METHOD,
        "mismatches": mismatches,
        "shards_exercised": stats["load"]["shards_exercised"],
        "per_shard_requests": stats["load"]["per_shard_requests"],
        "imbalance": stats["load"]["imbalance"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "restarts": stats["restarts"],
        "answers_checksum": answers_checksum,
        "note": note,
    }


def check_shard_scaling(points: List[PointResult]) -> None:
    # (1) Answers are shard-invariant: one checksum across every shard
    # count (and zero per-round oracle mismatches); (2) routing genuinely
    # fans out: every shard served at least one request; (3) no worker
    # crashed; (4) single-core hosts carry an honest overhead note instead
    # of a fictitious speedup claim.
    reference: Optional[int] = None
    for point in points:
        row = point.row()
        case = f"shards={row['shards']}"
        assert row["mismatches"] == 0, (
            f"{row['mismatches']} answers diverged from the serial oracle on {case}"
        )
        if reference is None:
            reference = row["answers_checksum"]
        assert row["answers_checksum"] == reference, (
            f"answers checksum diverges across shard counts on {case}: "
            f"{row['answers_checksum']} != {reference}"
        )
        assert row["shards_exercised"] == row["shards"], (
            f"only {row['shards_exercised']}/{row['shards']} shards served "
            f"requests on {case} — the batch does not exercise the ring"
        )
        assert row["restarts"] == 0, (
            f"{row['restarts']} unexpected worker restarts on {case}"
        )
        assert 0.0 < row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"] <= row["max_ms"], (
            f"degenerate latency percentiles on {case}"
        )
        assert row["qps"] > 0.0, f"zero sustained QPS on {case}"
        if row["cpu_count"] == 1 and row["workers"] == "process":
            assert row["note"], (
                f"single-core host must record an honest overhead note on {case}"
            )


def timer_shard_scaling() -> Callable[[], Any]:
    from ..service.sharding import ShardRouter

    requests = _shard_scaling_requests(512, 7, 4)
    # Inline workers: the timer is sampled many times by the benchmark
    # harness and must not leak a process pool per sample.
    router = ShardRouter(2, force_serial=True)
    router.submit(requests)

    def shot():
        return router.submit(requests)

    return shot


register_spec(
    ExperimentSpec(
        name="shard_scaling",
        title="Sharded serving tier: 1→N worker scaling of mixed batches",
        claim="consistent-hash fan-out of Theorem 1.3 build products across worker processes without changing answers",
        grid={"shards": [1, 2, 4]},
        fixed={
            "n": 768,
            "seed": 7,
            "windows": 8,
            "rounds": 10,
            "cache_bytes": 64 << 20,
        },
        quick_grid={"shards": [1, 2]},
        quick_fixed={"n": 256, "windows": 4, "rounds": 3},
        point=run_shard_scaling_point,
        columns=[
            "shards",
            "workers",
            "requests",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "shards_exercised",
            "imbalance",
            "restarts",
            "answers_checksum",
        ],
        checks=check_shard_scaling,
        timer=timer_shard_scaling,
        bench_file="benchmarks/bench_shard_scaling.py",
    )
)
