"""Declarative experiment specifications and the global spec registry.

An :class:`ExperimentSpec` captures everything one reproduction experiment
needs: a parameter grid (what is swept), fixed parameters (what is held
constant), a *point function* that executes one grid point and returns a flat
metrics dictionary, the column order for the text report, optional cross-point
consistency checks, and an optional timing callable for pytest-benchmark.

Specs are registered by name in a module-level registry; the CLI
(``python -m repro``), the benchmark wrappers under ``benchmarks/`` and the
test-suite all resolve experiments through :func:`get_spec`, so there is a
single code path from "name on the command line" to "rows in Table 1".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "ExperimentSpec",
    "expand_grid",
    "register_spec",
    "get_spec",
    "spec_names",
    "all_specs",
]

#: A point function: ``point(**params) -> {metric_name: value}``.
PointFn = Callable[..., Mapping[str, Any]]
#: Cross-point checks: ``checks(points)`` raises ``AssertionError`` on failure.
CheckFn = Callable[[List["PointResult"]], None]
#: A timer factory: returns the zero-argument callable pytest-benchmark times.
TimerFactory = Callable[[], Callable[[], Any]]


@dataclass
class PointResult:
    """One executed grid point: its parameters, metrics and wall-clock time."""

    params: Dict[str, Any]
    metrics: Dict[str, Any]
    seconds: float = 0.0

    def row(self) -> Dict[str, Any]:
        """Parameters and metrics flattened into one lookup dictionary."""
        merged = dict(self.params)
        merged.update(self.metrics)
        return merged


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative, registry-addressable reproduction experiment."""

    #: Registry key and CLI name (``python -m repro run <name>``).
    name: str
    #: Human-readable headline used for report blocks and artifacts.
    title: str
    #: The paper claim this experiment reproduces (e.g. "Theorem 1.3").
    claim: str
    #: Parameter grid: each key maps to the sequence of values to sweep.
    grid: Mapping[str, Sequence[Any]]
    #: One grid point: called as ``point(**fixed, **grid_point)``.
    point: PointFn
    #: Column order of the text table (keys of ``PointResult.row()``).
    columns: Sequence[str]
    #: Constant parameters merged into every point invocation.
    fixed: Mapping[str, Any] = field(default_factory=dict)
    #: Reduced grid for ``--quick`` runs (falls back to ``grid``).
    quick_grid: Optional[Mapping[str, Sequence[Any]]] = None
    #: Fixed-parameter overrides for ``--quick`` runs (merged over ``fixed``).
    quick_fixed: Optional[Mapping[str, Any]] = None
    #: Cross-point consistency checks (the scientific assertions).
    checks: Optional[CheckFn] = None
    #: Factory for the representative callable timed by pytest-benchmark.
    timer: Optional[TimerFactory] = None
    #: The benchmark module this spec powers (provenance / docs pointer).
    bench_file: str = ""

    def effective_grid(
        self, quick: bool = False, overrides: Optional[Mapping[str, Sequence[Any]]] = None
    ) -> Dict[str, Sequence[Any]]:
        """The grid actually swept: quick subset, then explicit overrides.

        Override keys must already exist in the grid — a typo on the command
        line should fail loudly, not silently sweep nothing.
        """
        base = self.quick_grid if (quick and self.quick_grid is not None) else self.grid
        merged: Dict[str, Sequence[Any]] = {key: list(values) for key, values in base.items()}
        for key, values in (overrides or {}).items():
            if key not in merged:
                raise KeyError(
                    f"spec {self.name!r} has no grid parameter {key!r}; "
                    f"swept parameters: {sorted(merged)}"
                )
            merged[key] = list(values)
        return merged

    def effective_fixed(self, quick: bool = False) -> Dict[str, Any]:
        fixed = dict(self.fixed)
        if quick and self.quick_fixed is not None:
            fixed.update(self.quick_fixed)
        return fixed


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of the grid, in key insertion order.

    ``{"a": [1, 2], "b": ["x"]}`` → ``[{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]``.
    An empty grid yields one empty point (a single unparameterised run).
    """
    keys = list(grid.keys())
    combos = itertools.product(*(grid[key] for key in keys))
    return [dict(zip(keys, combo)) for combo in combos]


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry; duplicate names are a programming error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"experiment spec {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_builtin_specs() -> None:
    # Imported lazily so `repro.experiments.spec` stays import-cycle-free and
    # worker processes that resolve specs by name self-populate the registry.
    from . import specs  # noqa: F401


def get_spec(name: str) -> ExperimentSpec:
    """Resolve a registered experiment by name."""
    _ensure_builtin_specs()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {', '.join(spec_names())}"
        ) from None


def is_registered(spec: ExperimentSpec) -> bool:
    """Whether this exact spec object is resolvable by name (pool fan-out needs it)."""
    return _REGISTRY.get(spec.name) is spec


def spec_names() -> List[str]:
    _ensure_builtin_specs()
    return sorted(_REGISTRY)


def all_specs() -> List[ExperimentSpec]:
    _ensure_builtin_specs()
    return [_REGISTRY[name] for name in spec_names()]
