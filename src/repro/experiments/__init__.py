"""The experiment-runner subsystem: declarative specs, runner, artifacts, CLI.

One registry of :class:`ExperimentSpec` objects powers three front doors —
the ``python -m repro`` CLI, the ``benchmarks/bench_*.py`` pytest wrappers,
and the test-suite — so every reproduced table and figure has exactly one
implementation.  See ``docs/ARCHITECTURE.md`` for the JSON artifact schema.
"""

from .artifacts import (
    SCHEMA_ID,
    SCHEMA_VERSION,
    ArtifactError,
    load_artifact,
    result_to_artifact,
    validate_artifact,
    write_artifact,
)
from .runner import ExperimentResult, run_experiment
from .spec import (
    ExperimentSpec,
    PointResult,
    all_specs,
    expand_grid,
    get_spec,
    register_spec,
    spec_names,
)

__all__ = [
    "SCHEMA_ID",
    "SCHEMA_VERSION",
    "ArtifactError",
    "load_artifact",
    "result_to_artifact",
    "validate_artifact",
    "write_artifact",
    "ExperimentResult",
    "run_experiment",
    "ExperimentSpec",
    "PointResult",
    "all_specs",
    "expand_grid",
    "get_spec",
    "register_spec",
    "spec_names",
]
