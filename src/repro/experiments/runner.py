"""The experiment runner: grid execution, optional process fan-out, reports.

The runner is deliberately dumb: it expands the spec's grid, calls the point
function once per grid point (serially or across a ``multiprocessing`` pool),
wraps the results in :class:`ExperimentResult`, and runs the spec's
cross-point checks.  Rendering (text tables) delegates to
:mod:`repro.analysis.report`; persistence delegates to
:mod:`repro.experiments.artifacts`.

Grid points are independent by construction — every point function derives
its inputs from explicit seed parameters, never from shared mutable state —
which is what makes the process fan-out safe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.report import format_cell, format_table
from ..analysis.serialize import to_jsonable
from .spec import ExperimentSpec, PointResult, expand_grid, get_spec, is_registered

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Everything produced by one experiment run."""

    spec: ExperimentSpec
    points: List[PointResult]
    grid: Dict[str, Sequence[Any]]
    fixed: Dict[str, Any]
    quick: bool
    workers: int
    wall_clock_seconds: float
    checks_passed: Optional[bool] = None
    check_error: str = ""

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def title(self) -> str:
        return self.spec.title

    def to_table(self, columns: Optional[Sequence[str]] = None) -> str:
        """Render the grid points as the experiment's text table."""
        columns = list(columns if columns is not None else self.spec.columns)
        rows = [[format_cell(point.row().get(column)) for column in columns] for point in self.points]
        return format_table(columns, rows)

    def series(self, x: str, y: str) -> Tuple[List[Any], List[Any]]:
        """Extract one (x, y) series, ordered by ``x``, across the grid points."""
        pairs = sorted(
            (point.row()[x], point.row()[y])
            for point in self.points
            if x in point.row() and y in point.row()
        )
        return [pair[0] for pair in pairs], [pair[1] for pair in pairs]


def _execute_with(spec: ExperimentSpec, fixed: Dict[str, Any], params: Dict[str, Any]) -> Tuple[Dict[str, Any], Dict[str, Any], float]:
    """Run one grid point against an in-hand spec object."""
    started = time.perf_counter()
    metrics = dict(spec.point(**fixed, **params))
    seconds = time.perf_counter() - started
    return params, to_jsonable(metrics), seconds


def _execute_point(task: Tuple[str, Dict[str, Any], Dict[str, Any]]) -> Tuple[Dict[str, Any], Dict[str, Any], float]:
    """Run one grid point; module-level so it pickles into worker processes."""
    spec_name, fixed, params = task
    return _execute_with(get_spec(spec_name), fixed, params)


def run_experiment(
    spec: "ExperimentSpec | str",
    *,
    quick: bool = False,
    workers: int = 1,
    overrides: Optional[Mapping[str, Sequence[Any]]] = None,
    fixed_overrides: Optional[Mapping[str, Any]] = None,
    run_checks: bool = True,
    raise_on_check_failure: bool = True,
) -> ExperimentResult:
    """Execute every grid point of an experiment and collect the results.

    Parameters
    ----------
    spec:
        A registered :class:`ExperimentSpec` or its registry name.
    quick:
        Use the spec's reduced ``quick_grid`` / ``quick_fixed`` (for smoke
        tests and CI).
    workers:
        Number of worker processes for the grid fan-out.  ``1`` (the default)
        runs in-process; values > 1 use a ``multiprocessing`` pool.  Note the
        fan-out parallelises *wall-clock* execution of independent simulator
        runs — the simulated round/space accounting is unaffected.
    overrides:
        Replacement value lists for swept grid parameters, e.g.
        ``{"delta": [0.5]}`` to restrict the sweep.
    fixed_overrides:
        Replacement values for constant parameters merged into every point
        (e.g. ``{"backend": "process"}`` — the CLI ``--backend`` flag).  Keys
        that are swept grid parameters are rejected: override those through
        ``overrides`` instead.
    run_checks:
        Run the spec's cross-point consistency checks (on by default; the
        checks are part of the reproduction claim).
    raise_on_check_failure:
        Re-raise the first failing check (default — the pytest wrappers rely
        on it).  When false, the failure is only recorded on the result
        (``checks_passed=False`` / ``check_error``) so callers like the CLI
        can still render the table and persist the artifact.
    """
    if isinstance(spec, str):
        spec = get_spec(spec)
    grid = spec.effective_grid(quick=quick, overrides=overrides)
    fixed = spec.effective_fixed(quick=quick)
    for key, value in (fixed_overrides or {}).items():
        if key in grid:
            raise ValueError(
                f"{key!r} is a swept grid parameter of spec {spec.name!r}; "
                f"override it with overrides/--set, not fixed_overrides"
            )
        fixed[key] = value
    grid_points = expand_grid(grid)

    started = time.perf_counter()
    workers = max(1, int(workers))
    # The pool path ships only (name, fixed, params) to the workers, which
    # re-resolve the spec from the registry — so it needs a registered spec;
    # ad-hoc spec objects (tests, exploration) always run in-process.
    if workers > 1 and len(grid_points) > 1 and is_registered(spec):
        import multiprocessing

        tasks = [(spec.name, fixed, params) for params in grid_points]
        with multiprocessing.Pool(processes=min(workers, len(tasks))) as pool:
            outcomes = pool.map(_execute_point, tasks, chunksize=1)
    else:
        outcomes = [_execute_with(spec, fixed, params) for params in grid_points]
    wall_clock = time.perf_counter() - started

    points = [PointResult(params=params, metrics=metrics, seconds=seconds) for params, metrics, seconds in outcomes]
    result = ExperimentResult(
        spec=spec,
        points=points,
        grid={key: list(values) for key, values in grid.items()},
        fixed=dict(fixed),
        quick=quick,
        workers=workers,
        wall_clock_seconds=wall_clock,
    )
    if run_checks and spec.checks is not None:
        try:
            spec.checks(points)
            result.checks_passed = True
        except AssertionError as exc:
            result.checks_passed = False
            result.check_error = str(exc)
            if raise_on_check_failure:
                raise
    return result
