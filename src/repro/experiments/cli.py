"""The ``python -m repro`` command line interface.

Subcommands
-----------
``list``
    Show every registered experiment (name, points, claim).
``run <spec>``
    Execute an experiment's grid, print its text table and optionally write
    the versioned JSON artifact (``--json [PATH]``, default
    ``results/<spec>.json``).
``serve``
    Answer a batch of semi-local queries from a JSON request file through
    the :mod:`repro.service` subsystem (index cache + batched execution);
    ``--repeat`` re-submits the batch to demonstrate cache amortisation and
    ``--artifact`` records the outcome as a schema-v1 document.
``serve-http``
    Expose the query service over HTTP (:mod:`repro.server`): POST
    ``/v2/batch`` with the same request schema, request coalescing,
    admission control with 429 + ``Retry-After`` backpressure, background
    ``/builds`` and streaming ``/sessions`` routes, live ``/stats``.
``stream``
    Drive a sliding-window streaming session (:mod:`repro.streaming`):
    per-tick exact LIS/LCS answers with incremental seaweed recomposition,
    recorded as a schema-v1 artifact with an additive ``streaming`` section.
``perf``
    Run the core hot-path micro-benchmarks (:mod:`repro.perf`), write the
    ``results/perf_core.json`` artifact and gate against the recorded
    baseline (cpu-normalised, tolerance-based; exit 1 on regression or when
    the iterative-vs-reference multiply speedup falls below the floor).
``report``
    Render every recorded artifact in ``results/`` (or an explicit list) as
    ASCII scaling curves, latency tables and cache hit-rate summaries
    (:mod:`repro.obs.report`); ``--trend`` adds the perf-over-commits trend
    table from ``results/perf_trend.jsonl``, ``--capacity QPS`` answers
    "how many shards/workers do I need for QPS requests/second", and
    ``--plots DIR`` writes matplotlib PNGs when matplotlib is installed
    (the text report never needs it).
``validate <path>``
    Check an artifact file against the schema (exit 1 on failure).

The multiply-engine tuning knobs ``--fanin``, ``--base-size`` and ``--plan
{default,auto}`` are available on ``run`` (for the specs that expose them),
``serve``, ``stream`` and ``perf``; they change mechanics/wall-clock only —
every answer and artifact metric other than timing is bit-identical across
plans.

Every named-workload input is derived from an explicit ``--seed`` (default
0), so a recorded artifact is bit-for-bit reproducible from the CLI line
alone.

Examples
--------
.. code-block:: console

    $ python -m repro list
    $ python -m repro run table1 --json results/table1.json
    $ python -m repro run table1 --quick --workers 4 --set delta=0.5
    $ python -m repro run lis_rounds --quick --backend process
    $ python -m repro serve --requests examples/service_requests.json --repeat 2
    $ python -m repro serve-http --port 8077 --max-inflight 64
    $ python -m repro stream --ticks 16 --window 4096 --workload random --seed 7
    $ python -m repro stream --session lcs --window 256 --ticks 8
    $ python -m repro perf --quick
    $ python -m repro perf --json results/perf_core.json --plan auto
    $ python -m repro perf --quick --record-trend
    $ python -m repro report
    $ python -m repro report results/shard_scaling.json --capacity 500
    $ python -m repro validate results/table1.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.report import format_block, format_table
from ..mpc.engine import backend_names
from ..service import (
    DEFAULT_CACHE_BYTES,
    IndexCache,
    QueryService,
    ShardRouter,
    parse_requests_document,
)
from .artifacts import (
    SCHEMA_ID,
    SCHEMA_VERSION,
    ArtifactError,
    load_artifact,
    result_to_artifact,
    write_artifact,
    write_document,
)
from .runner import ExperimentResult, run_experiment
from .spec import ExperimentSpec, PointResult, all_specs, expand_grid, get_spec

__all__ = ["main", "build_parser"]

DEFAULT_ARTIFACT_TEMPLATE = "results/{spec}.json"


def _add_plan_arguments(parser) -> None:
    """The shared multiply-engine tuning knobs (mechanics/wall-clock only)."""
    parser.add_argument(
        "--fanin",
        type=int,
        default=None,
        metavar="H",
        help="multiply-engine split fan-in (answers are identical across fan-ins)",
    )
    parser.add_argument(
        "--base-size",
        type=int,
        default=None,
        metavar="B",
        help="multiply-engine dense-oracle crossover size",
    )
    parser.add_argument(
        "--plan",
        choices=("default", "auto"),
        default=None,
        help="multiply plan: static defaults or per-machine auto-calibration",
    )


def _resolve_cli_plan(args, *, required: bool = False):
    """The plan implied by the CLI knobs (``None`` when nothing was asked)."""
    from ..core.plan import resolve_plan

    if not required and args.plan is None and args.fanin is None and args.base_size is None:
        return None
    return resolve_plan(args.plan, fanin=args.fanin, base_size=args.base_size)


def _build_cli_service(args, *, mode, delta, backend, cache_bytes, spill_dir):
    """A single-process service, or — with ``--shards N`` — a shard router.

    The router receives the *raw* plan spec (not a resolved plan): each
    worker resolves it once at its own startup, so ``--plan auto``
    calibrates once per worker process, never in the parent and never per
    request.
    """
    fault_plan = None
    fault_spec = getattr(args, "fault_plan", None) or os.environ.get("REPRO_FAULT_PLAN")
    if fault_spec:
        from ..resilience import install_plan, plan_from_spec

        fault_plan = plan_from_spec(fault_spec)
    worker_timeout_ms = getattr(args, "worker_timeout_ms", None)
    shards = int(getattr(args, "shards", 0) or 0)
    if shards > 0:
        extra: Dict[str, Any] = {}
        if worker_timeout_ms is not None:
            extra["worker_timeout"] = float(worker_timeout_ms) / 1000.0
        if fault_plan is not None:
            extra["fault_plan"] = fault_plan
        return ShardRouter(
            shards,
            mode=mode,
            delta=delta,
            backend=backend,
            plan=args.plan,
            fanin=args.fanin,
            base_size=args.base_size,
            cache_bytes=cache_bytes,
            spill_dir=spill_dir,
            **extra,
        )
    if fault_plan is not None:
        # Single-process serving still honours the in-process fault sites
        # (index.build, cache.spill_load); the router-owned sites need
        # --shards to exist at all.
        install_plan(fault_plan)
    return QueryService(
        cache=IndexCache(max_bytes=cache_bytes, spill_dir=spill_dir),
        mode=mode,
        delta=delta,
        backend=backend,
        plan=_resolve_cli_plan(args),
    )


def _parse_scalar(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def _parse_overrides(settings: Sequence[str]) -> Dict[str, List[Any]]:
    """``["delta=0.25,0.5", "n=1024"]`` → ``{"delta": [0.25, 0.5], "n": [1024]}``."""
    overrides: Dict[str, List[Any]] = {}
    for setting in settings:
        if "=" not in setting:
            raise ValueError(f"--set expects key=value[,value...], got {setting!r}")
        key, _, values = setting.partition("=")
        key = key.strip()
        if not key or not values:
            raise ValueError(f"--set expects key=value[,value...], got {setting!r}")
        overrides[key] = [_parse_scalar(item.strip()) for item in values.split(",")]
    return overrides


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the registered reproduction experiments and manage their JSON artifacts.",
    )
    sub = parser.add_subparsers(dest="command")

    list_parser = sub.add_parser("list", help="list the registered experiments")
    list_parser.add_argument("--json", action="store_true", help="print the listing as JSON")

    run_parser = sub.add_parser("run", help="run one experiment's parameter grid")
    run_parser.add_argument("spec", help="experiment name (see `list`)")
    run_parser.add_argument(
        "--json",
        nargs="?",
        const=DEFAULT_ARTIFACT_TEMPLATE,
        default=None,
        metavar="PATH",
        help=f"write the JSON artifact (default path: {DEFAULT_ARTIFACT_TEMPLATE.format(spec='<spec>')})",
    )
    run_parser.add_argument("--quick", action="store_true", help="use the spec's reduced smoke-test grid")
    run_parser.add_argument("--workers", type=int, default=1, metavar="N", help="process fan-out across grid points")
    run_parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="execution backend of the simulated clusters (wall-clock only; "
        "rounds/space/communication accounting is backend-invariant)",
    )
    run_parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=V[,V...]",
        dest="overrides",
        help="override a swept grid parameter (repeatable)",
    )
    run_parser.add_argument("--no-checks", action="store_true", help="skip the cross-point consistency checks")
    _add_plan_arguments(run_parser)

    serve_parser = sub.add_parser(
        "serve",
        help="answer a batch of semi-local queries from a JSON request file",
    )
    serve_parser.add_argument(
        "--requests", required=True, metavar="PATH", help="JSON batch document (schema repro.service.requests)"
    )
    serve_parser.add_argument(
        "--artifact",
        default=None,
        metavar="PATH",
        help="write the serving outcome as a schema-v1 experiment artifact",
    )
    serve_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="K",
        help="submit the batch K times (re-submissions hit the index cache)",
    )
    serve_parser.add_argument(
        "--mode",
        choices=("sequential", "mpc"),
        default=None,
        help="index build path (default: the request file's 'defaults', else sequential)",
    )
    serve_parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="execution backend for MPC index builds (wall-clock only)",
    )
    serve_parser.add_argument("--delta", type=float, default=None, help="MPC scalability parameter")
    serve_parser.add_argument(
        "--cache-bytes", type=int, default=None, metavar="N", help="index cache budget in bytes"
    )
    serve_parser.add_argument(
        "--spill", default=None, metavar="DIR", help="spill evicted indexes to .npz files in DIR"
    )
    serve_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="default seed for named-workload targets that omit 'seed' "
        "(keeps recorded artifacts reproducible from the CLI line alone)",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="consistent-hash the batch across N sharded worker processes, "
        "each with a private index cache (0 = single-process service; "
        "answers are shard-invariant)",
    )
    _add_plan_arguments(serve_parser)

    serve_http_parser = sub.add_parser(
        "serve-http",
        help="expose the query service over HTTP (coalescing + backpressure)",
    )
    serve_http_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_http_parser.add_argument(
        "--port", type=int, default=8077, metavar="P", help="bind port (0 = ephemeral)"
    )
    serve_http_parser.add_argument(
        "--transport",
        choices=("auto", "asyncio", "thread"),
        default="auto",
        help="network transport (auto picks the asyncio codec; answers are "
        "transport-invariant)",
    )
    serve_http_parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="admission-control cap on concurrently served requests (excess "
        "batches get 429 + Retry-After)",
    )
    serve_http_parser.add_argument(
        "--build-queue",
        type=int,
        default=8,
        metavar="N",
        help="cap on queued background index builds (POST /builds)",
    )
    serve_http_parser.add_argument(
        "--coalesce-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="window in which same-index requests merge into one pass",
    )
    serve_http_parser.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="S",
        help="Retry-After hint (seconds) on 429 responses",
    )
    serve_http_parser.add_argument(
        "--mode",
        choices=("sequential", "mpc"),
        default="sequential",
        help="index build path",
    )
    serve_http_parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="execution backend for MPC index builds (wall-clock only)",
    )
    serve_http_parser.add_argument("--delta", type=float, default=0.5, help="MPC scalability parameter")
    serve_http_parser.add_argument(
        "--cache-bytes", type=int, default=None, metavar="N", help="index cache budget in bytes"
    )
    serve_http_parser.add_argument(
        "--spill", default=None, metavar="DIR", help="spill evicted indexes to .npz files in DIR"
    )
    serve_http_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="default seed for named-workload targets that omit 'seed'",
    )
    serve_http_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="S",
        help="serve for S seconds then exit (default: until Ctrl-C)",
    )
    serve_http_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="route index fingerprints across N sharded worker processes "
        "(0 = single-process service; answers are shard-invariant and "
        "/stats gains a per-shard section)",
    )
    serve_http_parser.add_argument(
        "--trace-head-rate",
        type=float,
        default=1.0,
        metavar="R",
        help="deterministic head-sampling rate in [0,1]: the fraction of "
        "trace IDs retained unconditionally (tail-latency outliers are "
        "kept regardless; default 1.0 = keep everything)",
    )
    serve_http_parser.add_argument(
        "--trace-tail-quantile",
        type=float,
        default=0.99,
        metavar="Q",
        help="per-route latency quantile above which a head-dropped trace "
        "is retained anyway (tail-based sampling)",
    )
    serve_http_parser.add_argument(
        "--trace-tail-min-ms",
        type=float,
        default=None,
        metavar="MS",
        help="absolute floor for tail retention: any trace slower than MS "
        "is kept even before the quantile estimate has warmed up",
    )
    serve_http_parser.add_argument(
        "--trace-capacity",
        type=int,
        default=128,
        metavar="N",
        help="retained-trace ring-buffer capacity (GET /debug/traces)",
    )
    serve_http_parser.add_argument(
        "--slo-config",
        default=None,
        metavar="PATH",
        help="JSON file with a list of SLO objective definitions "
        "({name, kind: availability|latency, target, route?, "
        "threshold_ms?}); default: stock /v2/batch objectives",
    )
    serve_http_parser.add_argument(
        "--slo-record",
        default=None,
        metavar="PATH",
        help="on shutdown, evaluate the SLO engine against the final "
        "metrics snapshot and write the result as a schema-v1 artifact",
    )
    serve_http_parser.add_argument(
        "--slo-history",
        default=None,
        metavar="PATH",
        help="persist the SLO window history to a JSONL file and reload it "
        "at startup, so burn rates survive server restarts",
    )
    serve_http_parser.add_argument(
        "--slo-alerts",
        action="store_true",
        help="emit deduplicated page/ticket alerts as structured log lines "
        "(periodic SLO evaluation with per-objective cooldown)",
    )
    serve_http_parser.add_argument(
        "--slo-alert-webhook",
        default=None,
        metavar="URL",
        help="additionally POST each emitted alert document to URL "
        "(implies --slo-alerts; failures are counted, never fatal)",
    )
    serve_http_parser.add_argument(
        "--slo-alert-cooldown",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="minimum spacing between repeat alerts for one objective at "
        "an unchanged severity (transitions always emit immediately)",
    )
    serve_http_parser.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="deadline budget applied to every POST /v2/batch without an "
        "X-Repro-Deadline-Ms header; expired batches answer a structured "
        "504 (default: no budget)",
    )
    serve_http_parser.add_argument(
        "--worker-timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="hung-worker liveness timeout for sharded serving: a worker "
        "silent on its pipe this long is killed and restarted like a "
        "crash (default 120000)",
    )
    serve_http_parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection: a JSON object (inline, "
        "starting with '{') or a path to one — "
        '{"seed": N, "rules": [{"site", "kind", ...}]}; sites: '
        "worker.dispatch, pipe.send, pipe.recv, cache.spill_load, "
        "index.build; kinds: crash, hang, delay, error, corrupt",
    )
    _add_plan_arguments(serve_http_parser)

    stream_parser = sub.add_parser(
        "stream",
        help="drive a sliding-window streaming session (incremental recomposition)",
    )
    stream_parser.add_argument(
        "--session", choices=("lis", "lcs"), default="lis", help="session kind (default lis)"
    )
    stream_parser.add_argument(
        "--workload", default="random", metavar="NAME", help="sequence workload (lis sessions)"
    )
    stream_parser.add_argument(
        "--string-workload",
        default="correlated_pair",
        metavar="NAME",
        help="string-pair workload (lcs sessions)",
    )
    stream_parser.add_argument("--window", "-n", type=int, default=4096, metavar="N", help="sliding window length")
    stream_parser.add_argument("--ticks", type=int, default=16, metavar="K", help="number of slide ticks")
    stream_parser.add_argument("--slide", type=int, default=64, metavar="B", help="symbols appended/evicted per tick")
    stream_parser.add_argument("--leaf-size", type=int, default=64, metavar="L", help="aggregator leaf block size")
    stream_parser.add_argument("--probes", type=int, default=4, metavar="P", help="rank-interval probes per tick (lis)")
    stream_parser.add_argument(
        "--seed", type=int, default=0, metavar="S", help="workload + probe seed (artifacts reproduce bit-for-bit)"
    )
    stream_parser.add_argument(
        "--non-strict", action="store_true", help="longest non-decreasing instead of strictly increasing (lis)"
    )
    stream_parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="execution backend for leaf-block builds (wall-clock only)",
    )
    stream_parser.add_argument(
        "--artifact",
        default=None,
        metavar="PATH",
        help="write the per-tick outcome as a schema-v1 artifact (+ 'streaming' section)",
    )
    _add_plan_arguments(stream_parser)

    perf_parser = sub.add_parser(
        "perf",
        help="run the core hot-path micro-benchmarks and gate against the baseline",
    )
    perf_parser.add_argument(
        "--quick", action="store_true", help="run only the reduced smoke-test case grid"
    )
    perf_parser.add_argument(
        "--json",
        nargs="?",
        const="results/perf_core.json",
        default=None,
        metavar="PATH",
        help="write the perf artifact (default path: results/perf_core.json)",
    )
    perf_parser.add_argument(
        "--baseline",
        default="results/perf_core.json",
        metavar="PATH",
        help="recorded baseline artifact to gate against (skipped when absent)",
    )
    perf_parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the baseline regression check and the speedup floor",
    )
    perf_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="F",
        help="regression tolerance on cpu-normalised timings (default 2.5)",
    )
    perf_parser.add_argument(
        "--speedup-floor",
        type=float,
        default=None,
        metavar="F",
        help="required iterative-vs-reference multiply speedup (default 3.0, quick 2.0)",
    )
    perf_parser.add_argument(
        "--repeats", type=int, default=2, metavar="R", help="timing repeats per case (min is kept)"
    )
    perf_parser.add_argument(
        "--record-trend",
        nargs="?",
        const="results/perf_trend.jsonl",
        default=None,
        metavar="PATH",
        help="append a {commit, timestamp, normalized timings} row to the "
        "perf trend log (default path: results/perf_trend.jsonl)",
    )
    _add_plan_arguments(perf_parser)

    report_parser = sub.add_parser(
        "report",
        help="render recorded artifacts as ASCII curves/tables (+ trend & capacity)",
    )
    report_parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="artifact JSON files (default: every results/*.json)",
    )
    report_parser.add_argument(
        "--trend",
        nargs="?",
        const="results/perf_trend.jsonl",
        default=None,
        metavar="PATH",
        help="include the perf-over-commits trend table "
        "(default path: results/perf_trend.jsonl)",
    )
    report_parser.add_argument(
        "--capacity",
        type=float,
        default=None,
        metavar="QPS",
        help="answer 'how many shards/workers for QPS requests/second' from "
        "the recorded scaling + latency artifacts",
    )
    report_parser.add_argument(
        "--plots",
        default=None,
        metavar="DIR",
        help="also write matplotlib PNGs to DIR (requires matplotlib; the "
        "text report does not)",
    )
    report_parser.add_argument(
        "--slo",
        action="store_true",
        help="include the SLO burn-rate summary from recorded slo_eval "
        "artifacts (objectives x windows, alert severities)",
    )

    validate_parser = sub.add_parser("validate", help="validate an artifact file against the schema")
    validate_parser.add_argument("path", help="artifact JSON file")

    return parser


def _cmd_list(as_json: bool, out) -> int:
    specs = all_specs()
    if as_json:
        payload = [
            {
                "name": spec.name,
                "title": spec.title,
                "claim": spec.claim,
                "points": len(expand_grid(spec.grid)),
                "swept": sorted(spec.grid),
                "bench_file": spec.bench_file,
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2), file=out)
        return 0
    rows = [
        [spec.name, len(expand_grid(spec.grid)), ", ".join(sorted(spec.grid)), spec.claim]
        for spec in specs
    ]
    print(format_table(["experiment", "points", "swept parameters", "paper claim"], rows), file=out)
    print(f"\n{len(specs)} experiments registered; run one with `python -m repro run <name>`.", file=out)
    return 0


def _cmd_run(args, out) -> int:
    import inspect

    spec = get_spec(args.spec)
    overrides = _parse_overrides(args.overrides)
    fixed_overrides: Optional[Dict[str, Any]] = None
    if args.backend is not None:
        if "backend" in overrides:
            raise ValueError(
                "--backend conflicts with --set backend=...; pass only one of the two"
            )
        if "backend" in spec.grid:
            # Specs that *sweep* the backend (backend_wallclock) are
            # restricted to the requested one instead.
            overrides["backend"] = [args.backend]
        else:
            fixed_overrides = {"backend": args.backend}
    # Multiply-engine knobs route like --backend: grid-swept parameters are
    # restricted, point-accepted parameters become fixed overrides, anything
    # else fails loudly (the spec genuinely has no sequential multiply knob).
    point_params = set(inspect.signature(spec.point).parameters)
    for key, value in (("fanin", args.fanin), ("base_size", args.base_size), ("plan", args.plan)):
        if value is None:
            continue
        if key in overrides:
            raise ValueError(
                f"--{key.replace('_', '-')} conflicts with --set {key}=...; pass only one"
            )
        if key in spec.grid:
            overrides[key] = [value]
        elif key in point_params:
            fixed_overrides = dict(fixed_overrides or {})
            fixed_overrides[key] = value
        else:
            raise ValueError(
                f"experiment {spec.name!r} does not expose the {key!r} tuning knob"
            )
    result = run_experiment(
        spec,
        quick=args.quick,
        workers=args.workers,
        overrides=overrides or None,
        fixed_overrides=fixed_overrides,
        run_checks=not args.no_checks,
        raise_on_check_failure=False,
    )
    suffix = " [quick]" if args.quick else ""
    print(format_block(f"{spec.title}{suffix}", result.to_table()), file=out)
    fixed = ", ".join(f"{key}={value}" for key, value in sorted(result.fixed.items()))
    print(
        f"{len(result.points)} grid points in {result.wall_clock_seconds:.2f}s "
        f"(workers={result.workers}; fixed: {fixed})",
        file=out,
    )
    if result.checks_passed is True:
        print("consistency checks: passed", file=out)
    elif result.checks_passed is False:
        print(f"consistency checks FAILED: {result.check_error}", file=sys.stderr)
    if args.json is not None:
        path = args.json.format(spec=spec.name) if "{spec}" in args.json else args.json
        write_artifact(result, path)
        print(f"wrote artifact: {path}", file=out)
    return 0 if result.checks_passed is not False else 1


def _format_result_cell(outcome) -> str:
    if isinstance(outcome.result, int):
        return str(outcome.result)
    summary = outcome.result_summary()
    if summary["count"] == 0:
        return "[0 answers]"
    return f"[{summary['count']} answers, min={summary['min']}, max={summary['max']}]"


def _serve_artifact(args, service, batches, seconds: float) -> Dict[str, Any]:
    """The serving outcome as a schema-v1 document (+ a ``service`` section).

    Reuses the experiment-artifact machinery: outcomes become grid points of
    an ad-hoc (unregistered) ``serve`` spec, and the aggregate service/cache
    statistics ride along in the additive ``service`` field (additive fields
    are allowed within a schema version).
    """
    spec = ExperimentSpec(
        name="serve",
        title="Batched semi-local query serving (python -m repro serve)",
        claim="serving amortisation of Theorem 1.3 / Corollaries 1.3.1-1.3.3",
        grid={},
        point=dict,
        columns=["submission", "id", "op", "cache_hit", "num_queries"],
    )
    points = [
        PointResult(
            params={"submission": submission, "id": outcome.request_id, "op": outcome.op},
            metrics={
                "target": outcome.target,
                "index_kind": outcome.index_kind,
                "index_fingerprint": outcome.index_fingerprint,
                "cache_hit": outcome.cache_hit,
                "num_queries": outcome.num_queries,
                "result": outcome.result_summary(),
            },
            seconds=outcome.seconds,
        )
        for submission, batch in enumerate(batches)
        for outcome in batch.outcomes
    ]
    stats = service.stats()
    result = ExperimentResult(
        spec=spec,
        points=points,
        grid={},
        fixed={
            "requests_file": os.path.basename(args.requests),
            "repeat": len(batches),
            "mode": stats["mode"],
            "delta": stats["delta"],
            "backend": stats["backend"],
            "cache_max_bytes": stats["cache"]["max_bytes"],
            "shards": int(stats.get("shards", 0)) if stats.get("sharded") else 0,
        },
        quick=False,
        workers=1,
        wall_clock_seconds=seconds,
    )
    document = result_to_artifact(result)
    document["service"] = stats
    return document


def _cmd_serve(args, out) -> int:
    try:
        with open(args.requests, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read requests file {args.requests}: {exc}") from None
    defaults, requests = parse_requests_document(raw, default_seed=args.seed)

    mode = args.mode if args.mode is not None else str(defaults.get("mode", "sequential"))
    delta = args.delta if args.delta is not None else float(defaults.get("delta", 0.5))
    backend = args.backend if args.backend is not None else defaults.get("backend")
    cache_bytes = (
        args.cache_bytes
        if args.cache_bytes is not None
        else int(defaults.get("cache_bytes", DEFAULT_CACHE_BYTES))
    )
    spill_dir = args.spill if args.spill is not None else defaults.get("spill_dir")
    service = _build_cli_service(
        args,
        mode=mode,
        delta=delta,
        backend=backend,
        cache_bytes=cache_bytes,
        spill_dir=spill_dir,
    )

    try:
        repeat = max(1, int(args.repeat))
        started = time.perf_counter()
        batches = [service.submit(requests) for _ in range(repeat)]
        seconds = time.perf_counter() - started

        for submission, batch in enumerate(batches):
            rows = [
                [
                    outcome.request_id,
                    outcome.op,
                    outcome.target,
                    outcome.index_kind,
                    "hit" if outcome.cache_hit else "build",
                    outcome.num_queries,
                    _format_result_cell(outcome),
                ]
                for outcome in batch.outcomes
            ]
            print(
                format_block(
                    f"submission {submission + 1}/{repeat} ({batch.seconds * 1000:.1f} ms, "
                    f"{batch.indexes_built} built / {batch.indexes_reused} cached)",
                    format_table(
                        ["id", "op", "target", "index", "cache", "queries", "result"], rows
                    ),
                ),
                file=out,
            )
        stats = service.stats()
        cache = stats["cache"]
        sharded = (
            f" across {stats['shards']} shards" if stats.get("sharded") else ""
        )
        print(
            f"served {stats['requests_served']} requests{sharded} "
            f"({stats['queries_evaluated']} interval queries) in {seconds:.3f}s — "
            f"built {stats['indexes_built']} indexes in {stats['build_seconds']:.3f}s, "
            f"query time {stats['query_seconds'] * 1000:.1f} ms; "
            f"cache: {cache['hits']} hits / {cache['misses']} misses / "
            f"{cache['evictions']} evictions (hit rate {cache['hit_rate']:.2f})",
            file=out,
        )
        if args.artifact is not None:
            document = _serve_artifact(args, service, batches, seconds)
            write_document(document, args.artifact)
            print(f"wrote artifact: {args.artifact}", file=out)
    finally:
        close = getattr(service, "close", None)
        if callable(close):
            close()
    return 0


def _cmd_serve_http(args, out) -> int:
    from ..obs.sampling import TraceSampler
    from ..obs.slo import SLOEngine, objectives_from_config
    from ..server import start_server

    service = _build_cli_service(
        args,
        mode=args.mode,
        delta=args.delta,
        backend=args.backend,
        cache_bytes=args.cache_bytes if args.cache_bytes is not None else DEFAULT_CACHE_BYTES,
        spill_dir=args.spill,
    )
    sampler = TraceSampler(
        args.trace_head_rate,
        tail_quantile=args.trace_tail_quantile,
        tail_min_seconds=(
            args.trace_tail_min_ms / 1000.0
            if args.trace_tail_min_ms is not None
            else None
        ),
    )
    objectives = None
    if args.slo_config is not None:
        with open(args.slo_config, "r", encoding="utf-8") as fh:
            objectives = objectives_from_config(json.load(fh))
    slo_engine = SLOEngine(objectives, history_path=args.slo_history)
    alert_emitter = None
    if args.slo_alerts or args.slo_alert_webhook:
        from ..obs.alerts import AlertEmitter

        alert_emitter = AlertEmitter(
            cooldown_seconds=args.slo_alert_cooldown,
            webhook_url=args.slo_alert_webhook,
        )
    handle = start_server(
        service,
        host=args.host,
        port=args.port,
        transport=args.transport,
        max_inflight=args.max_inflight,
        build_queue_limit=args.build_queue,
        coalesce_seconds=args.coalesce_ms / 1000.0,
        retry_after_seconds=args.retry_after,
        default_seed=args.seed,
        trace_capacity=args.trace_capacity,
        sampler=sampler,
        slo_engine=slo_engine,
        default_deadline_ms=args.default_deadline_ms,
        alert_emitter=alert_emitter,
    )
    shard_note = (
        f", shards={service.shards}" if isinstance(service, ShardRouter) else ""
    )
    print(
        f"listening on {handle.url} (transport={handle.transport}, "
        f"max_inflight={handle.core.max_inflight}, "
        f"coalesce={handle.core.coalesce_seconds * 1000:.1f} ms{shard_note})",
        file=out,
        flush=True,
    )
    served_started = time.perf_counter()
    try:
        if args.duration is not None:
            time.sleep(max(0.0, float(args.duration)))
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        if args.slo_record:
            # Evaluate against the final pre-shutdown snapshot: a sharded
            # service's worker-process counters are only reachable while
            # the pipes are still up.
            evaluation = handle.core.slo.evaluate(handle.core.metrics_snapshot())
            tracing = handle.core.tracer.stats()
        handle.stop()
        stats = handle.core.stats()
        requests = stats["requests"]
        print(
            f"served {requests['answered']}/{requests['received']} requests "
            f"({requests['rejected']} rejected, {requests['failed']} failed); "
            f"{stats['coalescing']['merged_passes']} merged passes, "
            f"{stats['coalescing']['coalesced_requests']} coalesced requests",
            file=out,
            flush=True,
        )
        if args.slo_record:
            document = _slo_eval_artifact(
                evaluation, tracing, time.perf_counter() - served_started
            )
            write_document(document, args.slo_record)
            print(f"wrote SLO artifact: {args.slo_record}", file=out, flush=True)
    return 0


def _slo_eval_artifact(
    evaluation: Dict[str, Any], tracing: Dict[str, Any], wall_seconds: float
) -> Dict[str, Any]:
    """Shape one SLO evaluation as a schema-v1 artifact document.

    Grid points are (objective, window) pairs carrying the burn-rate math;
    the full evaluation document and the tracer/sampler counters ride in
    ``fixed`` so ``repro report --slo`` can render alerts without guessing.
    """
    from .. import __version__

    points = []
    for objective in evaluation["objectives"]:
        for window_name, window in objective["windows"].items():
            points.append(
                {
                    "params": {
                        "objective": objective["name"],
                        "window": window_name,
                    },
                    "metrics": {
                        "burn_rate": window["burn_rate"],
                        "error_ratio": window["error_ratio"],
                        "good": window["good"],
                        "total": window["total"],
                        "coverage_seconds": window["coverage_seconds"],
                        "severity": objective["alerts"]["severity"],
                    },
                    "seconds": float(window["coverage_seconds"]),
                }
            )
    return {
        "schema": SCHEMA_ID,
        "schema_version": SCHEMA_VERSION,
        "package_version": __version__,
        "experiment": "slo_eval",
        "title": "SLO burn-rate evaluation (python -m repro serve-http --slo-record)",
        "claim": "multi-window burn rates derive from the same merged snapshot /metrics renders",
        "quick": False,
        "workers": 1,
        "created_unix": time.time(),
        "grid": {
            "objective": [obj["name"] for obj in evaluation["objectives"]],
            "window": (
                list(evaluation["objectives"][0]["windows"])
                if evaluation["objectives"]
                else []
            ),
        },
        "fixed": {
            "thresholds": evaluation["thresholds"],
            "objectives": [
                {
                    "name": obj["name"],
                    "kind": obj["kind"],
                    "target": obj["target"],
                    "route": obj["route"],
                    "threshold_seconds": obj["threshold_seconds"],
                    "alerts": obj["alerts"],
                }
                for obj in evaluation["objectives"]
            ],
            "tracing": tracing,
            "slo_schema": evaluation["schema"],
            "slo_schema_version": evaluation["version"],
            "now_unix": evaluation["now_unix"],
        },
        "wall_clock_seconds": float(wall_seconds),
        "points": points,
    }


def _stream_artifact(args, session, points, seconds: float, plan=None) -> Dict[str, Any]:
    """The streaming outcome as a schema-v1 document (+ ``streaming`` section).

    Per-tick rows become grid points of an ad-hoc ``stream`` spec; the
    session configuration — including the fully resolved multiply plan, so
    recorded timings are attributable to the mechanics actually used — and
    the aggregator's cost counters (multiplies performed, blocks rebuilt,
    node-store bytes) ride along in the additive ``streaming`` field.
    """
    spec = ExperimentSpec(
        name="stream",
        title="Streaming sliding-window session (python -m repro stream)",
        claim="incremental seaweed recomposition (monoid structure of Theorem 1.3)",
        grid={},
        point=dict,
        columns=["tick", "answer", "window", "seconds", "multiplies", "blocks_rebuilt"],
    )
    result = ExperimentResult(
        spec=spec,
        points=points,
        grid={},
        fixed={
            "session": args.session,
            "workload": args.workload if args.session == "lis" else args.string_workload,
            "window": int(args.window),
            "ticks": int(args.ticks),
            "slide": int(args.slide),
            "leaf_size": int(args.leaf_size),
            "seed": int(args.seed),
            "strict": not args.non_strict,
            "backend": args.backend or "serial",
            "plan": plan.describe() if plan is not None else "default",
        },
        quick=False,
        workers=1,
        wall_clock_seconds=seconds,
    )
    document = result_to_artifact(result)
    document["streaming"] = session.counters()
    return document


def _cmd_stream(args, out) -> int:
    import numpy as np

    from ..streaming import StreamingLCS, StreamingLIS
    from ..workloads import make_sequence, make_string_pair

    if args.window < 1 or args.ticks < 0 or args.slide < 1:
        raise ValueError("stream needs --window >= 1, --ticks >= 0 and --slide >= 1")
    total = args.window + args.ticks * args.slide
    plan = _resolve_cli_plan(args)
    if args.session == "lis":
        stream = make_sequence(args.workload, total, seed=args.seed).astype(float)
        session = StreamingLIS(
            window=args.window,
            strict=not args.non_strict,
            leaf_size=args.leaf_size,
            backend=args.backend,
            plan=plan,
        )
        warm = stream[: args.window]
        describe = f"{args.workload}(n={total}, seed={args.seed})"
    else:
        reference, stream = make_string_pair(args.string_workload, total, seed=args.seed)
        session = StreamingLCS(
            reference[: args.window],
            window=args.window,
            leaf_size=args.leaf_size,
            backend=args.backend,
            plan=plan,
        )
        warm = stream[: args.window]
        describe = f"{args.string_workload}(n={total}, seed={args.seed})"

    rng = np.random.default_rng(args.seed)
    started = time.perf_counter()
    session.push(warm)
    warm_seconds = time.perf_counter() - started
    warm_answer = session.lis_length() if args.session == "lis" else session.lcs_length()

    rows: List[List[Any]] = []
    points: List[PointResult] = []
    before = session.counters()
    for tick in range(args.ticks):
        lo = args.window + tick * args.slide
        tick_started = time.perf_counter()
        session.push(stream[lo : lo + args.slide])
        if args.session == "lis":
            answer = session.lis_length()
            m = len(session)
            x = rng.integers(0, m, size=max(0, args.probes))
            y = np.minimum(m, x + rng.integers(1, max(2, m // 3), size=max(0, args.probes)))
            probe_values = session.rank_intervals(x, y).tolist() if args.probes > 0 else []
        else:
            answer = session.lcs_length()
            probe_values = []
        tick_seconds = time.perf_counter() - tick_started
        after = session.counters()
        metrics = {
            "answer": int(answer),
            "window": int(after["window"]),
            "probes": [int(v) for v in probe_values],
            "multiplies": after["multiplies"] - before["multiplies"],
            "blocks_rebuilt": after["blocks_built"] - before["blocks_built"],
        }
        before = after
        points.append(PointResult(params={"tick": tick}, metrics=metrics, seconds=tick_seconds))
        rows.append(
            [
                tick,
                answer,
                metrics["window"],
                f"{tick_seconds * 1000:.1f} ms",
                metrics["multiplies"],
                metrics["blocks_rebuilt"],
            ]
        )
    seconds = time.perf_counter() - started

    label = "lis" if args.session == "lis" else "lcs"
    print(
        format_block(
            f"streaming {label} session over {describe} "
            f"(warm build {warm_seconds * 1000:.0f} ms, {label}={warm_answer})",
            format_table(["tick", label, "window", "seconds", "multiplies", "blocks"], rows)
            if rows
            else "(no ticks requested)",
        ),
        file=out,
    )
    counters = session.counters()
    amortised = (seconds - warm_seconds) / args.ticks if args.ticks else 0.0
    print(
        f"{args.ticks} ticks in {seconds - warm_seconds:.3f}s "
        f"(amortised {amortised * 1000:.1f} ms/tick); "
        f"{counters['multiplies']} multiplies, {counters['blocks_built']} blocks built, "
        f"node store {counters['node_store']['entries']} entries / "
        f"{counters['node_store']['nbytes']} bytes",
        file=out,
    )
    if args.artifact is not None:
        document = _stream_artifact(args, session, points, seconds, plan=plan)
        write_document(document, args.artifact)
        print(f"wrote artifact: {args.artifact}", file=out)
    return 0


def _cmd_perf(args, out) -> int:
    from ..perf import (
        DEFAULT_SPEEDUP_FLOOR,
        DEFAULT_TOLERANCE,
        check_speedup,
        compare_documents,
        format_report,
        run_perf,
    )

    plan = _resolve_cli_plan(args, required=True)
    document = run_perf(
        quick=args.quick,
        plan=plan,
        repeats=max(1, int(args.repeats)),
    )
    rows = [
        [
            point["params"]["case"],
            point["params"]["group"],
            f"{point['metrics']['seconds'] * 1000:.1f} ms",
            f"{point['metrics']['normalized']:.2f}",
        ]
        for point in document["points"]
    ]
    suffix = " [quick]" if args.quick else ""
    print(
        format_block(
            f"{document['title']}{suffix}",
            format_table(["case", "group", "seconds", "normalized"], rows),
        ),
        file=out,
    )
    perf = document["perf"]
    speedup = perf["multiply_speedup_vs_reference"]
    print(
        f"calibration kernel {perf['calibration_seconds'] * 1000:.2f} ms; "
        f"iterative vs reference multiply speedup at n={perf['headline_n']}: "
        + (f"{speedup:.2f}x" if speedup is not None else "n/a"),
        file=out,
    )

    status = 0
    if not args.no_check:
        floor = (
            args.speedup_floor
            if args.speedup_floor is not None
            else (2.0 if args.quick else DEFAULT_SPEEDUP_FLOOR)
        )
        failure = check_speedup(document, floor=floor)
        if failure is not None:
            print(f"perf speedup check FAILED: {failure}", file=sys.stderr)
            status = 1
        if os.path.exists(args.baseline):
            baseline = load_artifact(args.baseline)
            tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
            report = compare_documents(document, baseline, tolerance=tolerance)
            print(format_report(report), file=out if report["ok"] else sys.stderr)
            if not report["ok"]:
                status = 1
        else:
            print(f"no baseline at {args.baseline}; regression check skipped", file=out)

    if args.json is not None:
        write_document(document, args.json)
        print(f"wrote artifact: {args.json}", file=out)
    if args.record_trend is not None:
        from ..perf.trend import record_trend

        row = record_trend(document, args.record_trend)
        print(
            f"recorded trend row for commit {row['commit']} -> {args.record_trend}",
            file=out,
        )
    return status


def _cmd_report(args, out) -> int:
    import glob

    from ..obs.report import render_report

    paths = list(args.paths) or sorted(glob.glob("results/*.json"))
    if not paths:
        print(
            "no artifacts found (run some experiments with --json, or pass paths)",
            file=sys.stderr,
        )
        return 1
    text = render_report(
        paths,
        trend_path=args.trend,
        capacity_qps=args.capacity,
        plots_dir=args.plots,
        slo=args.slo,
    )
    print(text, file=out)
    return 0


def _cmd_validate(path: str, out) -> int:
    try:
        document = load_artifact(path)
    except (OSError, json.JSONDecodeError, ArtifactError) as exc:
        print(f"INVALID: {path}: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK: {path} (experiment={document['experiment']}, "
        f"schema_version={document['schema_version']}, points={len(document['points'])})",
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(out)
        return 2
    try:
        if args.command == "list":
            return _cmd_list(args.json, out)
        if args.command == "run":
            return _cmd_run(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "serve-http":
            return _cmd_serve_http(args, out)
        if args.command == "stream":
            return _cmd_stream(args, out)
        if args.command == "perf":
            return _cmd_perf(args, out)
        if args.command == "report":
            return _cmd_report(args, out)
        if args.command == "validate":
            return _cmd_validate(args.path, out)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except AssertionError as exc:
        print(f"consistency check FAILED: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # The reader (e.g. `| head`) closed the pipe mid-print.  Redirect
        # stdout to devnull so the interpreter's flush-at-exit does not
        # raise a second time, and exit quietly like other unix tools.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2
