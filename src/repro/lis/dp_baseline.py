"""Quadratic dynamic-programming oracles for LIS (testing only)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["lis_length_dp", "lis_of_all_substrings", "lis_of_value_ranges"]


def lis_length_dp(sequence: Sequence[float], *, strict: bool = True) -> int:
    """``O(n^2)`` textbook DP for the LIS length; used to validate fast paths."""
    seq = list(sequence)
    n = len(seq)
    if n == 0:
        return 0
    best = [1] * n
    for i in range(n):
        for j in range(i):
            increases = seq[j] < seq[i] if strict else seq[j] <= seq[i]
            if increases and best[j] + 1 > best[i]:
                best[i] = best[j] + 1
    return max(best)


def lis_of_all_substrings(sequence: Sequence[float], *, strict: bool = True) -> np.ndarray:
    """Table ``S[i, j]`` = LIS of ``sequence[i:j]`` for all ``0 <= i <= j <= n``.

    Cubic-ish time; the brute-force oracle for semi-local (subsegment) LIS.
    """
    from .patience import lis_length

    seq = list(sequence)
    n = len(seq)
    table = np.zeros((n + 1, n + 1), dtype=np.int64)
    for i in range(n + 1):
        for j in range(i, n + 1):
            table[i, j] = lis_length(seq[i:j], strict=strict)
    return table


def lis_of_value_ranges(ranks: Sequence[int]) -> np.ndarray:
    """Table ``T[x, y]`` = LIS of the elements whose rank lies in ``[x, y)``.

    ``ranks`` must be a permutation of ``0..n-1``; brute-force oracle for the
    value-interval semi-local LIS matrix.
    """
    from .patience import lis_length

    ranks = list(ranks)
    n = len(ranks)
    table = np.zeros((n + 1, n + 1), dtype=np.int64)
    for x in range(n + 1):
        for y in range(x, n + 1):
            filtered = [r for r in ranks if x <= r < y]
            table[x, y] = lis_length(filtered)
    return table
