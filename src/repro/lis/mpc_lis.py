"""Theorem 1.3: exact LIS in O(log n) rounds of the MPC model.

The algorithm follows the standard decomposition (paper §4.2 / CHS23 §4):

1. The input sequence is rank-transformed and distributed across the machines
   in contiguous blocks of at most ``s`` elements.
2. Every machine builds the *value-interval* semi-local LIS matrix of its own
   block locally (sequential seaweed construction, no communication).
3. The blocks are merged along a binary tree: at each level adjacent blocks
   relabel their value universes into the union universe (O(1) rounds of
   sorting — the "relabel" step the paper highlights) and their matrices are
   multiplied with the MPC subunit-Monge multiplication of Theorem 1.2
   (O(1) rounds with the constant-round algorithm), so each level costs O(1)
   rounds and the whole computation costs ``O(log n)`` rounds.

The LIS length is ``n`` minus the number of nonzeros of the final matrix, and
the final matrix also answers semi-local (value-interval) queries —
Corollary 1.3.2 is obtained by running the same pipeline on the transposed
construction (:func:`mpc_semilocal_lis`).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.permutation import SubPermutation
from ..mpc.cluster import MPCCluster, SORT_ROUNDS
from ..mpc_monge.constant_round import MongeMPCConfig
from ..mpc_monge.subpermutation import mpc_multiply_subpermutation
from ..mpc_monge.warmup import warmup_config
from .semilocal import SemiLocalLIS, _build_recursive, _default_multiply, embed_into_universe, rank_transform

__all__ = ["MPCLISResult", "mpc_lis_length", "mpc_lis_matrix", "mpc_semilocal_lis"]


@dataclass
class MPCLISResult:
    """Result of an MPC LIS computation."""

    length: int
    semilocal: SemiLocalLIS
    num_blocks: int
    merge_levels: int

    def __int__(self) -> int:  # pragma: no cover - convenience
        return self.length


def _local_block_matrix(coords_split: np.ndarray, coords_index: np.ndarray) -> SubPermutation:
    """Build a block's semi-local matrix on a single machine (no rounds)."""
    return _build_recursive(coords_split, coords_index, _default_multiply)


#: Signature of the multiplication used by the merge phase: it receives the
#: cluster and the two embedded sub-permutation matrices.
MultiplyInMPC = Callable[[MPCCluster, SubPermutation, SubPermutation], SubPermutation]


def _default_merge_multiply(
    cluster: MPCCluster,
    left: SubPermutation,
    right: SubPermutation,
    config: Optional[MongeMPCConfig] = None,
) -> SubPermutation:
    """The Theorem 1.2 multiplier, module-level so fork-group tasks pickle."""
    return mpc_multiply_subpermutation(cluster, left, right, config)


def _merge_pair(
    cluster: MPCCluster,
    left: Tuple[SubPermutation, np.ndarray],
    right: Tuple[SubPermutation, np.ndarray],
    multiply_fn: MultiplyInMPC,
) -> Tuple[SubPermutation, np.ndarray]:
    """Merge two adjacent blocks: relabel into the union universe and multiply."""
    left_mat, left_values = left
    right_mat, right_values = right
    union_values = np.sort(np.concatenate([left_values, right_values]))
    universe = len(union_values)
    left_slots = np.searchsorted(union_values, left_values)
    right_slots = np.searchsorted(union_values, right_values)
    # Relabelling = one O(1)-round sort plus one routing round (paper §4.2).
    load = math.ceil(2 * universe / max(1, cluster.num_machines)) + 1
    cluster.charge_rounds(
        SORT_ROUNDS, "lis:relabel", words_per_round=2 * universe, max_load=load, phase="lis-merge"
    )
    left_embedded = embed_into_universe(left_mat, left_slots, universe)
    right_embedded = embed_into_universe(right_mat, right_slots, universe)
    product = multiply_fn(cluster, left_embedded, right_embedded)
    return product, union_values


def mpc_lis_matrix(
    cluster: MPCCluster,
    sequence: Sequence[float],
    config: Optional[MongeMPCConfig] = None,
    *,
    strict: bool = True,
    kind: str = "value",
    multiply_fn: Optional[MultiplyInMPC] = None,
) -> MPCLISResult:
    """Compute the semi-local LIS matrix of ``sequence`` in the MPC model.

    ``kind='value'`` builds the value-interval matrix (used for the plain LIS
    length, Theorem 1.3); ``kind='position'`` builds the subsegment matrix
    (semi-local LIS, Corollary 1.3.2).  ``multiply_fn`` overrides the
    subunit-Monge multiplication used by the merge phase (the prior-work
    baselines plug their own multipliers in here).
    """
    if multiply_fn is None:
        # A partial of a module-level function (not a closure) so the process
        # backend can ship merge tasks to worker processes.
        multiply_fn = functools.partial(_default_merge_multiply, config=config)

    ranks = rank_transform(sequence, strict=strict)
    n = len(ranks)
    if n == 0:
        empty = SemiLocalLIS(matrix=SubPermutation.empty(0, 0), kind=kind, length=0)
        return MPCLISResult(length=0, semilocal=empty, num_blocks=0, merge_levels=0)

    positions = np.arange(n, dtype=np.int64)
    if kind == "value":
        split_coords, index_coords = positions, ranks
    elif kind == "position":
        split_coords, index_coords = ranks, positions
    else:
        raise ValueError("kind must be 'value' or 'position'")

    # --- distribute into blocks of at most s elements ------------------------
    block_size = max(1, cluster.space_per_machine // 4)
    num_blocks = max(1, math.ceil(n / block_size))
    bounds = np.linspace(0, n, num_blocks + 1).round().astype(np.int64)

    order = np.argsort(split_coords, kind="stable")
    split_sorted = split_coords[order]
    index_sorted = index_coords[order]

    # --- local phase: every machine builds its block matrix -----------------
    blocks: List[Tuple[SubPermutation, np.ndarray]] = []
    for b in range(num_blocks):
        lo, hi = int(bounds[b]), int(bounds[b + 1])
        blk_split = split_sorted[lo:hi]
        blk_index = index_sorted[lo:hi]
        matrix = _local_block_matrix(blk_split, blk_index)
        blocks.append((matrix, np.sort(blk_index)))
        cluster.stats.record_load(3 * (hi - lo))
    cluster.stats.local_operations += n

    # --- merge phase: binary tree of O(1)-round merges -----------------------
    # Every level is one parallel batch: the pairs are independent fork-groups
    # that the execution backend runs concurrently (threads/processes), with
    # max-rounds / sum-words parallel-composition accounting at the join.
    merge_levels = 0
    while len(blocks) > 1:
        merge_levels += 1
        pairs = [(blocks[i], blocks[i + 1]) for i in range(0, len(blocks) - 1, 2)]
        leftovers = [blocks[-1]] if len(blocks) % 2 == 1 else []
        next_blocks: List[Tuple[SubPermutation, np.ndarray]] = cluster.run_forked(
            [(_merge_pair, (left, right, multiply_fn)) for left, right in pairs],
            label=f"lis-level{merge_levels}",
        )
        next_blocks.extend(leftovers)
        blocks = next_blocks

    final_matrix, _ = blocks[0]
    semilocal = SemiLocalLIS(matrix=final_matrix, kind=kind, length=n)
    return MPCLISResult(
        length=semilocal.lis_length(),
        semilocal=semilocal,
        num_blocks=num_blocks,
        merge_levels=merge_levels,
    )


def mpc_lis_length(
    cluster: MPCCluster,
    sequence: Sequence[float],
    config: Optional[MongeMPCConfig] = None,
    *,
    strict: bool = True,
) -> int:
    """Exact LIS length in O(log n) MPC rounds (Theorem 1.3)."""
    return mpc_lis_matrix(cluster, sequence, config, strict=strict, kind="value").length


def mpc_semilocal_lis(
    cluster: MPCCluster,
    sequence: Sequence[float],
    config: Optional[MongeMPCConfig] = None,
    *,
    strict: bool = True,
) -> MPCLISResult:
    """Semi-local (all-subsegments) LIS in O(log n) rounds (Corollary 1.3.2)."""
    return mpc_lis_matrix(cluster, sequence, config, strict=strict, kind="position")
