"""Semi-local LIS via (sub)unit-Monge matrix multiplication.

This is the sequential form of the decomposition behind Theorem 1.3 and
Corollaries 1.3.2/1.3.3 of the paper: the LIS problem decomposes into O(n)
subunit-Monge products along a divide-and-conquer tree.

Two symmetric semi-local objects are built, both represented as a
sub-permutation matrix ``P`` whose distribution matrix ``K = PΣ`` encodes LIS
values (the correspondence ``score = span - K`` of Tiskin's framework):

* **value-interval matrix** (``kind='value'``): split the sequence by
  *position*, index the matrix by *value ranks*.  ``K(x, y)`` gives the LIS of
  the elements whose rank lies in ``[x, y)`` as ``(y - x) - K(x, y)``.
* **subsegment matrix** (``kind='position'``): split the sequence by *value*,
  index the matrix by *positions*.  ``K(i, j)`` gives the LIS of the
  subsegment ``A[i:j]`` as ``(j - i) - K(i, j)`` — the semi-local LIS of
  Corollary 1.3.2.

Both use the same combine: if a block is split into a "first" part ``F`` and a
"second" part ``S`` (by position for the value variant, by value for the
position variant), the block's score satisfies

    ``T_block(x, y) = max_v ( T_F(x, v) + T_S(v, y) )``

which under ``K = span - T`` is exactly the (min,+) product, i.e. ``⊡`` of the
embedded sub-permutation matrices.  Every block keeps its matrix over its own
compacted index universe ("relabeling" in the paper / CHS23), so the total
size per divide-and-conquer level is O(n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..core.combine import ColoredPointSet
from ..core.permutation import SubPermutation
from ..core.plan import MultiplyPlan
from ..core.seaweed import multiply

__all__ = [
    "rank_transform",
    "embed_into_universe",
    "validate_intervals",
    "SemiLocalLIS",
    "value_interval_matrix",
    "subsegment_matrix",
    "lis_length_seaweed",
]

MultiplyFn = Callable[[SubPermutation, SubPermutation], SubPermutation]


def rank_transform(sequence: Sequence[float], *, strict: bool = True) -> np.ndarray:
    """Map a sequence to a permutation of ``0..n-1`` preserving the LIS.

    For ``strict=True`` equal values receive decreasing ranks (so that two
    equal values can never both appear in an increasing subsequence of the
    ranks); for ``strict=False`` they receive increasing ranks, which turns
    the longest *non-decreasing* subsequence of the input into the longest
    strictly increasing subsequence of the ranks.
    """
    values = np.asarray(sequence)
    n = len(values)
    positions = np.arange(n)
    if strict:
        order = np.lexsort((-positions, values))
    else:
        order = np.lexsort((positions, values))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n, dtype=np.int64)
    return ranks


def embed_into_universe(
    matrix: SubPermutation, slots: np.ndarray, universe: int
) -> SubPermutation:
    """Expand a compacted block matrix into a larger index universe.

    ``slots[t]`` is the parent coordinate of the block's ``t``-th coordinate
    (``slots`` must be strictly increasing).  Block points are re-indexed
    through ``slots``; every parent coordinate not present in ``slots``
    receives a diagonal point, which encodes "this value/position does not
    occur in the block, so it contributes span 1 and score 0" — the padding
    ("relabeling") step of the paper's Theorem 1.3 proof.
    """
    slots = np.asarray(slots, dtype=np.int64)
    if matrix.n_rows != len(slots) or matrix.n_cols != len(slots):
        raise ValueError("slots must have one entry per block coordinate")
    rows, cols = matrix.points()
    mapped_rows = slots[rows]
    mapped_cols = slots[cols]
    # Complement of the occupied slots via boolean-mask scatter (this sits on
    # the streaming hot path; the old setdiff1d sorted the universe per call).
    occupied = np.zeros(universe, dtype=bool)
    occupied[slots] = True
    missing = np.flatnonzero(~occupied)
    all_rows = np.concatenate([mapped_rows, missing])
    all_cols = np.concatenate([mapped_cols, missing])
    return SubPermutation.from_points(all_rows, all_cols, universe, universe, validate=False)


def validate_intervals(
    i: np.ndarray, j: np.ndarray, upper: int, what: str = "interval"
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised bounds check for batches of half-open query windows.

    Every window must satisfy ``0 <= i <= j <= upper``.  Raises a
    :class:`ValueError` naming the first offending window — without this,
    negative indices would silently wrap through NumPy fancy indexing and
    return a plausible-looking wrong answer.  Returns the validated arrays as
    ``int64`` (shapes must match or broadcast to each other).
    """
    i = np.atleast_1d(np.asarray(i, dtype=np.int64))
    j = np.atleast_1d(np.asarray(j, dtype=np.int64))
    if i.shape != j.shape:
        try:
            i, j = np.broadcast_arrays(i, j)
            i, j = np.ascontiguousarray(i), np.ascontiguousarray(j)
        except ValueError:
            raise ValueError(
                f"{what} endpoint arrays have incompatible shapes {i.shape} and {j.shape}"
            ) from None
    bad = (i < 0) | (j > upper) | (i > j)
    if np.any(bad):
        first = int(np.flatnonzero(bad)[0])
        raise ValueError(
            f"invalid {what} ({int(i[first])}, {int(j[first])}) at batch position "
            f"{first}: windows must satisfy 0 <= i <= j <= {upper}"
        )
    return i, j


#: Blocks of at most this many elements use the direct dense construction.
DENSE_BLOCK_SIZE = 96


def _dense_block_matrix(split_coords: np.ndarray, index_coords: np.ndarray) -> SubPermutation:
    """Directly build the block matrix of a small block.

    For every left endpoint ``x``, a patience pass over the block's elements
    (in split order, keeping only index values ``>= x``) produces the array of
    minimal tails; the semi-local score is then ``T(x, y) = #{tails < y}``.
    The block matrix is recovered from the dense score table by finite
    differences of ``K = span - T``.
    """
    import bisect

    m = len(index_coords)
    order = np.argsort(split_coords, kind="stable")
    # Compact the index coordinates of the block to 0..m-1.
    sorted_idx = np.sort(index_coords)
    compact = np.searchsorted(sorted_idx, index_coords[order]).tolist()

    scores = np.zeros((m + 1, m + 1), dtype=np.int64)
    grid = np.arange(m + 1, dtype=np.int64)
    for x in range(m + 1):
        tails: list = []
        for value in compact:
            if value < x:
                continue
            pos = bisect.bisect_left(tails, value)
            if pos == len(tails):
                tails.append(value)
            else:
                tails[pos] = value
        scores[x, :] = np.searchsorted(np.asarray(tails, dtype=np.int64), grid, side="left")

    span = grid[None, :] - grid[:, None]
    dist = np.where(span > 0, span - scores, 0)
    density = dist[:-1, 1:] - dist[:-1, :-1] - dist[1:, 1:] + dist[1:, :-1]
    rows, cols = np.nonzero(density)
    return SubPermutation.from_points(rows, cols, m, m, validate=False)


def _build_recursive(
    split_coords: np.ndarray,
    index_coords: np.ndarray,
    multiply_fn: MultiplyFn,
    dense_block_size: int = DENSE_BLOCK_SIZE,
) -> SubPermutation:
    """Recursive divide-and-conquer over the split coordinate.

    Returns the block matrix over the block's *compacted* index universe
    (coordinate ``t`` of the matrix is the ``t``-th smallest index value of
    the block).
    """
    m = len(index_coords)
    if m <= 1:
        return SubPermutation.empty(m, m)
    if m <= dense_block_size:
        return _dense_block_matrix(split_coords, index_coords)
    order = np.argsort(split_coords, kind="stable")
    index_by_split = index_coords[order]
    split_sorted = split_coords[order]
    mid = m // 2

    first_idx = index_by_split[:mid]
    second_idx = index_by_split[mid:]
    first_mat = _build_recursive(
        split_sorted[:mid], first_idx, multiply_fn, dense_block_size
    )
    second_mat = _build_recursive(
        split_sorted[mid:], second_idx, multiply_fn, dense_block_size
    )

    parent_sorted = np.sort(index_coords)
    first_slots = np.searchsorted(parent_sorted, np.sort(first_idx))
    second_slots = np.searchsorted(parent_sorted, np.sort(second_idx))
    first_emb = embed_into_universe(first_mat, first_slots, m)
    second_emb = embed_into_universe(second_mat, second_slots, m)
    return multiply_fn(first_emb, second_emb)


@dataclass
class SemiLocalLIS:
    """A semi-local LIS object backed by a sub-permutation matrix.

    Attributes
    ----------
    matrix:
        The ``n x n`` sub-permutation whose distribution matrix encodes the
        scores.
    kind:
        ``'value'`` (matrix indexed by value ranks) or ``'position'`` (matrix
        indexed by sequence positions).
    length:
        The sequence length ``n``.
    """

    matrix: SubPermutation
    kind: str
    length: int

    def __post_init__(self) -> None:
        rows, cols = self.matrix.points()
        colors = np.zeros(len(rows), dtype=np.int64)
        self._points = ColoredPointSet(
            rows, cols, colors, 1, self.matrix.n_rows, self.matrix.n_cols
        )

    # -------------------------------------------------------------- queries
    def distribution(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised evaluation of ``K(x, y) = PΣ(x, y)``."""
        x = np.atleast_1d(np.asarray(x, dtype=np.int64))
        y = np.atleast_1d(np.asarray(y, dtype=np.int64))
        return self._points.sigma(x, y)

    def score(self, x, y) -> np.ndarray:
        """Semi-local LIS score for interval(s) ``[x, y)`` (vectorised)."""
        x_arr = np.atleast_1d(np.asarray(x, dtype=np.int64))
        y_arr = np.atleast_1d(np.asarray(y, dtype=np.int64))
        span = y_arr - x_arr
        values = span - self.distribution(x_arr, y_arr)
        values = np.where(span <= 0, 0, values)
        if np.isscalar(x) and np.isscalar(y):
            return int(values[0])
        return values

    def lis_length(self) -> int:
        """The global LIS length of the underlying sequence."""
        return self.length - self.matrix.num_nonzeros

    @property
    def nbytes(self) -> int:
        """Resident bytes of the matrix plus its query structure (cache sizing)."""
        return int(self.matrix.row_to_col.nbytes) + int(self._points.nbytes)

    # Batch queries -----------------------------------------------------------
    def query_rank_intervals(self, x, y) -> np.ndarray:
        """Vectorised :meth:`query_rank_interval` over batches of windows.

        One call answers the whole batch through the dominance-count
        structure of the underlying :class:`ColoredPointSet`; invalid windows
        (negative, reversed or past the universe) raise :class:`ValueError`
        instead of wrapping.
        """
        if self.kind != "value":
            raise ValueError("rank-interval queries need kind='value'")
        x, y = validate_intervals(x, y, self.length, what="rank interval")
        return self.score(x, y)

    def query_substrings(self, i, j) -> np.ndarray:
        """Vectorised :meth:`query_substring` over batches of windows."""
        if self.kind != "position":
            raise ValueError("substring queries need kind='position'")
        i, j = validate_intervals(i, j, self.length, what="substring window")
        return self.score(i, j)

    # Convenience aliases -----------------------------------------------------
    def query_rank_interval(self, x: int, y: int) -> int:
        """LIS using only elements whose rank is in ``[x, y)`` (value kind)."""
        return int(self.query_rank_intervals(x, y)[0])

    def query_substring(self, i: int, j: int) -> int:
        """LIS of the subsegment ``A[i:j]`` (position kind, Corollary 1.3.2)."""
        return int(self.query_substrings(i, j)[0])


def _default_multiply(pa: SubPermutation, pb: SubPermutation) -> SubPermutation:
    return multiply(pa, pb)


def _resolve_multiply_fn(
    multiply_fn: Optional[MultiplyFn], plan: Optional[MultiplyPlan]
) -> MultiplyFn:
    """An explicit ``multiply_fn`` wins; otherwise the plan's engine; else default."""
    if multiply_fn is not None:
        return multiply_fn
    if plan is not None:
        return plan.multiply_fn()
    return _default_multiply


def value_interval_matrix(
    sequence: Sequence[float],
    *,
    strict: bool = True,
    multiply_fn: Optional[MultiplyFn] = None,
    plan: Optional[MultiplyPlan] = None,
    dense_block_size: int = DENSE_BLOCK_SIZE,
) -> SemiLocalLIS:
    """Semi-local LIS matrix indexed by value ranks (split by position).

    ``plan`` selects the multiply engine and tuning (mechanics only — the
    built matrix is bit-identical across plans); an explicit ``multiply_fn``
    overrides it.
    """
    ranks = rank_transform(sequence, strict=strict)
    positions = np.arange(len(ranks), dtype=np.int64)
    fn = _resolve_multiply_fn(multiply_fn, plan)
    matrix = _build_recursive(positions, ranks, fn, dense_block_size)
    return SemiLocalLIS(matrix=matrix, kind="value", length=len(ranks))


def subsegment_matrix(
    sequence: Sequence[float],
    *,
    strict: bool = True,
    multiply_fn: Optional[MultiplyFn] = None,
    plan: Optional[MultiplyPlan] = None,
    dense_block_size: int = DENSE_BLOCK_SIZE,
) -> SemiLocalLIS:
    """Semi-local LIS matrix indexed by positions (split by value).

    Supports ``query_substring(i, j)`` — the semi-local LIS of
    Corollary 1.3.2.  ``plan`` selects the multiply engine (see
    :func:`value_interval_matrix`).
    """
    ranks = rank_transform(sequence, strict=strict)
    positions = np.arange(len(ranks), dtype=np.int64)
    fn = _resolve_multiply_fn(multiply_fn, plan)
    matrix = _build_recursive(ranks, positions, fn, dense_block_size)
    return SemiLocalLIS(matrix=matrix, kind="position", length=len(ranks))


def lis_length_seaweed(sequence: Sequence[float], *, strict: bool = True) -> int:
    """LIS length computed through the seaweed decomposition (Theorem 1.3)."""
    if len(sequence) == 0:
        return 0
    return value_interval_matrix(sequence, strict=strict).lis_length()
