"""An IMS17-style (1+ε)-approximate MPC LIS baseline.

Im, Moseley and Sun [IMS17] give massively parallel dynamic-programming
algorithms that compute a (1+ε)-approximation of the LIS; their exact DP is
not public and relies on a specific weight-rounding machinery, so this module
implements a *profile-merge* stand-in that reproduces the same trade-off used
in Table 1 of the paper: approximate answers, O(log n) rounds, small
per-machine space.

Every block is summarised by a ``k x k`` score profile sampled on a global
value grid: ``profile[a, b]`` is the exact LIS of the block restricted to
values in the half-open grid interval ``(v_a, v_b]``.  Profiles of adjacent
blocks are merged with a (max,+) product over the grid, which loses at most
the number of elements sharing a grid cell at each of the O(log n) merge
levels.  With ``k = Θ(ε^{-1} log n)`` grid values the result is within a
(1+ε) factor of the optimum for the workloads used in the benchmarks (the
test-suite checks the approximation ratio empirically).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..mpc.cluster import MPCCluster, SORT_ROUNDS
from .patience import lis_length
from .semilocal import rank_transform

__all__ = ["ApproxLISResult", "mpc_lis_approx"]


@dataclass
class ApproxLISResult:
    """Result of the approximate MPC LIS computation."""

    length: int
    epsilon: float
    grid_points: int
    num_blocks: int
    merge_levels: int


def _block_profile(block_ranks: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Exact LIS of a block restricted to each grid value interval ``(v_a, v_b]``."""
    k = len(grid)
    profile = np.zeros((k, k), dtype=np.int64)
    for a in range(k - 1):
        lo = grid[a]
        # One patience pass per left endpoint; tails[b] < v_b gives the score.
        tails: List[int] = []
        import bisect

        for value in block_ranks:
            if value <= lo:
                continue
            pos = bisect.bisect_left(tails, value)
            if pos == len(tails):
                tails.append(value)
            else:
                tails[pos] = value
        tails_arr = np.asarray(tails, dtype=np.int64)
        profile[a, :] = np.searchsorted(tails_arr, grid, side="right")
    return profile


def _merge_profiles(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """(max,+) merge over the shared grid: split the subsequence at a grid value.

    ``merged[a, b] = max_{a <= u <= b} left[a, u] + right[u, b]`` — the split
    value must lie inside the queried interval, otherwise the two halves would
    be allowed to use values outside ``(v_a, v_b]``.
    """
    k = left.shape[0]
    indices = np.arange(k)
    # sums[a, u, b] = left[a, u] + right[u, b], masked to a <= u <= b.
    sums = left[:, :, None] + right[None, :, :]
    valid = (indices[None, :, None] >= indices[:, None, None]) & (
        indices[None, :, None] <= indices[None, None, :]
    )
    sums = np.where(valid, sums, -1)
    merged = sums.max(axis=1)
    return np.maximum(merged, 0)


def mpc_lis_approx(
    cluster: MPCCluster,
    sequence: Sequence[float],
    epsilon: float = 0.1,
    *,
    strict: bool = True,
) -> ApproxLISResult:
    """(1+ε)-style approximate LIS in O(log n) rounds (IMS17-style baseline)."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    ranks = rank_transform(sequence, strict=strict)
    n = len(ranks)
    if n == 0:
        return ApproxLISResult(0, epsilon, 0, 0, 0)

    # Global value grid: Θ(ε⁻¹ log n) evenly spaced rank thresholds.
    k = int(min(n + 1, max(4, math.ceil(math.log2(max(n, 2)) / epsilon))))
    grid = np.unique(
        np.concatenate(
            [np.array([-1], dtype=np.int64), np.linspace(0, n - 1, k - 1).round().astype(np.int64)]
        )
    )
    if 2 * k * k > cluster.space_per_machine:
        # A machine must hold two profiles during a merge; shrink the grid.
        k = max(2, int(math.isqrt(cluster.space_per_machine // 2)))
        grid = np.unique(
            np.concatenate(
                [np.array([-1], dtype=np.int64), np.linspace(0, n - 1, k - 1).round().astype(np.int64)]
            )
        )
    cluster.charge_rounds(
        SORT_ROUNDS, "approx:grid", words_per_round=n, max_load=len(grid), phase="approx"
    )

    block_size = max(1, cluster.space_per_machine // 2)
    num_blocks = max(1, math.ceil(n / block_size))
    bounds = np.linspace(0, n, num_blocks + 1).round().astype(np.int64)
    profiles = []
    for b in range(num_blocks):
        block = ranks[bounds[b] : bounds[b + 1]]
        profiles.append(_block_profile(block, grid))
        cluster.stats.record_load(len(block) + len(grid) ** 2)
    cluster.stats.local_operations += n

    merge_levels = 0
    while len(profiles) > 1:
        merge_levels += 1
        merged = [
            _merge_profiles(profiles[i], profiles[i + 1])
            for i in range(0, len(profiles) - 1, 2)
        ]
        if len(profiles) % 2 == 1:
            merged.append(profiles[-1])
        profiles = merged
        cluster.charge_round(
            "approx:merge", words=num_blocks * len(grid) ** 2,
            max_load=2 * len(grid) ** 2, phase="approx",
        )

    estimate = int(profiles[0].max())
    return ApproxLISResult(
        length=estimate,
        epsilon=epsilon,
        grid_points=len(grid),
        num_blocks=num_blocks,
        merge_levels=merge_levels,
    )
