"""Longest increasing subsequence algorithms (sequential and MPC)."""

from .patience import lis_length, lis_sequence, longest_nondecreasing_length
from .dp_baseline import lis_length_dp
from .semilocal import (
    SemiLocalLIS,
    lis_length_seaweed,
    rank_transform,
    subsegment_matrix,
    value_interval_matrix,
)
from .mpc_lis import MPCLISResult, mpc_lis_length, mpc_lis_matrix, mpc_semilocal_lis
from .approx import ApproxLISResult, mpc_lis_approx

__all__ = [
    "lis_length",
    "lis_sequence",
    "longest_nondecreasing_length",
    "lis_length_dp",
    "SemiLocalLIS",
    "lis_length_seaweed",
    "rank_transform",
    "subsegment_matrix",
    "value_interval_matrix",
    "MPCLISResult",
    "mpc_lis_length",
    "mpc_lis_matrix",
    "mpc_semilocal_lis",
    "ApproxLISResult",
    "mpc_lis_approx",
]
