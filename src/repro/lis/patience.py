"""Sequential longest increasing subsequence baselines (Fredman's algorithm).

These are the classical ``O(n log n)`` patience-sorting algorithms used both
as comparison baselines and as correctness oracles for the seaweed-based and
MPC algorithms.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "lis_length",
    "lis_sequence",
    "longest_nondecreasing_length",
    "lds_length",
]


def lis_length(sequence: Sequence[float], *, strict: bool = True) -> int:
    """Length of the longest (strictly) increasing subsequence.

    Uses patience sorting: ``O(n log n)`` time, ``O(n)`` space.

    Parameters
    ----------
    sequence:
        Any sequence of comparable values.
    strict:
        When true (default), the subsequence must be strictly increasing;
        otherwise non-decreasing subsequences are allowed.
    """
    piles: List[float] = []
    insert = bisect.bisect_left if strict else bisect.bisect_right
    for value in sequence:
        pos = insert(piles, value)
        if pos == len(piles):
            piles.append(value)
        else:
            piles[pos] = value
    return len(piles)


def longest_nondecreasing_length(sequence: Sequence[float]) -> int:
    """Length of the longest non-decreasing subsequence."""
    return lis_length(sequence, strict=False)


def lds_length(sequence: Sequence[float], *, strict: bool = True) -> int:
    """Length of the longest (strictly) decreasing subsequence."""
    return lis_length([-v for v in sequence], strict=strict)


def lis_sequence(sequence: Sequence[float], *, strict: bool = True) -> List[float]:
    """An actual longest increasing subsequence (a certificate).

    ``O(n log n)`` time; ties are broken towards the lexicographically first
    certificate produced by patience sorting with predecessor links.
    """
    seq = list(sequence)
    n = len(seq)
    if n == 0:
        return []
    piles: List[float] = []
    pile_index_of: List[int] = [0] * n  # pile on which element i landed
    pile_top_element: List[int] = []  # element index currently on top of pile p
    predecessor: List[int] = [-1] * n
    insert = bisect.bisect_left if strict else bisect.bisect_right
    for i, value in enumerate(seq):
        pos = insert(piles, value)
        if pos == len(piles):
            piles.append(value)
            pile_top_element.append(i)
        else:
            piles[pos] = value
            pile_top_element[pos] = i
        pile_index_of[i] = pos
        predecessor[i] = pile_top_element[pos - 1] if pos > 0 else -1
    # Backtrack from the top of the last pile.
    result: List[float] = []
    idx = pile_top_element[-1]
    while idx != -1:
        result.append(seq[idx])
        idx = predecessor[idx]
    return result[::-1]
