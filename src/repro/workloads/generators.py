"""Workload generators for the tests, examples and benchmarks.

The paper has no experimental section, so these workloads are the standard
ones used by the LIS / LCS literature it builds on: uniformly random
permutations (LIS ≈ 2√n), sequences with a planted long increasing
subsequence, block-sorted adversarial inputs that maximise the number of
demarcation-line crossings in the combine step, and string pairs with
controlled match density for the Hunt–Szymanski reduction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "random_permutation_sequence",
    "planted_lis_sequence",
    "block_sorted_sequence",
    "decreasing_sequence",
    "near_sorted_sequence",
    "duplicate_heavy_sequence",
    "random_string_pair",
    "correlated_string_pair",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_permutation_sequence(n: int, seed: Optional[int] = None) -> np.ndarray:
    """A uniformly random permutation of ``0..n-1`` (expected LIS ≈ 2√n)."""
    return _rng(seed).permutation(n).astype(np.int64)


def planted_lis_sequence(n: int, lis_length: int, seed: Optional[int] = None) -> np.ndarray:
    """A permutation with a planted increasing subsequence of ≥ ``lis_length``.

    ``lis_length`` positions carry the largest values in increasing order;
    everything else is a random permutation of the remaining values arranged
    in decreasing order between the planted anchors.
    """
    if lis_length > n:
        raise ValueError("lis_length cannot exceed n")
    rng = _rng(seed)
    sequence = np.empty(n, dtype=np.int64)
    planted_positions = np.sort(rng.choice(n, size=lis_length, replace=False))
    planted_values = np.arange(n - lis_length, n, dtype=np.int64)
    sequence[planted_positions] = planted_values
    other_positions = np.setdiff1d(np.arange(n), planted_positions, assume_unique=True)
    other_values = rng.permutation(n - lis_length).astype(np.int64)
    sequence[other_positions] = other_values
    return sequence


def block_sorted_sequence(n: int, num_blocks: int, seed: Optional[int] = None) -> np.ndarray:
    """Blocks of decreasing values whose block maxima increase.

    The LIS must pick exactly one element per block (LIS = ``num_blocks``),
    which maximises the interleaving work of the divide-and-conquer combine.
    """
    rng = _rng(seed)
    values = np.arange(n, dtype=np.int64)
    bounds = np.linspace(0, n, num_blocks + 1).round().astype(np.int64)
    out = np.empty(n, dtype=np.int64)
    for b in range(num_blocks):
        lo, hi = bounds[b], bounds[b + 1]
        out[lo:hi] = values[lo:hi][::-1]
    return out


def decreasing_sequence(n: int) -> np.ndarray:
    """The strictly decreasing sequence (LIS = 1)."""
    return np.arange(n - 1, -1, -1, dtype=np.int64)


def near_sorted_sequence(n: int, swaps: int, seed: Optional[int] = None) -> np.ndarray:
    """An almost sorted permutation with ``swaps`` random adjacent-ish swaps."""
    rng = _rng(seed)
    out = np.arange(n, dtype=np.int64)
    for _ in range(swaps):
        i = int(rng.integers(0, max(1, n - 1)))
        j = min(n - 1, i + int(rng.integers(1, 4)))
        out[i], out[j] = out[j], out[i]
    return out


def duplicate_heavy_sequence(n: int, alphabet: int, seed: Optional[int] = None) -> np.ndarray:
    """A sequence with many repeated values (tests the tie-breaking paths)."""
    return _rng(seed).integers(0, max(1, alphabet), size=n).astype(np.int64)


def random_string_pair(
    n: int, alphabet: int, seed: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Two independent random strings over a given alphabet size."""
    rng = _rng(seed)
    s = rng.integers(0, max(1, alphabet), size=n).astype(np.int64)
    t = rng.integers(0, max(1, alphabet), size=n).astype(np.int64)
    return s, t


def correlated_string_pair(
    n: int, alphabet: int, mutation_rate: float, seed: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """A string and a mutated copy (realistic LCS workload with a long LCS)."""
    rng = _rng(seed)
    s = rng.integers(0, max(1, alphabet), size=n).astype(np.int64)
    t = s.copy()
    mutate = rng.random(n) < mutation_rate
    t[mutate] = rng.integers(0, max(1, alphabet), size=int(mutate.sum()))
    return s, t
