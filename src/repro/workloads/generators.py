"""Workload generators for the tests, examples and benchmarks.

The paper has no experimental section, so these workloads are the standard
ones used by the LIS / LCS literature it builds on: uniformly random
permutations (LIS ≈ 2√n), sequences with a planted long increasing
subsequence, block-sorted adversarial inputs that maximise the number of
demarcation-line crossings in the combine step, and string pairs with
controlled match density for the Hunt–Szymanski reduction.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "random_permutation_sequence",
    "planted_lis_sequence",
    "block_sorted_sequence",
    "decreasing_sequence",
    "near_sorted_sequence",
    "duplicate_heavy_sequence",
    "zipfian_sequence",
    "block_sorted_noisy_sequence",
    "adversarial_alternating_sequence",
    "random_string_pair",
    "correlated_string_pair",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_permutation_sequence(n: int, seed: Optional[int] = None) -> np.ndarray:
    """A uniformly random permutation of ``0..n-1`` (expected LIS ≈ 2√n)."""
    return _rng(seed).permutation(n).astype(np.int64)


def planted_lis_sequence(n: int, lis_length: int, seed: Optional[int] = None) -> np.ndarray:
    """A permutation with a planted increasing subsequence of ≥ ``lis_length``.

    ``lis_length`` positions carry the largest values in increasing order;
    everything else is a random permutation of the remaining values arranged
    in decreasing order between the planted anchors.
    """
    if lis_length > n:
        raise ValueError("lis_length cannot exceed n")
    rng = _rng(seed)
    sequence = np.empty(n, dtype=np.int64)
    planted_positions = np.sort(rng.choice(n, size=lis_length, replace=False))
    planted_values = np.arange(n - lis_length, n, dtype=np.int64)
    sequence[planted_positions] = planted_values
    other_positions = np.setdiff1d(np.arange(n), planted_positions, assume_unique=True)
    other_values = rng.permutation(n - lis_length).astype(np.int64)
    sequence[other_positions] = other_values
    return sequence


def block_sorted_sequence(n: int, num_blocks: int, seed: Optional[int] = None) -> np.ndarray:
    """Blocks of decreasing values whose block maxima increase.

    The LIS must pick exactly one element per block (LIS = ``num_blocks``),
    which maximises the interleaving work of the divide-and-conquer combine.
    """
    rng = _rng(seed)
    values = np.arange(n, dtype=np.int64)
    bounds = np.linspace(0, n, num_blocks + 1).round().astype(np.int64)
    out = np.empty(n, dtype=np.int64)
    for b in range(num_blocks):
        lo, hi = bounds[b], bounds[b + 1]
        out[lo:hi] = values[lo:hi][::-1]
    return out


def decreasing_sequence(n: int) -> np.ndarray:
    """The strictly decreasing sequence (LIS = 1)."""
    return np.arange(n - 1, -1, -1, dtype=np.int64)


def near_sorted_sequence(n: int, swaps: int, seed: Optional[int] = None) -> np.ndarray:
    """An almost sorted permutation with ``swaps`` random adjacent-ish swaps."""
    rng = _rng(seed)
    out = np.arange(n, dtype=np.int64)
    for _ in range(swaps):
        i = int(rng.integers(0, max(1, n - 1)))
        j = min(n - 1, i + int(rng.integers(1, 4)))
        out[i], out[j] = out[j], out[i]
    return out


def duplicate_heavy_sequence(n: int, alphabet: int, seed: Optional[int] = None) -> np.ndarray:
    """A sequence with many repeated values (tests the tie-breaking paths)."""
    return _rng(seed).integers(0, max(1, alphabet), size=n).astype(np.int64)


def zipfian_sequence(n: int, alpha: float = 1.5, seed: Optional[int] = None) -> np.ndarray:
    """Values drawn from a Zipf law (heavy duplication of a few small values).

    Skewed value frequencies stress the tie-breaking and compaction paths the
    same way skewed keys stress real shuffles; values are capped at ``n`` so
    the rank universe stays bounded.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a Zipf law")
    draws = _rng(seed).zipf(alpha, size=n).astype(np.int64)
    return np.minimum(draws, n)


def block_sorted_noisy_sequence(
    n: int, num_blocks: int, noise: float = 0.05, seed: Optional[int] = None
) -> np.ndarray:
    """Ascending runs (sorted blocks) perturbed by random transpositions.

    Realistic "almost pre-sorted shards" input: the value range is cut into
    ``num_blocks`` contiguous ranges, the ranges are concatenated in a random
    order (each internally ascending), and ``noise * n`` random pair swaps
    are applied across the whole sequence.
    """
    rng = _rng(seed)
    num_blocks = max(1, int(num_blocks))
    bounds = np.linspace(0, n, num_blocks + 1).round().astype(np.int64)
    order = rng.permutation(num_blocks)
    out = np.concatenate(
        [np.arange(bounds[b], bounds[b + 1], dtype=np.int64) for b in order]
    )
    swaps = int(max(0.0, noise) * n)
    if swaps:
        left = rng.integers(0, n, size=swaps)
        right = rng.integers(0, n, size=swaps)
        for i, j in zip(left, right):
            out[i], out[j] = out[j], out[i]
    return out


def adversarial_alternating_sequence(n: int, seed: Optional[int] = None) -> np.ndarray:
    """A low/high alternation: ``0, n-1, 1, n-2, 2, ...`` (LIS = ⌊n/2⌋ + 1
    for ``n ≥ 2``: the low run plus one high element).

    The sequence zig-zags between the slowly rising low run and the slowly
    falling high run, so every element is followed by a jump across the value
    range and divide-and-conquer combines see cross-boundary interactions at
    every level; the seed is accepted (registry convention) but unused — the
    sequence is deterministic.
    """
    out = np.empty(n, dtype=np.int64)
    half = (n + 1) // 2
    out[0::2] = np.arange(half, dtype=np.int64)
    out[1::2] = np.arange(n - 1, half - 1, -1, dtype=np.int64)[: n // 2]
    return out


def random_string_pair(
    n: int, alphabet: int, seed: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Two independent random strings over a given alphabet size."""
    rng = _rng(seed)
    s = rng.integers(0, max(1, alphabet), size=n).astype(np.int64)
    t = rng.integers(0, max(1, alphabet), size=n).astype(np.int64)
    return s, t


def correlated_string_pair(
    n: int, alphabet: int, mutation_rate: float, seed: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """A string and a mutated copy (realistic LCS workload with a long LCS)."""
    rng = _rng(seed)
    s = rng.integers(0, max(1, alphabet), size=n).astype(np.int64)
    t = s.copy()
    mutate = rng.random(n) < mutation_rate
    t[mutate] = rng.integers(0, max(1, alphabet), size=int(mutate.sum()))
    return s, t
