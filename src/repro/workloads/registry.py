"""Named workload registry used by the experiment specs and the CLI.

Experiment specs refer to workloads by *name* (a plain string that survives a
round-trip through the JSON artifact), so every generator from
:mod:`repro.workloads.generators` is addressable here.  Sequence workloads
produce one integer sequence; string workloads produce an ``(s, t)`` pair for
the LCS experiments.  Parameters that the generators require beyond ``n`` and
``seed`` (block counts, alphabet sizes, mutation rates) use the conventions of
the benchmark harness and can be overridden via keyword arguments.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .generators import (
    adversarial_alternating_sequence,
    block_sorted_noisy_sequence,
    block_sorted_sequence,
    correlated_string_pair,
    decreasing_sequence,
    duplicate_heavy_sequence,
    near_sorted_sequence,
    planted_lis_sequence,
    random_permutation_sequence,
    random_string_pair,
    zipfian_sequence,
)

__all__ = [
    "DEFAULT_SEED",
    "SequenceWorkload",
    "StringWorkload",
    "sequence_workload",
    "string_workload",
    "sequence_workload_names",
    "string_workload_names",
    "make_sequence",
    "make_string_pair",
]

#: Seed substituted when a named workload is resolved without an explicit
#: one.  A fixed default (rather than entropy from the OS) makes every
#: artifact recorded from a bare CLI line bit-for-bit reproducible; callers
#: that genuinely want fresh randomness must ask for it explicitly.
DEFAULT_SEED = 0

SequenceWorkload = Callable[..., np.ndarray]
StringWorkload = Callable[..., Tuple[np.ndarray, np.ndarray]]


def _planted(n: int, seed: Optional[int] = None, *, lis_length: Optional[int] = None) -> np.ndarray:
    return planted_lis_sequence(n, lis_length if lis_length is not None else max(1, n // 3), seed=seed)


def _block_sorted(n: int, seed: Optional[int] = None, *, num_blocks: Optional[int] = None) -> np.ndarray:
    return block_sorted_sequence(n, num_blocks if num_blocks is not None else max(1, int(math.isqrt(n))), seed=seed)


def _decreasing(n: int, seed: Optional[int] = None) -> np.ndarray:
    return decreasing_sequence(n)


def _near_sorted(n: int, seed: Optional[int] = None, *, swaps: Optional[int] = None) -> np.ndarray:
    return near_sorted_sequence(n, swaps if swaps is not None else max(1, n // 8), seed=seed)


def _duplicate_heavy(n: int, seed: Optional[int] = None, *, alphabet: Optional[int] = None) -> np.ndarray:
    return duplicate_heavy_sequence(n, alphabet if alphabet is not None else max(2, n // 16), seed=seed)


def _zipfian(n: int, seed: Optional[int] = None, *, alpha: Optional[float] = None) -> np.ndarray:
    return zipfian_sequence(n, alpha if alpha is not None else 1.5, seed=seed)


def _block_sorted_noisy(
    n: int,
    seed: Optional[int] = None,
    *,
    num_blocks: Optional[int] = None,
    noise: Optional[float] = None,
) -> np.ndarray:
    return block_sorted_noisy_sequence(
        n,
        num_blocks if num_blocks is not None else max(1, int(math.isqrt(n))),
        noise if noise is not None else 0.05,
        seed=seed,
    )


_SEQUENCE_WORKLOADS: Dict[str, SequenceWorkload] = {
    "random": random_permutation_sequence,
    "planted": _planted,
    "block_sorted": _block_sorted,
    "decreasing": _decreasing,
    "near_sorted": _near_sorted,
    "duplicate_heavy": _duplicate_heavy,
    "zipfian": _zipfian,
    "block_sorted_noisy": _block_sorted_noisy,
    "adversarial_alternating": adversarial_alternating_sequence,
}


def _random_pair(n: int, seed: Optional[int] = None, *, alphabet: int = 16):
    return random_string_pair(n, alphabet, seed=seed)


def _correlated_pair(n: int, seed: Optional[int] = None, *, alphabet: int = 16, mutation_rate: float = 0.1):
    return correlated_string_pair(n, alphabet, mutation_rate, seed=seed)


_STRING_WORKLOADS: Dict[str, StringWorkload] = {
    "random_pair": _random_pair,
    "correlated_pair": _correlated_pair,
}


def sequence_workload(name: str) -> SequenceWorkload:
    """Look up a sequence workload generator by name."""
    try:
        return _SEQUENCE_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown sequence workload {name!r}; available: {sequence_workload_names()}"
        ) from None


def string_workload(name: str) -> StringWorkload:
    """Look up a string-pair workload generator by name."""
    try:
        return _STRING_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown string workload {name!r}; available: {string_workload_names()}"
        ) from None


def sequence_workload_names() -> List[str]:
    return sorted(_SEQUENCE_WORKLOADS)


def string_workload_names() -> List[str]:
    return sorted(_STRING_WORKLOADS)


def make_sequence(name: str, n: int, seed: Optional[int] = None, **kwargs) -> np.ndarray:
    """Generate the named sequence workload (the spec-facing entry point).

    ``seed=None`` resolves to :data:`DEFAULT_SEED` so a workload named on a
    CLI line without a seed still regenerates bit-identically.
    """
    return sequence_workload(name)(n, seed=DEFAULT_SEED if seed is None else seed, **kwargs)


def make_string_pair(name: str, n: int, seed: Optional[int] = None, **kwargs):
    """Generate the named string-pair workload (the spec-facing entry point).

    ``seed=None`` resolves to :data:`DEFAULT_SEED` (see :func:`make_sequence`).
    """
    return string_workload(name)(n, seed=DEFAULT_SEED if seed is None else seed, **kwargs)
