"""Workload generators for tests, examples and benchmarks."""

from .generators import (
    block_sorted_sequence,
    correlated_string_pair,
    decreasing_sequence,
    duplicate_heavy_sequence,
    near_sorted_sequence,
    planted_lis_sequence,
    random_permutation_sequence,
    random_string_pair,
)
from .registry import (
    make_sequence,
    make_string_pair,
    sequence_workload,
    sequence_workload_names,
    string_workload,
    string_workload_names,
)

__all__ = [
    "block_sorted_sequence",
    "correlated_string_pair",
    "decreasing_sequence",
    "duplicate_heavy_sequence",
    "near_sorted_sequence",
    "planted_lis_sequence",
    "random_permutation_sequence",
    "random_string_pair",
    "make_sequence",
    "make_string_pair",
    "sequence_workload",
    "sequence_workload_names",
    "string_workload",
    "string_workload_names",
]
