"""Workload generators for tests, examples and benchmarks."""

from .generators import (
    block_sorted_sequence,
    correlated_string_pair,
    decreasing_sequence,
    duplicate_heavy_sequence,
    near_sorted_sequence,
    planted_lis_sequence,
    random_permutation_sequence,
    random_string_pair,
)

__all__ = [
    "block_sorted_sequence",
    "correlated_string_pair",
    "decreasing_sequence",
    "duplicate_heavy_sequence",
    "near_sorted_sequence",
    "planted_lis_sequence",
    "random_permutation_sequence",
    "random_string_pair",
]
