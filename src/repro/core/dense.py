"""Dense (explicit) (min,+) multiplication of (sub)unit-Monge matrices.

This module is the correctness oracle for the whole library: it computes the
implicit product ``P_C = P_A ⊡ P_B`` directly from the definition

    ``PΣ_C(i, k) = min_j ( PΣ_A(i, j) + PΣ_B(j, k) )``

by materialising the distribution matrices.  Memory and time are quadratic /
cubic in ``n``, so it is only suitable for small inputs (tests), but it makes
no structural assumptions whatsoever and therefore validates every faster
implementation in :mod:`repro.core.seaweed`, :mod:`repro.core.combine` and
:mod:`repro.mpc_monge`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .permutation import EMPTY, Permutation, SubPermutation

__all__ = [
    "minplus_distribution_product",
    "subpermutation_from_distribution",
    "multiply_dense",
    "is_distribution_matrix",
]


def minplus_distribution_product(dist_a: np.ndarray, dist_b: np.ndarray) -> np.ndarray:
    """(min,+) product of two explicit distribution matrices.

    ``dist_a`` has shape ``(m+1, k+1)`` and ``dist_b`` shape ``(k+1, n+1)``;
    the result has shape ``(m+1, n+1)``.
    """
    if dist_a.shape[1] != dist_b.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {dist_a.shape} x {dist_b.shape}"
        )
    # result[i, k] = min_j dist_a[i, j] + dist_b[j, k]; vectorise over (j, k).
    rows_a, inner = dist_a.shape
    cols_b = dist_b.shape[1]
    if rows_a * inner * cols_b <= (1 << 22):
        # Small enough: one broadcasted (i, j, k) tensor beats a Python loop.
        return np.min(dist_a[:, :, None] + dist_b[None, :, :], axis=1)
    out = np.empty((rows_a, cols_b), dtype=np.int64)
    for i in range(rows_a):
        out[i, :] = np.min(dist_a[i, :][:, None] + dist_b, axis=0)
    return out


def subpermutation_from_distribution(dist: np.ndarray) -> SubPermutation:
    """Recover the implicit sub-permutation from an explicit distribution matrix.

    The density of a distribution matrix ``D`` at cell ``(r, c)`` (half-integer
    position ``(r + 1/2, c + 1/2)``) is

        ``P(r, c) = D(r, c+1) - D(r, c) - D(r+1, c+1) + D(r+1, c)``

    which must be 0 or 1 for a valid (sub)unit-Monge matrix.
    """
    density = dist[:-1, 1:] - dist[:-1, :-1] - dist[1:, 1:] + dist[1:, :-1]
    if density.min() < 0 or density.max() > 1:
        raise ValueError("matrix is not the distribution matrix of a 0/1 matrix")
    rows, cols = np.nonzero(density)
    n_rows = dist.shape[0] - 1
    n_cols = dist.shape[1] - 1
    return SubPermutation.from_points(rows, cols, n_rows, n_cols)


def is_distribution_matrix(dist: np.ndarray) -> bool:
    """Check whether ``dist`` is the distribution matrix of a sub-permutation."""
    if dist.ndim != 2:
        return False
    # Boundary conditions of the paper's convention.
    if np.any(dist[-1, :] != 0) or np.any(dist[:, 0] != 0):
        return False
    density = dist[:-1, 1:] - dist[:-1, :-1] - dist[1:, 1:] + dist[1:, :-1]
    if density.min() < 0 or density.max() > 1:
        return False
    if np.any(density.sum(axis=0) > 1) or np.any(density.sum(axis=1) > 1):
        return False
    return True


def multiply_dense(pa: SubPermutation, pb: SubPermutation) -> SubPermutation:
    """Ground-truth implicit (sub)unit-Monge multiplication ``P_A ⊡ P_B``.

    Both operands may be rectangular: ``pa`` is ``n1 x n2`` and ``pb`` is
    ``n2 x n3``; the result is ``n1 x n3``.  Cubic time, quadratic memory.
    """
    if pa.n_cols != pb.n_rows:
        raise ValueError(
            f"inner dimensions do not match: {pa.shape} x {pb.shape}"
        )
    dist_c = minplus_distribution_product(
        pa.distribution_matrix(), pb.distribution_matrix()
    )
    result = subpermutation_from_distribution(dist_c)
    if pa.is_full_permutation() and pb.is_full_permutation():
        return result.as_permutation()
    return result
