"""Execution plans for the sequential multiply engine.

A :class:`MultiplyPlan` bundles the tuning knobs of the core (sub)unit-Monge
multiplication — the split fan-in ``H``, the dense-oracle crossover
``base_size``, the dense distribution-table budget of the combine engine and
the engine selection (the allocation-lean iterative scheduler vs the retained
recursive reference) — into one hashable, picklable value that can be threaded
through every layer that bottoms out in ``multiply``: the semi-local LIS/LCS
builders, the streaming aggregator, the service index builds and the MPC
sequential fallbacks.

Plans are *mechanics only*: every plan produces bit-identical products (the
(sub)unit-Monge product is unique), so callers may tune freely without
affecting answers, fingerprints or recorded artifacts.

:func:`auto_plan` calibrates the crossover parameters once per process by
timing a small grid of candidate plans on a fixed workload, mirroring how the
paper picks ``H`` from the machine parameters; ``python -m repro perf`` and
the ``--plan auto`` CLI knob use it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_FANIN",
    "DEFAULT_BASE_SIZE",
    "DEFAULT_DENSE_TABLE_LIMIT",
    "ENGINES",
    "MultiplyPlan",
    "PlanLike",
    "auto_plan",
    "resolve_plan",
    "clear_auto_plan_cache",
]

#: Default split fan-in ``H`` of the sequential engine.
DEFAULT_FANIN = 2

#: Default dense-oracle crossover (instances of at most this size go dense).
DEFAULT_BASE_SIZE = 32

#: Default dense distribution-table budget of the combine engine (cells).
DEFAULT_DENSE_TABLE_LIMIT = 1 << 22

#: The selectable multiply engines.
ENGINES = ("iterative", "reference")


@dataclass(frozen=True)
class MultiplyPlan:
    """Tuning knobs of the sequential multiply hot path (mechanics only).

    Attributes
    ----------
    fanin:
        Split fan-in ``H`` (number of column/row blocks per level).
    base_size:
        Instances of at most this size are handed to the dense oracle.
    dense_table_limit:
        Cell budget for the combine engine's dense distribution tables
        (reference engine and generic colored combines only).
    engine:
        ``'iterative'`` (the allocation-lean bottom-up scheduler) or
        ``'reference'`` (the retained recursive oracle).
    """

    fanin: int = DEFAULT_FANIN
    base_size: int = DEFAULT_BASE_SIZE
    dense_table_limit: int = DEFAULT_DENSE_TABLE_LIMIT
    engine: str = "iterative"

    def __post_init__(self) -> None:
        if self.fanin < 2:
            raise ValueError(f"plan fanin must be at least 2, got {self.fanin}")
        if self.base_size < 1:
            raise ValueError(f"plan base_size must be positive, got {self.base_size}")
        if self.dense_table_limit < 0:
            raise ValueError(
                f"plan dense_table_limit must be non-negative, got {self.dense_table_limit}"
            )
        if self.engine not in ENGINES:
            raise ValueError(f"plan engine must be one of {ENGINES}, got {self.engine!r}")

    def with_overrides(
        self, fanin: Optional[int] = None, base_size: Optional[int] = None
    ) -> "MultiplyPlan":
        """This plan with explicit knobs substituted (``None`` keeps a field)."""
        updates = {}
        if fanin is not None:
            updates["fanin"] = int(fanin)
        if base_size is not None:
            updates["base_size"] = int(base_size)
        return replace(self, **updates) if updates else self

    def multiply_fn(self) -> Callable:
        """A picklable ``(pa, pb) -> product`` closure running this plan.

        Suitable as the ``multiply_fn`` of the semi-local builders and the
        streaming aggregator (process backends pickle it).
        """
        import functools

        from .seaweed import multiply

        return functools.partial(multiply, plan=self)

    def describe(self) -> dict:
        """JSON-safe view (recorded in perf artifacts and provenance)."""
        return {
            "fanin": int(self.fanin),
            "base_size": int(self.base_size),
            "dense_table_limit": int(self.dense_table_limit),
            "engine": self.engine,
        }


#: Candidate grid probed by :func:`auto_plan` (fanin, base_size).
_AUTO_CANDIDATES: Tuple[Tuple[int, int], ...] = (
    (2, 16),
    (2, 32),
    (2, 64),
    (4, 32),
    (4, 64),
)

#: The process-wide calibration result (one measurement per machine/process).
_AUTO_CACHE: Optional[MultiplyPlan] = None


def clear_auto_plan_cache() -> None:
    """Forget the process-wide calibration (tests and re-calibration)."""
    global _AUTO_CACHE
    _AUTO_CACHE = None


def auto_plan(
    *,
    calibration_size: int = 1024,
    repeats: int = 1,
    candidates: Optional[Sequence[Tuple[int, int]]] = None,
    force: bool = False,
) -> MultiplyPlan:
    """Calibrate the iterative engine's crossover knobs on this machine.

    Times one full-permutation multiply of a fixed seeded workload for every
    candidate ``(fanin, base_size)`` pair and returns the fastest as a
    :class:`MultiplyPlan`.  The result is cached for the process (the paper's
    "pick H once from the machine parameters" step); pass ``force=True`` to
    re-measure.
    """
    global _AUTO_CACHE
    if _AUTO_CACHE is not None and not force and candidates is None:
        return _AUTO_CACHE

    import numpy as np

    from .permutation import random_permutation
    from .seaweed import multiply_permutations

    rng = np.random.default_rng(20240)
    pa = random_permutation(int(calibration_size), rng)
    pb = random_permutation(int(calibration_size), rng)

    grid = list(candidates) if candidates is not None else list(_AUTO_CANDIDATES)
    timed: List[Tuple[float, MultiplyPlan]] = []
    for fanin, base_size in grid:
        plan = MultiplyPlan(fanin=int(fanin), base_size=int(base_size))
        best = float("inf")
        for _ in range(max(1, int(repeats))):
            started = time.perf_counter()
            multiply_permutations(pa, pb, plan=plan)
            best = min(best, time.perf_counter() - started)
        timed.append((best, plan))
    winner = min(timed, key=lambda pair: pair[0])[1]
    if candidates is None:
        _AUTO_CACHE = winner
    return winner


def resolve_plan(
    plan: "Union[None, str, MultiplyPlan]" = None,
    *,
    fanin: Optional[int] = None,
    base_size: Optional[int] = None,
) -> MultiplyPlan:
    """Resolve CLI-style knobs into a concrete plan.

    ``plan`` may be ``None`` (defaults), a :class:`MultiplyPlan`, or one of
    the strings ``'default'`` / ``'auto'``.  Explicit ``fanin``/``base_size``
    override the resolved plan's fields.
    """
    if plan is None or plan == "default":
        resolved = MultiplyPlan()
    elif plan == "auto":
        resolved = auto_plan()
    elif isinstance(plan, MultiplyPlan):
        resolved = plan
    else:
        raise ValueError(
            f"plan must be a MultiplyPlan, 'default' or 'auto', got {plan!r}"
        )
    return resolved.with_overrides(fanin=fanin, base_size=base_size)


#: Accepted ``plan`` argument shape across the library's call sites.
PlanLike = Union[None, str, MultiplyPlan]
