"""The multiway combine engine (Lemmas 3.1-3.10 of the paper).

Given the results of ``H`` column/row-block subproblems ``P_{C,1..H}``
expanded back to the parent coordinate space, the product satisfies

    ``PΣ_C(i, j) = min_{1<=q<=H} F_q(i, j)``                       (Lemma 3.2)

with ``F_q(i, j) = Σ_{x<q} PΣ_{C,x}(i, n) + PΣ_{C,q}(i, j) + Σ_{x>q} PΣ_{C,x}(0, j)``.

Because every sub-result contributes at most one point per parent row and per
parent column, the union of all sub-result points is a *colored* (sub-)
permutation.  All three families of terms above are dominance counts over that
colored point set, so ``PΣ_C`` can be evaluated at any corner with ``H``
dominance counts.  The final permutation is recovered row by row: the point of
row ``r`` (if any) sits at the unique column where
``PΣ_C(r, ·) - PΣ_C(r+1, ·)`` jumps from 0 to 1, which is located by a
vectorised binary search.  This realises exactly the characterisation of
Lemmas 3.7-3.10 (interesting points and surviving sub-result points) without
materialising the ``opt`` table.

The query structures are fully vectorised across colors: all points live in
color-major sorted arrays whose values are shifted by ``color * span``, so a
batch of per-color counts is one ``np.searchsorted`` over color-shifted keys
— there is no Python loop over colors anywhere on the query path.  Small
instances instead pre-compute dense per-color distribution tables (int32 —
counts are bounded by the instance size) and answer every corner by direct
indexing.

The same engine is used by the sequential seaweed reference multiplication
(:mod:`repro.core.seaweed`, with ``H = 2`` or larger fan-in) and by the local
per-machine steps of the MPC algorithms (:mod:`repro.mpc_monge`).  The
iterative engine's hot path uses the specialised staircase merge in
:mod:`repro.core.seaweed` instead; this module is its general-``H`` oracle.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .permutation import SubPermutation

__all__ = [
    "ColoredPointSet",
    "combine_colored",
    "sigma_from_colored_dense",
]


class _PrefixRankTree:
    """Answers ``#{k < k0 : values[k] < threshold}`` for batches of queries.

    A binary-indexed decomposition of the value array into power-of-two blocks,
    each stored sorted; a prefix ``[0, k0)`` decomposes into O(log n) blocks.
    All queries of a batch are answered with one ``np.searchsorted`` per level
    by shifting each block into its own disjoint value range.
    """

    __slots__ = ("_levels", "_size", "_value_span")

    def __init__(self, values: np.ndarray, value_span: int) -> None:
        values = np.asarray(values, dtype=np.int64)
        self._size = len(values)
        self._value_span = int(value_span) + 2
        levels = []
        length = len(values)
        bit = 0
        while (1 << bit) <= max(length, 1):
            block = 1 << bit
            num_blocks = (length + block - 1) // block
            if num_blocks == 0:
                break
            padded = np.full(num_blocks * block, np.iinfo(np.int64).max, dtype=np.int64)
            padded[:length] = values
            blocks = np.sort(padded.reshape(num_blocks, block), axis=1)
            # Shift block t into the value range [t * span, (t+1) * span).
            shift = (np.arange(num_blocks, dtype=np.int64) * self._value_span)[:, None]
            shifted = np.where(
                blocks == np.iinfo(np.int64).max, np.iinfo(np.int64).max, blocks + shift
            )
            levels.append(shifted.ravel())
            bit += 1
        self._levels = levels

    @property
    def nbytes(self) -> int:
        """Resident bytes of the level arrays (cache-budget accounting)."""
        return sum(level.nbytes for level in self._levels)

    def prefix_count_less(self, prefix_len: np.ndarray, threshold: np.ndarray) -> np.ndarray:
        """For each query b: ``#{k < prefix_len[b] : values[k] < threshold[b]}``.

        ``prefix_len`` and ``threshold`` may be any broadcast-compatible
        shapes; the result has the broadcast shape.
        """
        prefix_len = np.asarray(prefix_len, dtype=np.int64)
        threshold = np.asarray(threshold, dtype=np.int64)
        prefix_len, threshold = np.broadcast_arrays(prefix_len, threshold)
        out = np.zeros(prefix_len.shape, dtype=np.int64)
        span = self._value_span
        clipped_threshold = np.minimum(np.maximum(threshold, 0), span - 1)
        for bit, level in enumerate(self._levels):
            block = 1 << bit
            use = (prefix_len >> bit) & 1
            start = prefix_len & ~np.int64((block << 1) - 1)
            block_idx = start >> bit
            keys = block_idx * span + clipped_threshold
            pos = np.searchsorted(level, keys, side="left")
            out += use * (pos - block_idx * block)
        return out


#: Maximum number of dense distribution-table entries kept per point set.
#: Small instances pre-compute per-color distribution matrices and answer all
#: corner queries by direct indexing, which removes the per-call overhead of
#: the logarithmic rank structure (important because the sequential seaweed
#: recursion issues very many small combines).
DENSE_TABLE_LIMIT = 1 << 22


class ColoredPointSet:
    """A set of points ``(row, col)`` each tagged with a color in ``[0, H)``.

    Provides vectorised evaluation of the sub-result distribution matrices
    ``PΣ_{C,x}`` and of ``PΣ_C = min_q F_q`` at arbitrary batches of corners.

    ``dense_table_limit`` overrides the module-level dense-table budget
    (plans thread their tuned value through here); ``None`` keeps the
    default.
    """

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        colors: np.ndarray,
        num_colors: int,
        n_rows: int,
        n_cols: int,
        *,
        dense_table_limit: Optional[int] = None,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        colors = np.asarray(colors, dtype=np.int64)
        if not (rows.shape == cols.shape == colors.shape):
            raise ValueError("rows, cols and colors must have the same length")
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValueError("column index out of range")
            if colors.min() < 0 or colors.max() >= num_colors:
                raise ValueError("color out of range")
        self.num_colors = int(num_colors)
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.rows = rows
        self.cols = cols
        self.colors = colors

        limit = DENSE_TABLE_LIMIT if dense_table_limit is None else int(dense_table_limit)
        table_cells = (n_rows + 1) * (n_cols + 1) * num_colors
        self._dense_tables: Optional[np.ndarray] = None
        if table_cells <= limit:
            # Dense per-color distribution matrices: tables[x, i, j] = PΣ_{C,x}(i, j).
            # Counts are bounded by the point count <= min(n_rows, n_cols), so
            # int32 halves the memory traffic of the two cumsum passes.
            cell = np.zeros((num_colors, n_rows + 1, n_cols + 1), dtype=np.int32)
            if rows.size:
                np.add.at(cell, (colors, rows, cols + 1), 1)
            prefix_cols = np.cumsum(cell, axis=2, dtype=np.int32)
            self._dense_tables = np.cumsum(prefix_cols[:, ::-1, :], axis=1, dtype=np.int32)[:, ::-1, :]
            return

        # Color-major sorted structures (one vectorised batch per query, no
        # Python loop over colors).  ``_starts[x]`` is color x's offset into
        # the color-major arrays; the *_shifted arrays hold values offset by
        # ``color * span`` so per-color searchsorted batches collapse into one.
        self._row_span = np.int64(n_rows + 1)
        self._col_span = np.int64(n_cols + 1)
        counts = np.bincount(colors, minlength=num_colors).astype(np.int64)
        self._starts = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

        by_row = np.lexsort((rows, colors))
        self._rows_shifted = rows[by_row] + colors[by_row] * self._row_span
        self._cols_by_row = cols[by_row]
        by_col = np.lexsort((cols, colors))
        self._cols_shifted = cols[by_col] + colors[by_col] * self._col_span
        # One rank tree over the whole color-major array: a per-color prefix
        # is the absolute range [starts[x], end), so batched prefix counts
        # need no per-color structures.
        self._rank_tree = _PrefixRankTree(self._cols_by_row, n_cols)

    # ------------------------------------------------------------------ memory
    @property
    def nbytes(self) -> int:
        """Resident bytes of the point arrays plus the query acceleration
        structures (dense tables or the color-major arrays and rank tree).

        Used by the service-layer index cache to enforce its byte budget, so
        it must reflect what actually stays alive after construction.
        """
        total = self.rows.nbytes + self.cols.nbytes + self.colors.nbytes
        if self._dense_tables is not None:
            return total + self._dense_tables.nbytes
        total += self._starts.nbytes
        total += self._rows_shifted.nbytes
        total += self._cols_by_row.nbytes
        total += self._cols_shifted.nbytes
        total += self._rank_tree.nbytes
        return total

    # ------------------------------------------------------------------ counts
    def _color_keys(self, values: np.ndarray, span: np.int64) -> np.ndarray:
        """``keys[b, x] = x * span + values[b]`` for the shifted searches."""
        shifts = np.arange(self.num_colors, dtype=np.int64) * span
        return values[:, None] + shifts[None, :]

    def row_suffix_counts(self, i: np.ndarray) -> np.ndarray:
        """``out[b, x] = #{points of color x with row >= i[b]}``."""
        i = np.asarray(i, dtype=np.int64)
        if self._dense_tables is not None:
            return self._dense_tables[:, i, self.n_cols].T.astype(np.int64)
        ends = np.searchsorted(self._rows_shifted, self._color_keys(i, self._row_span))
        return self._starts[1:][None, :] - ends

    def col_prefix_counts(self, j: np.ndarray) -> np.ndarray:
        """``out[b, x] = #{points of color x with col < j[b]}``."""
        j = np.asarray(j, dtype=np.int64)
        if self._dense_tables is not None:
            return self._dense_tables[:, 0, j].T.astype(np.int64)
        pos = np.searchsorted(self._cols_shifted, self._color_keys(j, self._col_span))
        return pos - self._starts[:-1][None, :]

    def dominance_counts(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """``out[b, x] = PΣ_{C,x}(i[b], j[b]) = #{color-x points : row >= i, col < j}``."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        if self._dense_tables is not None:
            return self._dense_tables[:, i, j].T.astype(np.int64)
        col_prefix = self.col_prefix_counts(j)
        return self._dominance_from_col_prefix(i, j, col_prefix)

    def _dominance_from_col_prefix(
        self, i: np.ndarray, j: np.ndarray, col_prefix: np.ndarray
    ) -> np.ndarray:
        """Sparse-path dominance counts reusing an existing col-prefix batch.

        ``#{color x: row >= i, col < j}`` = (color-x points with col < j)
        minus (color-x points with row < i and col < j).  The subtrahend is a
        prefix-range rank query on the single color-major tree: the range
        ``[starts[x], ends[b, x])`` decomposes as tree(ends) minus the
        exclusive running sum of the col-prefix counts (everything before
        color x's segment with col < j).
        """
        ends = np.searchsorted(self._rows_shifted, self._color_keys(i, self._row_span))
        before_end = self._rank_tree.prefix_count_less(ends, j[:, None])
        before_start = np.cumsum(col_prefix, axis=1) - col_prefix
        return col_prefix - (before_end - before_start)

    # ------------------------------------------------------------ F_q / sigma
    def f_values(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """``out[b, q] = F_q(i[b], j[b])`` for every subproblem index q."""
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        row_suffix = self.row_suffix_counts(i)
        col_prefix = self.col_prefix_counts(j)
        if self._dense_tables is not None:
            dom = self.dominance_counts(i, j)
        else:
            dom = self._dominance_from_col_prefix(i, j, col_prefix)
        # Σ_{x < q} row_suffix[x]  and  Σ_{x > q} col_prefix[x]
        before = np.cumsum(row_suffix, axis=1) - row_suffix
        total_after = col_prefix.sum(axis=1, keepdims=True)
        after = total_after - np.cumsum(col_prefix, axis=1)
        return before + dom + after

    def sigma(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """``PΣ_C(i[b], j[b]) = min_q F_q(i[b], j[b])`` (Lemma 3.2)."""
        return self.f_values(i, j).min(axis=1)

    def opt(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """``opt(i[b], j[b])``: the smallest q attaining the minimum (0-based)."""
        return np.argmin(self.f_values(i, j), axis=1).astype(np.int64)

    # ----------------------------------------------------------------- combine
    def row_point_columns(self, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """For each requested parent row, the column of its point in ``P_C``.

        Returns ``-1`` for rows that have no point (sub-permutation case).
        The search runs in ``O(log n_cols)`` vectorised rounds of corner
        evaluations of ``PΣ_C``.
        """
        if rows is None:
            rows = np.arange(self.n_rows, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)

        full_j = np.full(len(rows), self.n_cols, dtype=np.int64)
        has_point = (self.sigma(rows, full_j) - self.sigma(rows + 1, full_j)) > 0

        result = np.full(len(rows), -1, dtype=np.int64)
        active = np.flatnonzero(has_point)
        if active.size == 0:
            return result

        lo = np.zeros(len(active), dtype=np.int64)
        hi = np.full(len(active), self.n_cols, dtype=np.int64)
        act_rows = rows[active]
        # Invariant: the step column lies in (lo, hi]; g(hi) >= 1, g(lo) = 0.
        while np.any(lo + 1 < hi):
            mid = (lo + hi) // 2
            g_mid = self.sigma(act_rows, mid) - self.sigma(act_rows + 1, mid)
            take_hi = g_mid >= 1
            hi = np.where(take_hi, mid, hi)
            lo = np.where(take_hi, lo, mid)
        result[active] = hi - 1
        return result

    def combine(self) -> SubPermutation:
        """Compute the full product ``P_C`` as a :class:`SubPermutation`.

        Optimisation: a sub-result point survives unchanged whenever
        ``P_C`` has a 1 at its position (Lemma 3.10 region); those rows are
        settled with **one** stacked sigma evaluation of all four corners of
        every union point, and only the remaining rows (whose point was
        displaced by a demarcation line) run the binary search.  Small
        instances skip both stages and take the fully dense path instead.
        """
        if self._dense_tables is not None:
            return self._combine_dense()

        result_cols = np.full(self.n_rows, -1, dtype=np.int64)

        if self.rows.size:
            # Stage 1: the 4-corner survival test, fused into one stacked
            # evaluation — corners (r, c), (r, c+1), (r+1, c), (r+1, c+1).
            r = self.rows
            c = self.cols
            stacked_i = np.concatenate([r, r, r + 1, r + 1])
            stacked_j = np.concatenate([c, c + 1, c, c + 1])
            s_rc, s_rc1, s_r1c, s_r1c1 = np.split(self.sigma(stacked_i, stacked_j), 4)
            survives = (s_rc1 - s_rc - s_r1c1 + s_r1c) == 1
            result_cols[r[survives]] = c[survives]
            # Unresolved rows via boolean-mask scatter (no sort/merge pass).
            settled = np.zeros(self.n_rows, dtype=bool)
            settled[r[survives]] = True
            unresolved = np.flatnonzero(~settled)
        else:
            unresolved = np.arange(self.n_rows, dtype=np.int64)

        if unresolved.size:
            # Stage 2: binary search for rows not settled by a surviving point.
            found = self.row_point_columns(unresolved)
            result_cols[unresolved] = found

        return SubPermutation(result_cols, n_cols=self.n_cols, validate=True)

    def _combine_dense(self) -> SubPermutation:
        """Dense combine: materialise ``PΣ_C = min_q F_q`` and difference it."""
        tables = self._dense_tables
        before = np.cumsum(tables[:, :, self.n_cols], axis=0) - tables[:, :, self.n_cols]
        col_tot = tables[:, 0, :]
        after = col_tot.sum(axis=0, keepdims=True, dtype=np.int32) - np.cumsum(
            col_tot, axis=0, dtype=np.int32
        )
        sigma = np.min(
            tables + before[:, :, None] + after[:, None, :], axis=0
        )
        density = sigma[:-1, 1:] - sigma[:-1, :-1] - sigma[1:, 1:] + sigma[1:, :-1]
        rows, cols = np.nonzero(density)
        return SubPermutation.from_points(
            rows, cols, self.n_rows, self.n_cols, validate=False
        )


def combine_colored(
    rows: np.ndarray,
    cols: np.ndarray,
    colors: np.ndarray,
    num_colors: int,
    n_rows: int,
    n_cols: int,
    *,
    dense_table_limit: Optional[int] = None,
) -> SubPermutation:
    """Convenience wrapper: build a :class:`ColoredPointSet` and combine it."""
    point_set = ColoredPointSet(
        rows, cols, colors, num_colors, n_rows, n_cols,
        dense_table_limit=dense_table_limit,
    )
    return point_set.combine()


def sigma_from_colored_dense(point_set: ColoredPointSet) -> np.ndarray:
    """Dense ``PΣ_C`` table of shape ``(n_rows+1, n_cols+1)`` (testing only)."""
    n_rows, n_cols = point_set.n_rows, point_set.n_cols
    ii, jj = np.meshgrid(
        np.arange(n_rows + 1, dtype=np.int64),
        np.arange(n_cols + 1, dtype=np.int64),
        indexing="ij",
    )
    values = point_set.sigma(ii.ravel(), jj.ravel())
    return values.reshape(n_rows + 1, n_cols + 1)
