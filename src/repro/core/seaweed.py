"""Sequential (sub)unit-Monge multiplication in Tiskin's seaweed framework.

The entry point is :func:`multiply`, which accepts arbitrary sub-permutation
matrices.  Internally, full permutation matrices are multiplied by the
recursive divide-and-conquer of the paper's Section 3.1:

* split ``P_A`` into ``H`` column blocks and ``P_B`` into ``H`` row blocks,
* compact each block by deleting empty rows/columns (the maps ``M_A``/``M_B``),
* recursively multiply the ``H`` compacted pairs,
* expand the sub-results back to the parent index space (giving the colored
  union permutation) and merge them with the combine engine of
  :mod:`repro.core.combine` (Lemmas 3.1-3.10).

Sub-permutation inputs are first padded to full permutations exactly as in the
paper's Section 4.1 and the padding is stripped from the result afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .combine import combine_colored
from .dense import multiply_dense
from .permutation import EMPTY, Permutation, SubPermutation

__all__ = [
    "BlockSplit",
    "split_into_blocks",
    "expand_block_results",
    "multiply_permutations",
    "pad_to_permutations",
    "strip_padding",
    "multiply",
]

#: Below this size the dense oracle is at least as fast as the recursion.
DEFAULT_BASE_SIZE = 64


@dataclass
class BlockSplit:
    """The result of splitting a ``(P_A, P_B)`` pair into ``H`` subproblems.

    Attributes
    ----------
    a_blocks, b_blocks:
        The compacted square permutations ``P'_{A,q}`` and ``P'_{B,q}``.
    row_maps:
        ``row_maps[q][r_local]`` is the parent row of local row ``r_local`` of
        subproblem ``q`` (the inverse mapping ``M_A^{-1}`` of the paper).
    col_maps:
        ``col_maps[q][c_local]`` is the parent column of local column
        ``c_local`` of subproblem ``q`` (``M_B^{-1}``).
    boundaries:
        Column boundaries of ``P_A`` / row boundaries of ``P_B`` used for the
        split (length ``H + 1``).
    """

    a_blocks: List[Permutation]
    b_blocks: List[Permutation]
    row_maps: List[np.ndarray]
    col_maps: List[np.ndarray]
    boundaries: np.ndarray

    @property
    def num_blocks(self) -> int:
        return len(self.a_blocks)


def block_boundaries(n: int, num_blocks: int) -> np.ndarray:
    """Near-equal integer boundaries ``0 = b_0 <= ... <= b_H = n``."""
    return np.linspace(0, n, num_blocks + 1).round().astype(np.int64)


def split_into_blocks(pa: Permutation, pb: Permutation, num_blocks: int) -> BlockSplit:
    """Split ``P_A`` by columns and ``P_B`` by rows into ``num_blocks`` pairs."""
    n = pa.size
    if pb.size != n:
        raise ValueError("operands must have the same size")
    bounds = block_boundaries(n, num_blocks)

    a_row_to_col = np.asarray(pa.row_to_col)
    b_row_to_col = np.asarray(pb.row_to_col)

    a_blocks: List[Permutation] = []
    b_blocks: List[Permutation] = []
    row_maps: List[np.ndarray] = []
    col_maps: List[np.ndarray] = []

    for q in range(num_blocks):
        lo, hi = int(bounds[q]), int(bounds[q + 1])
        # --- columns [lo, hi) of P_A; compact empty rows --------------------
        mask_a = (a_row_to_col >= lo) & (a_row_to_col < hi)
        rows_q = np.flatnonzero(mask_a).astype(np.int64)  # sorted parent rows
        local_a = a_row_to_col[rows_q] - lo
        a_blocks.append(Permutation(local_a, validate=False))
        row_maps.append(rows_q)
        # --- rows [lo, hi) of P_B; compact empty columns --------------------
        cols_block = b_row_to_col[lo:hi]
        cols_sorted = np.sort(cols_block)
        local_b = np.searchsorted(cols_sorted, cols_block)
        b_blocks.append(Permutation(local_b.astype(np.int64), validate=False))
        col_maps.append(cols_sorted.astype(np.int64))

    return BlockSplit(a_blocks, b_blocks, row_maps, col_maps, bounds)


def expand_block_results(
    block_results: Sequence[SubPermutation],
    split: BlockSplit,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand ``P'_{C,q}`` back to parent coordinates as colored points.

    Returns ``(rows, cols, colors)`` parallel arrays describing the union of
    the expanded sub-results ``P_{C,q}`` (the colored permutation of §3.2).
    """
    all_rows: List[np.ndarray] = []
    all_cols: List[np.ndarray] = []
    all_colors: List[np.ndarray] = []
    for q, result in enumerate(block_results):
        local_rows, local_cols = result.points()
        all_rows.append(split.row_maps[q][local_rows])
        all_cols.append(split.col_maps[q][local_cols])
        all_colors.append(np.full(len(local_rows), q, dtype=np.int64))
    if not all_rows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate(all_rows),
        np.concatenate(all_cols),
        np.concatenate(all_colors),
    )


def multiply_permutations(
    pa: Permutation,
    pb: Permutation,
    *,
    fanin: int = 2,
    base_size: int = DEFAULT_BASE_SIZE,
) -> Permutation:
    """``P_A ⊡ P_B`` for full permutation matrices of equal size.

    Parameters
    ----------
    fanin:
        Number of subproblems ``H`` merged per recursion level (the paper uses
        ``H = n^{(1-δ)/10}`` in the MPC setting; sequentially any ``H >= 2``
        is correct and exposed here for the fan-in ablation).
    base_size:
        Instances of at most this size are handed to the dense oracle.
    """
    if fanin < 2:
        raise ValueError("fanin must be at least 2")
    n = pa.size
    if pb.size != n:
        raise ValueError("operands must have the same size")
    if n == 0:
        return Permutation(np.empty(0, dtype=np.int64), validate=False)
    if n <= max(base_size, fanin):
        return multiply_dense(pa, pb).as_permutation()

    num_blocks = min(fanin, n)
    split = split_into_blocks(pa, pb, num_blocks)
    block_results = [
        multiply_permutations(a_blk, b_blk, fanin=fanin, base_size=base_size)
        for a_blk, b_blk in zip(split.a_blocks, split.b_blocks)
    ]
    rows, cols, colors = expand_block_results(block_results, split)
    merged = combine_colored(rows, cols, colors, num_blocks, n, n)
    return merged.as_permutation()


# --------------------------------------------------------------------------
# Sub-permutation handling (paper Section 4.1, Theorem 1.2)
# --------------------------------------------------------------------------

@dataclass
class PaddingInfo:
    """Book-keeping needed to strip the Section 4.1 padding from a product."""

    kept_rows_a: np.ndarray  # rows of P_A that were nonzero
    kept_cols_b: np.ndarray  # columns of P_B that were nonzero
    n_rows: int  # original row count of P_A
    n_cols: int  # original column count of P_B
    inner: int  # n2, the padded square size
    num_kept_rows: int
    num_kept_cols: int


def pad_to_permutations(
    pa: SubPermutation, pb: SubPermutation
) -> Tuple[Permutation, Permutation, PaddingInfo]:
    """Pad sub-permutations to full ``n2 x n2`` permutations (paper §4.1)."""
    if pa.n_cols != pb.n_rows:
        raise ValueError(f"inner dimensions do not match: {pa.shape} x {pb.shape}")
    n2 = pa.n_cols

    # Drop zero rows of P_A and zero columns of P_B (they stay zero in P_C).
    kept_rows_a = pa.nonzero_rows()
    a_cols = np.asarray(pa.row_to_col)[kept_rows_a]
    kept_cols_b = pb.nonzero_cols()
    b_col_to_row = pb.col_to_row()
    b_rows = b_col_to_row[kept_cols_b]

    n1p = len(kept_rows_a)
    n3p = len(kept_cols_b)

    # Extend P_A with n2 - n1' rows in front, covering its empty columns.
    empty_cols_a = np.setdiff1d(
        np.arange(n2, dtype=np.int64), a_cols, assume_unique=False
    )
    padded_a = np.concatenate([empty_cols_a, a_cols]).astype(np.int64)
    perm_a = Permutation(padded_a, validate=False)

    # Extend P_B with n2 - n3' columns at the back, covering its empty rows.
    padded_b = np.full(n2, EMPTY, dtype=np.int64)
    padded_b[b_rows] = np.arange(n3p, dtype=np.int64)
    empty_rows_b = np.flatnonzero(padded_b == EMPTY)
    padded_b[empty_rows_b] = n3p + np.arange(len(empty_rows_b), dtype=np.int64)
    perm_b = Permutation(padded_b, validate=False)

    info = PaddingInfo(
        kept_rows_a=kept_rows_a,
        kept_cols_b=kept_cols_b,
        n_rows=pa.n_rows,
        n_cols=pb.n_cols,
        inner=n2,
        num_kept_rows=n1p,
        num_kept_cols=n3p,
    )
    return perm_a, perm_b, info


def strip_padding(product: Permutation, info: PaddingInfo) -> SubPermutation:
    """Extract ``P_A ⊡ P_B`` from the padded product (paper §4.1)."""
    rows, cols = product.points()
    offset = info.inner - info.num_kept_rows
    mask = (rows >= offset) & (cols < info.num_kept_cols)
    out_rows = info.kept_rows_a[rows[mask] - offset]
    out_cols = info.kept_cols_b[cols[mask]]
    return SubPermutation.from_points(
        out_rows, out_cols, info.n_rows, info.n_cols, validate=True
    )


def multiply(
    pa: SubPermutation,
    pb: SubPermutation,
    *,
    fanin: int = 2,
    base_size: int = DEFAULT_BASE_SIZE,
) -> SubPermutation:
    """Implicit (sub)unit-Monge multiplication ``P_A ⊡ P_B`` (Theorems 1.1/1.2).

    Accepts arbitrary (possibly rectangular) sub-permutation matrices; full
    square permutations skip the padding step.
    """
    if (
        isinstance(pa, SubPermutation)
        and isinstance(pb, SubPermutation)
        and pa.n_rows == pa.n_cols == pb.n_rows == pb.n_cols
        and pa.is_full_permutation()
        and pb.is_full_permutation()
    ):
        return multiply_permutations(
            pa.as_permutation(), pb.as_permutation(), fanin=fanin, base_size=base_size
        )
    perm_a, perm_b, info = pad_to_permutations(pa, pb)
    product = multiply_permutations(perm_a, perm_b, fanin=fanin, base_size=base_size)
    return strip_padding(product, info)
