"""Sequential (sub)unit-Monge multiplication in Tiskin's seaweed framework.

The entry point is :func:`multiply`, which accepts arbitrary sub-permutation
matrices.  Two engines implement the full-permutation product, selected
through a :class:`~repro.core.plan.MultiplyPlan`:

* **iterative** (default, :func:`multiply_permutations_iterative`): an
  allocation-lean bottom-up scheduler.  The instance is split top-down into
  an explicit H-ary block tree (the maps ``M_A``/``M_B`` of the paper's
  Section 3.1); leaves go to the dense oracle; every internal node is then
  merged bottom-up with the O(m) *staircase merge* kernel
  (:func:`_staircase_merge_kernel`) — the H-ary level merge decomposes into
  pairwise merges by associativity of ``⊡``.  Per-level point sets stay
  sorted, so each merge builds its rank structures by merging the previous
  level's sorted arrays instead of re-sorting, and all positional scatter
  temporaries come from one reusable :class:`ScratchArena`.
* **reference** (:func:`multiply_permutations_reference`): the original
  recursive divide-and-conquer retained verbatim as a correctness oracle —
  split ``P_A`` into ``H`` column blocks and ``P_B`` into ``H`` row blocks,
  recurse, and merge with the generic colored combine engine of
  :mod:`repro.core.combine` (Lemmas 3.1-3.10).

Both engines are bit-identical on every input (the (sub)unit-Monge product
is unique); the property tests in ``tests/test_seaweed.py`` and the
``python -m repro perf`` regression subsystem pin that identity.

The staircase merge of two sub-results ``P_0`` (color 0) and ``P_1``
(color 1) rests on Lemma 3.2 specialised to ``H = 2``: with
``delta(i, j) = F_1(i, j) - F_0(i, j)``, ``delta`` is non-increasing in both
``i`` and ``j``, so the region where ``F_1`` attains the minimum is bounded by
a monotone staircase ``t(i) = min{j : delta(i, j) <= 0}``.  One two-pointer
walk computes ``t`` (and ``delta`` on it) in O(m); the product's points are
then read off by finite differences of ``PΣ_C`` — sub-result points strictly
inside a pure region survive unchanged (Lemma 3.10) and the remaining rows
take the unique seam cell whose density is 1.

Sub-permutation inputs are first padded to full permutations exactly as in
the paper's Section 4.1 and the padding is stripped from the result
afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .combine import combine_colored
from .dense import multiply_dense
from .permutation import EMPTY, Permutation, SubPermutation
from .plan import MultiplyPlan, resolve_plan
from ..obs.metrics import get_registry

# Engine metrics, recorded once per multiply (never per merge) so the
# instrumentation stays invisible to the perf regression gate.
_MULTIPLIES = get_registry().counter(
    "repro_multiply_total", "Iterative multiplies run in this process"
)
_MERGES = get_registry().counter(
    "repro_multiply_merges_total", "Staircase merges folded by the iterative engine"
)
_LEAVES = get_registry().counter(
    "repro_multiply_leaves_total", "Dense-oracle leaves solved by the iterative engine"
)
_ARENA_GROWS = get_registry().counter(
    "repro_arena_grows_total", "ScratchArena buffer (re)allocations"
)
_ARENA_REUSES = get_registry().counter(
    "repro_arena_reuses_total", "ScratchArena buffer handouts served without allocating"
)
_ARENA_BYTES = get_registry().gauge(
    "repro_arena_bytes", "Resident bytes of the most recently used ScratchArena"
)

__all__ = [
    "BlockSplit",
    "split_into_blocks",
    "expand_block_results",
    "multiply_permutations",
    "multiply_permutations_reference",
    "multiply_permutations_iterative",
    "pad_to_permutations",
    "strip_padding",
    "multiply",
    "ScratchArena",
]

#: Below this size the dense oracle is at least as fast as the recursion
#: (historical reference-engine default; plans default to a tuned value).
DEFAULT_BASE_SIZE = 64


@dataclass
class BlockSplit:
    """The result of splitting a ``(P_A, P_B)`` pair into ``H`` subproblems.

    Attributes
    ----------
    a_blocks, b_blocks:
        The compacted square permutations ``P'_{A,q}`` and ``P'_{B,q}``.
    row_maps:
        ``row_maps[q][r_local]`` is the parent row of local row ``r_local`` of
        subproblem ``q`` (the inverse mapping ``M_A^{-1}`` of the paper).
    col_maps:
        ``col_maps[q][c_local]`` is the parent column of local column
        ``c_local`` of subproblem ``q`` (``M_B^{-1}``).
    boundaries:
        Column boundaries of ``P_A`` / row boundaries of ``P_B`` used for the
        split (length ``H + 1``).
    """

    a_blocks: List[Permutation]
    b_blocks: List[Permutation]
    row_maps: List[np.ndarray]
    col_maps: List[np.ndarray]
    boundaries: np.ndarray

    @property
    def num_blocks(self) -> int:
        return len(self.a_blocks)


def block_boundaries(n: int, num_blocks: int) -> np.ndarray:
    """Near-equal integer boundaries ``0 = b_0 <= ... <= b_H = n``."""
    return np.linspace(0, n, num_blocks + 1).round().astype(np.int64)


def split_into_blocks(pa: Permutation, pb: Permutation, num_blocks: int) -> BlockSplit:
    """Split ``P_A`` by columns and ``P_B`` by rows into ``num_blocks`` pairs."""
    n = pa.size
    if pb.size != n:
        raise ValueError("operands must have the same size")
    bounds = block_boundaries(n, num_blocks)

    a_row_to_col = np.asarray(pa.row_to_col)
    b_row_to_col = np.asarray(pb.row_to_col)

    a_blocks: List[Permutation] = []
    b_blocks: List[Permutation] = []
    row_maps: List[np.ndarray] = []
    col_maps: List[np.ndarray] = []

    for q in range(num_blocks):
        lo, hi = int(bounds[q]), int(bounds[q + 1])
        # --- columns [lo, hi) of P_A; compact empty rows --------------------
        mask_a = (a_row_to_col >= lo) & (a_row_to_col < hi)
        rows_q = np.flatnonzero(mask_a).astype(np.int64)  # sorted parent rows
        local_a = a_row_to_col[rows_q] - lo
        a_blocks.append(Permutation(local_a, validate=False))
        row_maps.append(rows_q)
        # --- rows [lo, hi) of P_B; compact empty columns --------------------
        cols_block = b_row_to_col[lo:hi]
        cols_sorted = np.sort(cols_block)
        local_b = np.searchsorted(cols_sorted, cols_block)
        b_blocks.append(Permutation(local_b.astype(np.int64), validate=False))
        col_maps.append(cols_sorted.astype(np.int64))

    return BlockSplit(a_blocks, b_blocks, row_maps, col_maps, bounds)


def expand_block_results(
    block_results: Sequence[SubPermutation],
    split: BlockSplit,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand ``P'_{C,q}`` back to parent coordinates as colored points.

    Returns ``(rows, cols, colors)`` parallel arrays describing the union of
    the expanded sub-results ``P_{C,q}`` (the colored permutation of §3.2).
    """
    all_rows: List[np.ndarray] = []
    all_cols: List[np.ndarray] = []
    all_colors: List[np.ndarray] = []
    for q, result in enumerate(block_results):
        local_rows, local_cols = result.points()
        all_rows.append(split.row_maps[q][local_rows])
        all_cols.append(split.col_maps[q][local_cols])
        all_colors.append(np.full(len(local_rows), q, dtype=np.int64))
    if not all_rows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate(all_rows),
        np.concatenate(all_cols),
        np.concatenate(all_colors),
    )


# --------------------------------------------------------------------------
# The retained recursive reference engine (correctness oracle)
# --------------------------------------------------------------------------

def multiply_permutations_reference(
    pa: Permutation,
    pb: Permutation,
    *,
    fanin: int = 2,
    base_size: int = DEFAULT_BASE_SIZE,
    dense_table_limit: Optional[int] = None,
) -> Permutation:
    """``P_A ⊡ P_B`` by the paper's recursive divide-and-conquer (§3.1).

    Retained as the reference oracle for the iterative engine: same split,
    same dense leaf oracle, but the H-ary merge runs through the generic
    colored combine engine and the levels unwind by Python recursion.
    ``dense_table_limit`` tunes the combine engine's dense-table budget
    (``None`` keeps the module default).
    """
    if fanin < 2:
        raise ValueError("fanin must be at least 2")
    n = pa.size
    if pb.size != n:
        raise ValueError("operands must have the same size")
    if n == 0:
        return Permutation(np.empty(0, dtype=np.int64), validate=False)
    if n <= max(base_size, fanin):
        return multiply_dense(pa, pb).as_permutation()

    num_blocks = min(fanin, n)
    split = split_into_blocks(pa, pb, num_blocks)
    block_results = [
        multiply_permutations_reference(
            a_blk, b_blk, fanin=fanin, base_size=base_size,
            dense_table_limit=dense_table_limit,
        )
        for a_blk, b_blk in zip(split.a_blocks, split.b_blocks)
    ]
    rows, cols, colors = expand_block_results(block_results, split)
    merged = combine_colored(
        rows, cols, colors, num_blocks, n, n, dense_table_limit=dense_table_limit
    )
    return merged.as_permutation()


# --------------------------------------------------------------------------
# The iterative allocation-lean engine
# --------------------------------------------------------------------------

class ScratchArena:
    """Reusable int64 workspace for the iterative engine's merges.

    One multiply allocates every positional-scatter temporary (merge
    positions, local ranks, the colored local permutation and its inverse)
    from this arena instead of the heap: named buffers grow to the high-water
    mark once and are handed out as slice views afterwards.  A shared
    ``0..capacity`` ramp serves every ``arange`` the merges need.
    """

    __slots__ = ("_buffers", "_ramp", "grows", "reuses")

    def __init__(self) -> None:
        self._buffers = {}
        self._ramp = np.empty(0, dtype=np.int64)
        self.grows = 0
        self.reuses = 0

    def take(self, name: str, size: int) -> np.ndarray:
        """A length-``size`` int64 view of the named buffer (grown if needed)."""
        buf = self._buffers.get(name)
        if buf is None or len(buf) < size:
            buf = np.empty(max(size, 16), dtype=np.int64)
            self._buffers[name] = buf
            self.grows += 1
        else:
            self.reuses += 1
        return buf[:size]

    def ramp(self, size: int) -> np.ndarray:
        """A read-only view of ``arange(size)`` (shared across merges)."""
        if len(self._ramp) < size:
            self._ramp = np.arange(max(size, 16), dtype=np.int64)
            self.grows += 1
        else:
            self.reuses += 1
        return self._ramp[:size]

    @property
    def nbytes(self) -> int:
        """Resident bytes of the arena (observability/testing)."""
        return int(self._ramp.nbytes) + sum(buf.nbytes for buf in self._buffers.values())


def _staircase_merge_kernel(
    perm: Sequence[int],
    color: Sequence[int],
    col_row: Sequence[int],
    col_color: Sequence[int],
    m: int,
) -> List[int]:
    """Merge the colored local permutation into its product (O(m) walk).

    ``perm``/``color`` give each local row's point column and operand color
    (0 = left/earlier block, 1 = right/later block); ``col_row``/``col_color``
    are the inverse view.  Implements the ``H = 2`` instance of Lemma 3.2:

    * two-pointer pass computes the staircase ``t(i) = min{j : delta <= 0}``
      (``delta = F_1 - F_0`` is non-increasing in both arguments, so the
      pointer only moves forward) together with ``dval(i) = delta(i, t(i))``;
    * a second pass reads the product off by finite differences of
      ``PΣ_C = min(F_0, F_1)``: color-0 points with column ``< t(r+1) - 1``
      and color-1 points with column ``>= t(r)`` survive unchanged
      (Lemma 3.10); each remaining row takes the unique seam cell in
      ``[t(r+1) - 1, t(r) - 1]`` whose 4-corner density is 1, located with
      the O(1) corner identities on ``dval`` — total extra work is the
      staircase length, so the whole kernel is O(m).

    Operates on plain Python lists (the walk is branchy scalar work where
    list indexing beats NumPy scalar indexing by a wide margin).
    """
    t = [0] * (m + 1)
    dval = [0] * (m + 1)
    j = 0
    val = 0
    for i in range(m - 1, -1, -1):
        ci = perm[i]
        if color[i] == 0:
            if ci >= j:
                val += 1
        elif ci < j:
            val += 1
        while val > 0:
            rj = col_row[j]
            if col_color[j] == 1:
                val += (1 if rj >= i else 0) - 1
            else:
                val -= 1 if rj >= i else 0
            j += 1
        t[i] = j
        dval[i] = val

    out = [0] * m
    for r in range(m):
        u = t[r]
        v = t[r + 1]
        cr = perm[r]
        if color[r] == 0:
            if cr <= v - 2:  # strictly inside the F_0 region (Lemma 3.10)
                out[r] = cr
                continue
        elif cr >= u:  # strictly inside the F_1 region
            out[r] = cr
            continue
        if u == v:  # degenerate staircase step: single seam cell
            out[r] = u - 1
            continue
        # Seam band [v-1, u-1]: density(r, v-1) = [col v-1 holds (r, color 0)]
        # - dval(r+1); interior cells v <= c <= u-2 carry density
        # [color0 & row >= r] + [color1 & row <= r]; cell u-1 takes the rest.
        if v >= 1 and dval[r + 1] == 0 and col_color[v - 1] == 0 and col_row[v - 1] == r:
            out[r] = v - 1
            continue
        for c in range(v, u - 1):
            rc = col_row[c]
            if (col_color[c] == 0 and rc >= r) or (col_color[c] == 1 and rc <= r):
                out[r] = c
                break
        else:
            out[r] = u - 1
    return out


#: A node product in the iterative engine: points sorted by row, their
#: columns in row order, and the sorted column support (reused by the parent
#: merge instead of re-sorting).
_NodeProduct = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _merge_node_products(
    left: _NodeProduct, right: _NodeProduct, arena: ScratchArena
) -> _NodeProduct:
    """``left ⊡ right`` for two adjacent sub-results in shared coordinates.

    Both operands are sub-permutations over the parent node's index space
    with disjoint row and column supports.  The union is compacted to a
    local colored permutation (rank structures come from merging the
    operands' already-sorted arrays), multiplied with the staircase kernel,
    and expanded back — all scatter temporaries live in the arena.
    """
    rows0, cols0, sorted_cols0 = left
    rows1, cols1, sorted_cols1 = right
    m0, m1 = len(rows0), len(rows1)
    if m0 == 0:
        return right
    if m1 == 0:
        return left
    m = m0 + m1

    ramp0 = arena.ramp(m0)
    ramp1 = arena.ramp(m1)

    # Merge the sorted, disjoint row supports: each side's slot in the union
    # is its own rank plus the number of other-side entries before it.
    pos0 = arena.take("pos0", m0)
    pos1 = arena.take("pos1", m1)
    np.add(np.searchsorted(rows1, rows0), ramp0, out=pos0)
    np.add(np.searchsorted(rows0, rows1), ramp1, out=pos1)
    union_rows = np.empty(m, dtype=np.int64)
    union_rows[pos0] = rows0
    union_rows[pos1] = rows1

    # Same merge for the sorted column supports.
    cpos0 = arena.take("cpos0", m0)
    cpos1 = arena.take("cpos1", m1)
    np.add(np.searchsorted(sorted_cols1, sorted_cols0), ramp0, out=cpos0)
    np.add(np.searchsorted(sorted_cols0, sorted_cols1), ramp1, out=cpos1)
    union_cols = np.empty(m, dtype=np.int64)
    union_cols[cpos0] = sorted_cols0
    union_cols[cpos1] = sorted_cols1

    # The union as a colored local permutation and its inverse view.
    perm = arena.take("perm", m)
    perm[pos0] = np.searchsorted(union_cols, cols0)
    perm[pos1] = np.searchsorted(union_cols, cols1)
    color = arena.take("color", m)
    color[pos0] = 0
    color[pos1] = 1
    col_row = arena.take("col_row", m)
    col_row[perm] = arena.ramp(m)
    col_color = arena.take("col_color", m)
    col_color[perm] = color

    local = _staircase_merge_kernel(
        perm.tolist(), color.tolist(), col_row.tolist(), col_color.tolist(), m
    )
    out_cols = union_cols[np.asarray(local, dtype=np.int64)]
    return union_rows, out_cols, union_cols


def multiply_permutations_iterative(
    pa: Permutation,
    pb: Permutation,
    plan: Optional[MultiplyPlan] = None,
    *,
    arena: Optional[ScratchArena] = None,
) -> Permutation:
    """``P_A ⊡ P_B`` by the allocation-lean bottom-up scheduler.

    Phase 1 materialises the H-ary split tree top-down (an explicit worklist,
    no Python recursion); phase 2 walks the nodes in reverse creation order —
    children always precede parents — solving leaves with the dense oracle
    and folding each internal node's children with pairwise staircase merges
    (a balanced fold: associativity of ``⊡`` makes the bracketing free).
    """
    plan = plan if plan is not None else MultiplyPlan()
    n = pa.size
    if pb.size != n:
        raise ValueError("operands must have the same size")
    if n == 0:
        return Permutation(np.empty(0, dtype=np.int64), validate=False)
    fanin = int(plan.fanin)
    leaf_cap = max(int(plan.base_size), fanin)
    arena = arena if arena is not None else ScratchArena()
    arena_grows0, arena_reuses0 = arena.grows, arena.reuses
    merge_count = 0

    # ---- phase 1: top-down H-ary split into an explicit node tree ---------
    # nodes[nid] = (row_map, col_map) into the parent's index space.
    node_maps: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None]
    children: List[List[int]] = [[]]
    leaf_inputs = {}
    pending = [(0, np.asarray(pa.row_to_col), np.asarray(pb.row_to_col))]
    while pending:
        nid, a, b = pending.pop()
        size = len(a)
        if size <= leaf_cap:
            leaf_inputs[nid] = (a, b)
            continue
        blocks = min(fanin, size)
        bounds = block_boundaries(size, blocks)
        for q in range(blocks):
            lo, hi = int(bounds[q]), int(bounds[q + 1])
            rows_q = np.flatnonzero((a >= lo) & (a < hi))
            local_a = a[rows_q] - lo
            cols_block = b[lo:hi]
            cols_sorted = np.sort(cols_block)
            local_b = np.searchsorted(cols_sorted, cols_block)
            cid = len(node_maps)
            node_maps.append((rows_q, cols_sorted))
            children.append([])
            children[nid].append(cid)
            pending.append((cid, local_a, local_b))

    # ---- phase 2: bottom-up merge (reverse creation order) ----------------
    products: List[Optional[_NodeProduct]] = [None] * len(node_maps)
    for nid in range(len(node_maps) - 1, -1, -1):
        if nid in leaf_inputs:
            a, b = leaf_inputs[nid]
            local = multiply_dense(
                Permutation(a, validate=False), Permutation(b, validate=False)
            )
            rtc = np.asarray(local.row_to_col, dtype=np.int64)
            ident = np.arange(len(rtc), dtype=np.int64)
            products[nid] = (ident, rtc, ident)
            continue
        parts: List[_NodeProduct] = []
        for cid in children[nid]:
            child_rows, child_cols, child_sorted = products[cid]
            products[cid] = None  # free as we go: one level resident at a time
            row_map, col_map = node_maps[cid]
            parts.append(
                (row_map[child_rows], col_map[child_cols], col_map[child_sorted])
            )
        while len(parts) > 1:
            merge_count += len(parts) // 2
            parts = [
                _merge_node_products(parts[i], parts[i + 1], arena)
                if i + 1 < len(parts)
                else parts[i]
                for i in range(0, len(parts), 2)
            ]
        products[nid] = parts[0]

    # One registry update per multiply keeps the hot loop untouched.
    _MULTIPLIES.inc()
    if merge_count:
        _MERGES.inc(merge_count)
    _LEAVES.inc(len(leaf_inputs))
    _ARENA_GROWS.inc(arena.grows - arena_grows0)
    _ARENA_REUSES.inc(arena.reuses - arena_reuses0)
    _ARENA_BYTES.set(arena.nbytes)

    rows, cols, _ = products[0]
    out = np.empty(n, dtype=np.int64)
    out[rows] = cols
    return Permutation(out, validate=False)


def multiply_permutations(
    pa: Permutation,
    pb: Permutation,
    *,
    fanin: Optional[int] = None,
    base_size: Optional[int] = None,
    plan: Optional[MultiplyPlan] = None,
) -> Permutation:
    """``P_A ⊡ P_B`` for full permutation matrices of equal size.

    Parameters
    ----------
    fanin:
        Number of subproblems ``H`` per level (the paper uses
        ``H = n^{(1-δ)/10}`` in the MPC setting; sequentially any ``H >= 2``
        is correct and exposed here for the fan-in ablation).  Overrides the
        plan's fan-in when given.
    base_size:
        Instances of at most this size are handed to the dense oracle
        (overrides the plan's crossover when given).
    plan:
        The full :class:`~repro.core.plan.MultiplyPlan` (engine selection and
        tuned knobs).  Defaults to the iterative engine's static defaults.
    """
    resolved = resolve_plan(plan, fanin=fanin, base_size=base_size)
    if resolved.engine == "reference":
        return multiply_permutations_reference(
            pa,
            pb,
            fanin=resolved.fanin,
            base_size=resolved.base_size,
            dense_table_limit=resolved.dense_table_limit,
        )
    return multiply_permutations_iterative(pa, pb, resolved)


# --------------------------------------------------------------------------
# Sub-permutation handling (paper Section 4.1, Theorem 1.2)
# --------------------------------------------------------------------------

@dataclass
class PaddingInfo:
    """Book-keeping needed to strip the Section 4.1 padding from a product."""

    kept_rows_a: np.ndarray  # rows of P_A that were nonzero
    kept_cols_b: np.ndarray  # columns of P_B that were nonzero
    n_rows: int  # original row count of P_A
    n_cols: int  # original column count of P_B
    inner: int  # n2, the padded square size
    num_kept_rows: int
    num_kept_cols: int


def pad_to_permutations(
    pa: SubPermutation, pb: SubPermutation
) -> Tuple[Permutation, Permutation, PaddingInfo]:
    """Pad sub-permutations to full ``n2 x n2`` permutations (paper §4.1)."""
    if pa.n_cols != pb.n_rows:
        raise ValueError(f"inner dimensions do not match: {pa.shape} x {pb.shape}")
    n2 = pa.n_cols

    # Drop zero rows of P_A and zero columns of P_B (they stay zero in P_C).
    kept_rows_a = pa.nonzero_rows()
    a_cols = np.asarray(pa.row_to_col)[kept_rows_a]
    kept_cols_b = pb.nonzero_cols()
    b_col_to_row = pb.col_to_row()
    b_rows = b_col_to_row[kept_cols_b]

    n1p = len(kept_rows_a)
    n3p = len(kept_cols_b)

    # Extend P_A with n2 - n1' rows in front, covering its empty columns
    # (boolean-mask scatter: the complement of a_cols without a sort/merge).
    occupied_a = np.zeros(n2, dtype=bool)
    occupied_a[a_cols] = True
    empty_cols_a = np.flatnonzero(~occupied_a)
    padded_a = np.concatenate([empty_cols_a, a_cols]).astype(np.int64)
    perm_a = Permutation(padded_a, validate=False)

    # Extend P_B with n2 - n3' columns at the back, covering its empty rows.
    padded_b = np.full(n2, EMPTY, dtype=np.int64)
    padded_b[b_rows] = np.arange(n3p, dtype=np.int64)
    empty_rows_b = np.flatnonzero(padded_b == EMPTY)
    padded_b[empty_rows_b] = n3p + np.arange(len(empty_rows_b), dtype=np.int64)
    perm_b = Permutation(padded_b, validate=False)

    info = PaddingInfo(
        kept_rows_a=kept_rows_a,
        kept_cols_b=kept_cols_b,
        n_rows=pa.n_rows,
        n_cols=pb.n_cols,
        inner=n2,
        num_kept_rows=n1p,
        num_kept_cols=n3p,
    )
    return perm_a, perm_b, info


def strip_padding(product: Permutation, info: PaddingInfo) -> SubPermutation:
    """Extract ``P_A ⊡ P_B`` from the padded product (paper §4.1)."""
    rows, cols = product.points()
    offset = info.inner - info.num_kept_rows
    mask = (rows >= offset) & (cols < info.num_kept_cols)
    out_rows = info.kept_rows_a[rows[mask] - offset]
    out_cols = info.kept_cols_b[cols[mask]]
    return SubPermutation.from_points(
        out_rows, out_cols, info.n_rows, info.n_cols, validate=True
    )


def multiply(
    pa: SubPermutation,
    pb: SubPermutation,
    *,
    fanin: Optional[int] = None,
    base_size: Optional[int] = None,
    plan: Optional[MultiplyPlan] = None,
) -> SubPermutation:
    """Implicit (sub)unit-Monge multiplication ``P_A ⊡ P_B`` (Theorems 1.1/1.2).

    Accepts arbitrary (possibly rectangular) sub-permutation matrices; full
    square permutations skip the padding step.  ``plan`` selects the engine
    and tuned knobs (see :class:`~repro.core.plan.MultiplyPlan`);
    ``fanin``/``base_size`` override individual plan fields.
    """
    if (
        isinstance(pa, SubPermutation)
        and isinstance(pb, SubPermutation)
        and pa.n_rows == pa.n_cols == pb.n_rows == pb.n_cols
        and pa.is_full_permutation()
        and pb.is_full_permutation()
    ):
        return multiply_permutations(
            pa.as_permutation(), pb.as_permutation(),
            fanin=fanin, base_size=base_size, plan=plan,
        )
    perm_a, perm_b, info = pad_to_permutations(pa, pb)
    product = multiply_permutations(
        perm_a, perm_b, fanin=fanin, base_size=base_size, plan=plan
    )
    return strip_padding(product, info)
