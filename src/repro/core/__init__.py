"""Core data structures and sequential algorithms of the seaweed framework."""

from .permutation import (
    EMPTY,
    Permutation,
    SubPermutation,
    identity_permutation,
    random_permutation,
    random_subpermutation,
)
from .dense import multiply_dense, minplus_distribution_product, is_distribution_matrix
from .combine import ColoredPointSet, combine_colored
from .plan import MultiplyPlan, auto_plan, resolve_plan
from .seaweed import (
    ScratchArena,
    multiply,
    multiply_permutations,
    multiply_permutations_iterative,
    multiply_permutations_reference,
)

__all__ = [
    "EMPTY",
    "Permutation",
    "SubPermutation",
    "identity_permutation",
    "random_permutation",
    "random_subpermutation",
    "multiply_dense",
    "minplus_distribution_product",
    "is_distribution_matrix",
    "ColoredPointSet",
    "combine_colored",
    "MultiplyPlan",
    "auto_plan",
    "resolve_plan",
    "ScratchArena",
    "multiply",
    "multiply_permutations",
    "multiply_permutations_iterative",
    "multiply_permutations_reference",
]
