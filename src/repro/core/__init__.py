"""Core data structures and sequential algorithms of the seaweed framework."""

from .permutation import (
    EMPTY,
    Permutation,
    SubPermutation,
    identity_permutation,
    random_permutation,
    random_subpermutation,
)
from .dense import multiply_dense, minplus_distribution_product, is_distribution_matrix
from .combine import ColoredPointSet, combine_colored
from .seaweed import multiply, multiply_permutations

__all__ = [
    "EMPTY",
    "Permutation",
    "SubPermutation",
    "identity_permutation",
    "random_permutation",
    "random_subpermutation",
    "multiply_dense",
    "minplus_distribution_product",
    "is_distribution_matrix",
    "ColoredPointSet",
    "combine_colored",
    "multiply",
    "multiply_permutations",
]
