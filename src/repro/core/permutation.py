"""Permutation and sub-permutation matrices in implicit (index) representation.

The paper (Section 2.1) represents an ``n x n`` (sub-)permutation matrix ``P``
as an array of size ``n`` where index ``i`` holds the column of the nonzero
element in row ``i + 1/2`` (rows and columns of the *matrix* live on
half-integers ``<0 : n>``), or a sentinel when the row is empty.

This module uses plain 0-based integer indices internally: a point in row
half-integer ``r + 1/2`` and column half-integer ``c + 1/2`` is stored as the
pair of integers ``(r, c)`` with ``0 <= r, c < n``.  The distribution matrix
(the associated unit-Monge matrix) follows the paper's convention

    ``P_sigma(i, j) = #{ (r, c) nonzero : r >= i, c < j }``

for integer corners ``0 <= i, j <= n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "EMPTY",
    "Permutation",
    "SubPermutation",
    "identity_permutation",
    "random_permutation",
    "random_subpermutation",
]

#: Sentinel used in a :class:`SubPermutation` row map for "this row is empty".
EMPTY = -1

IntArray = np.ndarray


def _as_int_array(values: Union[Sequence[int], np.ndarray]) -> IntArray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D index array, got shape {arr.shape}")
    return arr


class SubPermutation:
    """An ``n_rows x n_cols`` 0/1 matrix with at most one nonzero per row/column.

    Parameters
    ----------
    row_to_col:
        Array of length ``n_rows``; entry ``r`` is the column of the nonzero in
        row ``r`` or :data:`EMPTY` when the row has no nonzero.
    n_cols:
        Number of columns.  Defaults to ``len(row_to_col)`` (square matrix).
    validate:
        When true (default), verify the sub-permutation property.
    """

    __slots__ = ("_row_to_col", "_n_cols")

    def __init__(
        self,
        row_to_col: Union[Sequence[int], np.ndarray],
        n_cols: Optional[int] = None,
        *,
        validate: bool = True,
    ) -> None:
        arr = _as_int_array(row_to_col)
        self._row_to_col = arr
        self._n_cols = int(n_cols) if n_cols is not None else len(arr)
        if validate:
            self.validate()

    # ------------------------------------------------------------------ basic
    @property
    def n_rows(self) -> int:
        """Number of rows of the matrix."""
        return len(self._row_to_col)

    @property
    def n_cols(self) -> int:
        """Number of columns of the matrix."""
        return self._n_cols

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self._n_cols)

    @property
    def row_to_col(self) -> IntArray:
        """The underlying row-to-column index array (read-only view)."""
        view = self._row_to_col.view()
        view.flags.writeable = False
        return view

    @property
    def size(self) -> int:
        """``n`` for a square matrix; raises for non-square matrices."""
        if self.n_rows != self._n_cols:
            raise ValueError("size is only defined for square matrices")
        return self.n_rows

    def __len__(self) -> int:
        return self.n_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SubPermutation):
            return NotImplemented
        return (
            self._n_cols == other._n_cols
            and self.n_rows == other.n_rows
            and bool(np.array_equal(self._row_to_col, other._row_to_col))
        )

    def __hash__(self) -> int:
        return hash((self._n_cols, self._row_to_col.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(shape={self.shape}, "
            f"nonzeros={self.num_nonzeros})"
        )

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise :class:`ValueError` if this is not a valid sub-permutation."""
        arr = self._row_to_col
        filled = arr[arr != EMPTY]
        if filled.size and (filled.min() < 0 or filled.max() >= self._n_cols):
            raise ValueError("column index out of range")
        if np.any(arr < EMPTY):
            raise ValueError("negative column index (other than EMPTY sentinel)")
        if filled.size != np.unique(filled).size:
            raise ValueError("duplicate column index: not a sub-permutation")

    @property
    def nbytes(self) -> int:
        """Resident bytes of the implicit representation.

        The honest sizing hook used by the service cache and the streaming
        node store — byte budgets must reflect what is actually held.
        """
        return int(self._row_to_col.nbytes)

    # ------------------------------------------------------------------ points
    @property
    def num_nonzeros(self) -> int:
        """Number of nonzero entries."""
        return int(np.count_nonzero(self._row_to_col != EMPTY))

    def nonzero_rows(self) -> IntArray:
        """Rows that contain a nonzero entry, in increasing order."""
        return np.flatnonzero(self._row_to_col != EMPTY).astype(np.int64)

    def nonzero_cols(self) -> IntArray:
        """Columns that contain a nonzero entry, in increasing order."""
        cols = self._row_to_col[self._row_to_col != EMPTY]
        return np.sort(cols)

    def points(self) -> Tuple[IntArray, IntArray]:
        """Return ``(rows, cols)`` arrays of the nonzero entries (row-sorted)."""
        rows = self.nonzero_rows()
        return rows, self._row_to_col[rows]

    def iter_points(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(row, col)`` nonzero positions."""
        rows, cols = self.points()
        return zip(rows.tolist(), cols.tolist())

    # ------------------------------------------------------------ conversions
    def to_dense(self) -> np.ndarray:
        """Return the explicit 0/1 matrix (for tests and small inputs only)."""
        mat = np.zeros(self.shape, dtype=np.int64)
        rows, cols = self.points()
        mat[rows, cols] = 1
        return mat

    def col_to_row(self) -> IntArray:
        """Inverse map: for each column, the row of its nonzero or ``EMPTY``."""
        inv = np.full(self._n_cols, EMPTY, dtype=np.int64)
        rows, cols = self.points()
        inv[cols] = rows
        return inv

    def transpose(self) -> "SubPermutation":
        """The transposed sub-permutation (rows and columns swapped)."""
        return SubPermutation(self.col_to_row(), n_cols=self.n_rows, validate=False)

    # --------------------------------------------------------- Monge matrices
    def distribution_matrix(self) -> np.ndarray:
        """The (sub)unit-Monge distribution matrix ``P_sigma``.

        ``P_sigma(i, j) = #{nonzeros (r, c) : r >= i, c < j}`` for integer
        corners ``0 <= i <= n_rows`` and ``0 <= j <= n_cols``.  Quadratic
        memory; intended for testing and small instances.
        """
        rows, cols = self.points()
        cell = np.zeros((self.n_rows + 1, self._n_cols + 1), dtype=np.int64)
        if len(rows):
            np.add.at(cell, (rows, cols + 1), 1)
        # dist(i, j) = #points with row >= i and col < j: suffix-sum over rows
        # of the prefix-sum over columns of the cell indicator.
        prefix_cols = np.cumsum(cell, axis=1)
        dist = np.cumsum(prefix_cols[::-1, :], axis=0)[::-1, :]
        return dist

    def distribution_at(self, i: int, j: int) -> int:
        """Evaluate ``P_sigma(i, j)`` at a single corner in O(nnz) time."""
        rows, cols = self.points()
        return int(np.count_nonzero((rows >= i) & (cols < j)))

    # ------------------------------------------------------------ persistence
    def npz_payload(self, prefix: str = "") -> dict:
        """The arrays that fully describe this matrix, keyed for ``np.savez``.

        ``prefix`` namespaces the keys so callers can embed the payload inside
        a larger ``.npz`` archive (the service index cache does this).
        """
        return {
            f"{prefix}row_to_col": self._row_to_col,
            f"{prefix}n_cols": np.asarray(self._n_cols, dtype=np.int64),
        }

    @classmethod
    def from_npz_payload(cls, payload, prefix: str = "") -> "SubPermutation":
        """Rebuild a matrix from :meth:`npz_payload` arrays (inverse op)."""
        try:
            row_to_col = payload[f"{prefix}row_to_col"]
            n_cols = payload[f"{prefix}n_cols"]
        except KeyError as exc:
            raise ValueError(f"npz payload is missing sub-permutation key {exc}") from None
        return cls(np.asarray(row_to_col, dtype=np.int64), n_cols=int(n_cols), validate=True)

    def save_npz(self, path: str) -> None:
        """Persist the matrix to a compressed ``.npz`` file."""
        np.savez_compressed(path, **self.npz_payload())

    @classmethod
    def load_npz(cls, path: str) -> "SubPermutation":
        """Load a matrix written by :meth:`save_npz` (validates on load)."""
        with np.load(path) as payload:
            return cls.from_npz_payload(payload)

    # ----------------------------------------------------------- construction
    @classmethod
    def from_points(
        cls,
        rows: Union[Sequence[int], np.ndarray],
        cols: Union[Sequence[int], np.ndarray],
        n_rows: int,
        n_cols: Optional[int] = None,
        *,
        validate: bool = True,
    ) -> "SubPermutation":
        """Build a sub-permutation from parallel arrays of point coordinates."""
        rows_arr = _as_int_array(rows)
        cols_arr = _as_int_array(cols)
        if rows_arr.shape != cols_arr.shape:
            raise ValueError("rows and cols must have the same length")
        if n_cols is None:
            n_cols = n_rows
        mapping = np.full(n_rows, EMPTY, dtype=np.int64)
        if validate and rows_arr.size:
            if rows_arr.min() < 0 or rows_arr.max() >= n_rows:
                raise ValueError("row index out of range")
            if np.unique(rows_arr).size != rows_arr.size:
                raise ValueError("duplicate row index")
        mapping[rows_arr] = cols_arr
        return cls(mapping, n_cols=n_cols, validate=validate)

    @classmethod
    def empty(cls, n_rows: int, n_cols: Optional[int] = None) -> "SubPermutation":
        """The all-zero sub-permutation of the given shape."""
        return cls(
            np.full(n_rows, EMPTY, dtype=np.int64),
            n_cols=n_cols if n_cols is not None else n_rows,
            validate=False,
        )

    def is_full_permutation(self) -> bool:
        """True when every row and every column has exactly one nonzero."""
        return (
            self.n_rows == self._n_cols
            and self.num_nonzeros == self.n_rows
        )

    def as_permutation(self) -> "Permutation":
        """Reinterpret as a full :class:`Permutation` (raises if not full)."""
        if not self.is_full_permutation():
            raise ValueError("not a full permutation matrix")
        return Permutation(self._row_to_col, validate=False)


class Permutation(SubPermutation):
    """An ``n x n`` permutation matrix (exactly one nonzero per row/column)."""

    def __init__(
        self,
        row_to_col: Union[Sequence[int], np.ndarray],
        *,
        validate: bool = True,
    ) -> None:
        arr = _as_int_array(row_to_col)
        super().__init__(arr, n_cols=len(arr), validate=False)
        if validate:
            self.validate()

    def validate(self) -> None:
        arr = self._row_to_col
        n = len(arr)
        if n and (arr.min() < 0 or arr.max() >= n):
            raise ValueError("column index out of range for a permutation")
        if np.unique(arr).size != n:
            raise ValueError("duplicate column index: not a permutation")

    def inverse(self) -> "Permutation":
        """The inverse permutation (equals the transpose of the matrix)."""
        inv = np.empty_like(self._row_to_col)
        inv[self._row_to_col] = np.arange(len(self._row_to_col), dtype=np.int64)
        return Permutation(inv, validate=False)

    def transpose(self) -> "Permutation":
        return self.inverse()

    def compose(self, other: "Permutation") -> "Permutation":
        """Ordinary permutation composition ``self o other`` (not ⊡)."""
        if len(self) != len(other):
            raise ValueError("size mismatch")
        return Permutation(self._row_to_col[other._row_to_col], validate=False)


def identity_permutation(n: int) -> Permutation:
    """The identity permutation matrix of size ``n``."""
    return Permutation(np.arange(n, dtype=np.int64), validate=False)


def random_permutation(n: int, rng: Optional[np.random.Generator] = None) -> Permutation:
    """A uniformly random permutation matrix of size ``n``."""
    rng = rng if rng is not None else np.random.default_rng()
    return Permutation(rng.permutation(n).astype(np.int64), validate=False)


def random_subpermutation(
    n_rows: int,
    n_cols: int,
    num_points: int,
    rng: Optional[np.random.Generator] = None,
) -> SubPermutation:
    """A random sub-permutation with exactly ``num_points`` nonzeros."""
    rng = rng if rng is not None else np.random.default_rng()
    if num_points > min(n_rows, n_cols):
        raise ValueError("num_points exceeds min(n_rows, n_cols)")
    rows = np.sort(rng.choice(n_rows, size=num_points, replace=False))
    cols = rng.choice(n_cols, size=num_points, replace=False)
    return SubPermutation.from_points(rows, cols, n_rows, n_cols)
