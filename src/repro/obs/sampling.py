"""Head+tail adaptive trace sampling for the serving tier.

Tracing every batch is fine at hundreds of QPS but unsustainable beyond
~10k: the ring buffer churns, and the interesting traces (the tail) are
evicted by a flood of boring ones.  The sampler splits the decision:

**Head sampling** happens when the trace is minted: a deterministic hash of
the trace ID against ``head_rate``.  Deterministic-by-ID means every
process that sees the same trace ID reaches the same decision — no
coordination, and a downstream shard worker can recompute the decision
locally (the same property :class:`~repro.service.sharding.ConsistentHashRing`
leans on for routing).

**Tail retention** happens when the trace *completes*: a trace that lost
the head lottery is still kept if its end-to-end latency crosses the
per-route threshold — the larger of an absolute floor
(``tail_min_seconds``) and an adaptive per-route quantile
(``tail_quantile`` over every completed duration seen for that route, once
``warmup`` observations exist).  So a p99.9 outlier is never lost to a 1%
head rate, which is the entire point of sampling by tail.

Every decision is visible: ``repro_traces_sampled_total{decision=...}``,
``repro_traces_dropped_total`` and the ``repro_trace_ring_occupancy``
gauge make the ring buffer's behaviour itself observable.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, Optional, Tuple

from .metrics import get_registry, histogram_quantile, log_buckets

__all__ = ["TraceSampler", "head_decision"]

_SAMPLED = get_registry().counter(
    "repro_traces_sampled_total",
    "Completed traces retained by the sampler, by decision (head|tail)",
    ("decision",),
)
_DROPPED = get_registry().counter(
    "repro_traces_dropped_total",
    "Completed traces dropped by the sampler (lost the head lottery, under the tail threshold)",
)
_RING_OCCUPANCY = get_registry().gauge(
    "repro_trace_ring_occupancy",
    "Completed traces currently retained in the tracer ring buffer",
)

#: The head decision compares the top 64 bits of SHA-256(trace_id) against
#: ``head_rate * 2**64`` — uniform, stable across processes and Python
#: versions (unlike ``hash()``, which is salted per process).
_HEAD_DENOMINATOR = float(2**64)

#: Duration buckets for the adaptive per-route threshold: the same
#: 10 µs … ~84 s factor-2 grid every latency histogram uses, so the
#: threshold quantile is comparable with ``repro_http_request_seconds``.
_TAIL_BOUNDS = log_buckets()


def head_decision(trace_id: str, rate: float) -> bool:
    """The deterministic head-sampling verdict for one trace ID.

    Same ``(trace_id, rate)`` → same answer in every process; raising the
    rate only ever *adds* traces (the kept set at rate r is a subset of the
    kept set at any r' > r).
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.sha256(trace_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") < rate * _HEAD_DENOMINATOR


class TraceSampler:
    """Head+tail sampling policy plus the counters that make it observable.

    Parameters
    ----------
    head_rate:
        Fraction of traces kept unconditionally (1.0 = trace-everything,
        the pre-sampler behaviour).
    tail_quantile:
        Per-route duration quantile above which a completed trace is always
        retained, once ``warmup`` durations have been seen for the route.
    tail_min_seconds:
        Absolute floor: any trace at least this slow is retained regardless
        of warmup.  ``None`` disables the floor (quantile only).
    warmup:
        Completed traces per route before the adaptive quantile threshold
        engages — a quantile over three samples is noise, not a threshold.
    """

    def __init__(
        self,
        head_rate: float = 1.0,
        *,
        tail_quantile: float = 0.99,
        tail_min_seconds: Optional[float] = None,
        warmup: int = 64,
    ) -> None:
        if not 0.0 <= head_rate <= 1.0:
            raise ValueError(f"head_rate must be in [0, 1], got {head_rate}")
        if not 0.0 < tail_quantile < 1.0:
            raise ValueError(f"tail_quantile must be in (0, 1), got {tail_quantile}")
        if tail_min_seconds is not None and tail_min_seconds < 0:
            raise ValueError(f"tail_min_seconds must be >= 0, got {tail_min_seconds}")
        if warmup < 1:
            raise ValueError(f"warmup must be positive, got {warmup}")
        self.head_rate = float(head_rate)
        self.tail_quantile = float(tail_quantile)
        self.tail_min_seconds = None if tail_min_seconds is None else float(tail_min_seconds)
        self.warmup = int(warmup)
        self._lock = threading.Lock()
        # route -> per-bucket duration counts (non-cumulative, like Histogram)
        self._route_counts: Dict[str, list] = {}
        self._route_totals: Dict[str, int] = {}

    # ------------------------------------------------------------------ head
    def head_decision(self, trace_id: str) -> bool:
        return head_decision(trace_id, self.head_rate)

    # ------------------------------------------------------------------ tail
    def tail_threshold(self, route: str) -> Optional[float]:
        """The current retention threshold (seconds) for ``route``.

        The larger of the absolute floor and the adaptive quantile; ``None``
        while neither is available (no floor configured, route not warm).
        """
        with self._lock:
            total = self._route_totals.get(route, 0)
            counts = list(self._route_counts.get(route, ()))
        adaptive = None
        if total >= self.warmup:
            adaptive = histogram_quantile(self.tail_quantile, _TAIL_BOUNDS, counts)
        if self.tail_min_seconds is None:
            return adaptive
        if adaptive is None:
            return self.tail_min_seconds
        return max(self.tail_min_seconds, adaptive)

    def _observe(self, route: str, duration: float) -> None:
        lo, hi = 0, len(_TAIL_BOUNDS)
        while lo < hi:
            mid = (lo + hi) // 2
            if duration <= _TAIL_BOUNDS[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            counts = self._route_counts.get(route)
            if counts is None:
                counts = self._route_counts[route] = [0] * (len(_TAIL_BOUNDS) + 1)
            counts[lo] += 1
            self._route_totals[route] = self._route_totals.get(route, 0) + 1

    # -------------------------------------------------------------- decision
    def decide(
        self, route: str, duration: float, head_sampled: bool
    ) -> Tuple[bool, Optional[str]]:
        """Retention verdict for one completed trace: ``(keep, decision)``.

        ``decision`` is ``"head"`` or ``"tail"`` when kept, ``None`` when
        dropped.  Every completed duration feeds the route's adaptive
        threshold — dropped traces included, or the quantile would drift
        toward the retained (biased) population.
        """
        duration = float(duration)
        threshold = self.tail_threshold(route)
        self._observe(route, duration)
        if head_sampled:
            _SAMPLED.inc(decision="head")
            return True, "head"
        if threshold is not None and duration >= threshold:
            _SAMPLED.inc(decision="tail")
            return True, "tail"
        _DROPPED.inc()
        return False, None

    def note_ring_size(self, retained: int) -> None:
        """Publish the ring buffer's occupancy (called by the tracer)."""
        _RING_OCCUPANCY.set(retained)

    # ----------------------------------------------------------------- intro
    def config(self) -> Dict[str, Any]:
        """The policy, as served under ``/stats`` and ``/debug/traces``."""
        return {
            "head_rate": self.head_rate,
            "tail_quantile": self.tail_quantile,
            "tail_min_seconds": self.tail_min_seconds,
            "warmup": self.warmup,
        }

    def route_state(self) -> Dict[str, Dict[str, Any]]:
        """Per-route observation counts and current thresholds (debugging)."""
        with self._lock:
            routes = list(self._route_totals)
        return {
            route: {
                "observed": self._route_totals.get(route, 0),
                "threshold_seconds": self.tail_threshold(route),
            }
            for route in routes
        }
