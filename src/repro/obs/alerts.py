"""Deduplicated SLO alert emission: burn-rate verdicts → operator signals.

The :class:`~repro.obs.slo.SLOEngine` produces a *stateless* verdict per
evaluation ("this objective is paging right now").  Feeding that straight
to an operator channel would page once per evaluation tick.  The
:class:`AlertEmitter` sits between the two and owns the alerting
*state machine*:

- an alert is emitted when an objective's severity **changes**
  (``ok → page``, ``page → ticket``, ``ticket → ok``, …) — recoveries are
  first-class ``resolved`` events, emitted exactly once;
- while the severity holds steady, re-emission is suppressed until
  ``cooldown_seconds`` has elapsed since the last emission (a periodic
  reminder, not a flood);
- every emission is a structured JSON log line on the
  ``repro.obs.alerts`` logger and, when ``webhook_url`` is set, a
  best-effort ``POST`` of the same document (stdlib ``urllib`` only;
  webhook failures are counted, never raised).

The clock is injectable so cooldown behaviour is testable without
sleeping, and :meth:`AlertEmitter.consume` returns the list of alerts it
emitted so tests and callers can assert on them directly.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .metrics import get_registry

__all__ = ["AlertEmitter", "ALERT_SCHEMA_ID"]

ALERT_SCHEMA_ID = "repro.server.alert"
ALERT_SCHEMA_VERSION = 1

_ALERTS = get_registry().counter(
    "repro_slo_alerts_total",
    "SLO alerts emitted, by objective and severity",
    ("objective", "severity"),
)

logger = logging.getLogger("repro.obs.alerts")


class AlertEmitter:
    """Turns SLO evaluation documents into deduplicated alert events.

    Parameters
    ----------
    cooldown_seconds:
        Minimum spacing between two emissions for the *same* objective at
        the *same* severity.  Transitions always emit immediately.
    webhook_url:
        Optional HTTP(S) endpoint; each alert document is POSTed as JSON.
        Failures increment ``webhook_errors`` and are otherwise swallowed —
        alerting must never take the server down.
    sink:
        Override for the structured-log side channel (tests).  Defaults to
        an ``INFO``/``WARNING`` line on the ``repro.obs.alerts`` logger.
    clock:
        Injectable time source for the cooldown arithmetic.
    """

    def __init__(
        self,
        *,
        cooldown_seconds: float = 300.0,
        webhook_url: Optional[str] = None,
        webhook_timeout_seconds: float = 2.0,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if cooldown_seconds < 0:
            raise ValueError(f"cooldown_seconds must be >= 0, got {cooldown_seconds}")
        self.cooldown_seconds = float(cooldown_seconds)
        self.webhook_url = webhook_url
        self.webhook_timeout_seconds = float(webhook_timeout_seconds)
        self._sink = sink if sink is not None else self._log_sink
        self._clock = clock
        self._lock = threading.Lock()
        #: objective name -> (last emitted severity, emission timestamp).
        self._last: Dict[str, Tuple[str, float]] = {}
        self.emitted_total = 0
        self.suppressed_total = 0
        self.webhook_errors = 0

    # -------------------------------------------------------------- emission
    @staticmethod
    def _log_sink(alert: Dict[str, Any]) -> None:
        line = json.dumps(alert, sort_keys=True)
        if alert["severity"] == "ok":
            logger.info(line)
        else:
            logger.warning(line)

    def _post_webhook(self, alert: Dict[str, Any]) -> None:
        if self.webhook_url is None:
            return
        body = json.dumps(alert).encode("utf-8")
        request = urllib.request.Request(
            self.webhook_url,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.webhook_timeout_seconds
            ):
                pass
        except (urllib.error.URLError, OSError, ValueError):
            with self._lock:
                self.webhook_errors += 1

    def consume(self, slo_document: Mapping[str, Any]) -> List[Dict[str, Any]]:
        """Process one :meth:`SLOEngine.evaluate` document; emit what's due.

        Returns the alerts actually emitted (possibly empty).  An objective
        that has never been non-``ok`` emits nothing — ``resolved`` events
        only follow a real alert.
        """
        now = self._clock()
        emitted: List[Dict[str, Any]] = []
        for objective in slo_document.get("objectives", []):
            name = str(objective.get("name", ""))
            alerts = objective.get("alerts") or {}
            severity = str(alerts.get("severity", "ok"))
            with self._lock:
                previous = self._last.get(name)
                if previous is None:
                    if severity == "ok":
                        # Healthy from the start: nothing to say (and no
                        # state to keep — a later page still transitions).
                        continue
                    event = "fired"
                elif severity != previous[0]:
                    event = "resolved" if severity == "ok" else "fired"
                elif severity == "ok":
                    # Steady-state healthy after a resolve: stay quiet.
                    continue
                elif now - previous[1] < self.cooldown_seconds:
                    self.suppressed_total += 1
                    continue
                else:
                    event = "reminder"
                self._last[name] = (severity, now)
                self.emitted_total += 1
            windows = objective.get("windows") or {}
            alert = {
                "schema": ALERT_SCHEMA_ID,
                "version": ALERT_SCHEMA_VERSION,
                "event": event,
                "objective": name,
                "severity": severity,
                "previous_severity": previous[0] if previous else "ok",
                "now_unix": now,
                "burn_rates": {
                    window: data.get("burn_rate")
                    for window, data in windows.items()
                },
            }
            _ALERTS.inc(objective=name, severity=severity)
            self._sink(alert)
            self._post_webhook(alert)
            emitted.append(alert)
        return emitted

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "cooldown_seconds": self.cooldown_seconds,
                "webhook": bool(self.webhook_url),
                "emitted": self.emitted_total,
                "suppressed": self.suppressed_total,
                "webhook_errors": self.webhook_errors,
                "active": {
                    name: severity
                    for name, (severity, _) in self._last.items()
                    if severity != "ok"
                },
            }
