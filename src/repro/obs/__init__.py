"""repro.obs — the stdlib-only observability layer.

Three cooperating pieces, threaded through every serving layer:

* :mod:`repro.obs.metrics` — a process-local, thread-safe registry of
  counters, gauges and fixed-log-bucket histograms with Prometheus text
  exposition.  Registries never talk across processes themselves; instead
  each process snapshots its own registry (a plain picklable dict) and the
  :class:`~repro.service.sharding.ShardRouter` merges worker snapshots over
  the existing pipe protocol.
* :mod:`repro.obs.trace` — span-based per-request tracing: trace IDs minted
  at the HTTP edge, propagated through coalescing, routing and index builds
  via a :mod:`contextvars` context, collected into a bounded ring buffer and
  exportable as Chrome trace-event JSON; spans carry timestamped *events*
  (cache spill/load, shard restart, coalesce merge).
* :mod:`repro.obs.sampling` — the head+tail adaptive trace sampler:
  deterministic hash-based head sampling plus per-route tail-latency
  retention, with every decision exposed as metrics.
* :mod:`repro.obs.slo` — declarative SLOs (availability,
  latency-under-threshold) evaluated from registry snapshots with
  multi-window burn rates (Google SRE workbook style); the window history
  optionally persists to a JSONL file so burn rates survive restarts.
* :mod:`repro.obs.alerts` — the deduplicated alert emitter: SLO verdicts
  become structured log lines (and optional webhook POSTs) on severity
  *transitions*, with per-objective cooldown instead of per-tick spam.
* :mod:`repro.obs.report` — ``python -m repro report``: renders scaling
  curves, latency histograms, cache hit-rate tables and perf-over-commits
  trend tables from recorded ``results/*.json`` artifacts (matplotlib when
  available, ASCII always), plus the ``--capacity`` planning mode and the
  ``--slo`` burn-rate section.

``metrics`` and ``trace`` import nothing from the rest of the package so the
innermost layers (``core.seaweed``, ``service.cache``) can instrument
themselves without import cycles; ``sampling`` and ``slo`` build on
``metrics`` only; ``report`` is imported lazily by the CLI.
"""

from . import alerts, metrics, sampling, slo, trace
from .alerts import AlertEmitter
from .metrics import MetricsRegistry, get_registry
from .sampling import TraceSampler
from .slo import SLOEngine, SLObjective
from .trace import Tracer, current_trace_id, span, span_event

__all__ = [
    "alerts",
    "metrics",
    "sampling",
    "slo",
    "trace",
    "AlertEmitter",
    "MetricsRegistry",
    "get_registry",
    "TraceSampler",
    "SLOEngine",
    "SLObjective",
    "Tracer",
    "current_trace_id",
    "span",
    "span_event",
]
