"""repro.obs — the stdlib-only observability layer.

Three cooperating pieces, threaded through every serving layer:

* :mod:`repro.obs.metrics` — a process-local, thread-safe registry of
  counters, gauges and fixed-log-bucket histograms with Prometheus text
  exposition.  Registries never talk across processes themselves; instead
  each process snapshots its own registry (a plain picklable dict) and the
  :class:`~repro.service.sharding.ShardRouter` merges worker snapshots over
  the existing pipe protocol.
* :mod:`repro.obs.trace` — span-based per-request tracing: trace IDs minted
  at the HTTP edge, propagated through coalescing, routing and index builds
  via a :mod:`contextvars` context, collected into a bounded ring buffer and
  exportable as Chrome trace-event JSON.
* :mod:`repro.obs.report` — ``python -m repro report``: renders scaling
  curves, latency histograms, cache hit-rate tables and perf-over-commits
  trend tables from recorded ``results/*.json`` artifacts (matplotlib when
  available, ASCII always), plus the ``--capacity`` planning mode.

``metrics`` and ``trace`` import nothing from the rest of the package so the
innermost layers (``core.seaweed``, ``service.cache``) can instrument
themselves without import cycles; ``report`` is imported lazily by the CLI.
"""

from . import metrics, trace
from .metrics import MetricsRegistry, get_registry
from .trace import Tracer, current_trace_id, span

__all__ = [
    "metrics",
    "trace",
    "MetricsRegistry",
    "get_registry",
    "Tracer",
    "current_trace_id",
    "span",
]
