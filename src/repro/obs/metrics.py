"""Process-local metrics: counters, gauges, fixed-log-bucket histograms.

Design constraints, in order:

1. **Stdlib only.**  No prometheus_client; the exposition format is the
   plain-text Prometheus format rendered by :func:`render_prometheus`.
2. **Cheap on the hot path.**  One ``inc``/``observe`` is a dict update
   under a registry-wide lock — microseconds, nothing the perf gate can see.
3. **Process-safe by snapshot, not by shared memory.**  A registry is
   process-local.  :meth:`MetricsRegistry.snapshot` produces a plain,
   picklable, JSON-safe dict; :func:`merge_snapshots` folds any number of
   snapshots (sum for counters and histogram buckets, sum for gauges — a
   merged gauge reads as a fleet total) and :func:`relabel_snapshot` stamps
   a snapshot with extra labels (the shard router stamps each worker's
   snapshot with ``shard="i"`` before merging, so per-shard series survive
   the merge).

The module-level default registry (:func:`get_registry`) is what the
instrumented subsystems record into; every process — the server process and
each shard worker — has its own.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "get_registry",
    "log_buckets",
    "histogram_quantile",
    "merge_snapshots",
    "relabel_snapshot",
    "gauge_fragment",
    "render_prometheus",
    "parse_prometheus_text",
    "parse_exemplars",
    "exemplars_from_snapshot",
]


def log_buckets(start: float = 1e-5, factor: float = 2.0, count: int = 24) -> Tuple[float, ...]:
    """``count`` fixed log-spaced upper bounds: ``start * factor**k``.

    The default covers 10 µs … ~84 s with factor-2 resolution — wide enough
    for both a warm vectorised query pass and a cold n=16384 index build.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError(f"invalid log bucket spec ({start}, {factor}, {count})")
    return tuple(start * factor**k for k in range(count))


#: Default latency buckets shared by every timing histogram, so quantiles
#: stay comparable across subsystems (and mergeable across processes).
DEFAULT_TIME_BUCKETS = log_buckets()


def _label_key(labelnames: Sequence[str], labels: Mapping[str, Any]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared labelnames {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Common state of one named metric family (samples keyed by labels)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str], lock: threading.Lock):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._samples: Dict[Tuple[str, ...], Any] = {}

    def _snapshot_samples(self) -> List[List[Any]]:
        return [[list(key), value] for key, value in self._samples.items()]


class Counter(_Metric):
    """A monotonically increasing sum."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._samples.get(_label_key(self.labelnames, labels), 0)


class Gauge(_Metric):
    """A value that can go up and down (set wins; merge sums across processes)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._samples[key] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._samples.get(_label_key(self.labelnames, labels), 0.0)


class Histogram(_Metric):
    """Fixed-log-bucket histogram (cumulative exposition, mergeable counts).

    ``bounds`` are the finite upper bucket edges; an implicit ``+Inf``
    bucket catches the overflow.  Internally counts are stored
    *per-bucket* (not cumulative) so merging is a plain element-wise sum;
    :func:`render_prometheus` cumulates at exposition time, as the format
    requires.

    An ``observe`` may carry an **exemplar** — a trace ID linking the
    observation back to its retained trace.  Each bucket remembers the most
    recent exemplar (``{"trace_id", "value", "ts"}``); snapshots carry them,
    merges keep the latest by wall-clock timestamp, and
    :func:`render_prometheus` exposes them as OpenMetrics-style
    ``# {trace_id="..."} value ts`` annotations on the ``_bucket`` lines.
    """

    kind = "histogram"

    def __init__(self, name, help_text, labelnames, lock, bounds: Sequence[float]):
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} needs strictly increasing bounds")
        self.bounds = bounds

    def observe(self, value: float, exemplar: Optional[str] = None, **labels: Any) -> None:
        value = float(value)
        key = _label_key(self.labelnames, labels)
        # Binary search for the first bound >= value (index == len(bounds)
        # means the +Inf bucket).
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = {"counts": [0] * (len(self.bounds) + 1), "sum": 0.0, "count": 0}
                self._samples[key] = sample
            sample["counts"][lo] += 1
            sample["sum"] += value
            sample["count"] += 1
            if exemplar is not None:
                # Keyed by str(bucket index) so the snapshot shape survives a
                # JSON round-trip unchanged (JSON object keys are strings).
                exemplars = sample.setdefault("exemplars", {})
                exemplars[str(lo)] = {
                    "trace_id": str(exemplar),
                    "value": value,
                    "ts": time.time(),
                }

    def sample(self, **labels: Any) -> Optional[Dict[str, Any]]:
        with self._lock:
            found = self._samples.get(_label_key(self.labelnames, labels))
            if found is None:
                return None
            return {"counts": list(found["counts"]), "sum": found["sum"], "count": found["count"]}

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        found = self.sample(**labels)
        if found is None or found["count"] == 0:
            return None
        return histogram_quantile(q, self.bounds, found["counts"])

    def _snapshot_samples(self) -> List[List[Any]]:
        out = []
        for key, v in self._samples.items():
            value = {"counts": list(v["counts"]), "sum": v["sum"], "count": v["count"]}
            if v.get("exemplars"):
                value["exemplars"] = {
                    bucket: dict(ex) for bucket, ex in v["exemplars"].items()
                }
            out.append([list(key), value])
        return out


def histogram_quantile(q: float, bounds: Sequence[float], counts: Sequence[int]) -> float:
    """The q-quantile (0..1) implied by per-bucket counts, linearly interpolated.

    Within the bucket containing the target rank the mass is assumed uniform
    between the bucket's edges (lower edge 0 for the first bucket), which is
    the standard Prometheus ``histogram_quantile`` estimator — so the answer
    is exact up to one bucket width.  The ``+Inf`` bucket degrades to the
    last finite bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            if index >= len(bounds):  # +Inf bucket: no upper edge to lerp to
                return float(bounds[-1])
            lo = float(bounds[index - 1]) if index > 0 else 0.0
            hi = float(bounds[index])
            inside = max(0.0, rank - seen)
            return lo + (hi - lo) * (inside / count)
        seen += count
    return float(bounds[-1])


class MetricsRegistry:
    """A process-local, thread-safe collection of named metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: instrumenting
    modules call them at import time and every call site in the process
    shares one metric object.  ``collectors`` are zero-argument callables
    returning snapshot fragments, evaluated at :meth:`snapshot` time — used
    for values that already live elsewhere (e.g. the shard router's
    per-worker routing counters), so the exposition *reconciles exactly*
    with ``/stats`` instead of drifting in a parallel count.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Callable[[], Dict[str, Any]]] = []

    # -------------------------------------------------------------- creation
    def _get_or_create(self, cls, name: str, help_text: str, labelnames, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with a different "
                        f"type/labelset ({existing.kind}, {existing.labelnames})"
                    )
                return existing
            metric = cls(name, help_text, tuple(labelnames), self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labelnames, bounds=bounds)

    def register_collector(self, collector: Callable[[], Dict[str, Any]]) -> None:
        with self._lock:
            self._collectors.append(collector)

    def unregister_collector(self, collector: Callable[[], Dict[str, Any]]) -> None:
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def reset(self) -> None:
        """Zero every metric in place and drop all collectors (fork hygiene).

        A forked child inherits a byte-copy of this registry — live counter
        values and the parent's registered collectors included, which would
        double-count once the child's snapshot is merged back into the
        parent's exposition.  Clearing the sample *values* (not the metric
        objects) keeps every module-level metric reference valid while the
        child's counts start from zero.
        """
        with self._lock:
            for metric in self._metrics.values():
                metric._samples.clear()
            self._collectors.clear()

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, Any]:
        """A plain, picklable, JSON-safe view of every metric.

        Shape: ``{name: {"type", "help", "bounds"?, "samples": [[labels_kv,
        value], ...]}}`` where ``labels_kv`` is a ``[[name, value], ...]``
        list (JSON has no tuple keys) and histogram values are
        ``{"counts", "sum", "count"}`` dicts with *per-bucket* counts.
        """
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        out: Dict[str, Any] = {}
        for metric in metrics:
            entry: Dict[str, Any] = {"type": metric.kind, "help": metric.help, "samples": []}
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
            with self._lock:
                raw = metric._snapshot_samples()
            for key, value in raw:
                labels_kv = [[name, val] for name, val in zip(metric.labelnames, key)]
                entry["samples"].append([labels_kv, value])
            out[metric.name] = entry
        fragments = []
        for collector in collectors:
            try:
                fragments.append(collector())
            except Exception:  # noqa: BLE001 — a broken collector must not kill /metrics
                continue
        if fragments:
            out = merge_snapshots(out, *fragments)
        return out


# A fresh default registry per process: shard workers each get their own on
# fork/spawn, which is exactly the isolation the snapshot-merge model wants.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every subsystem instruments into."""
    return _REGISTRY


# ------------------------------------------------------------------ merging
def _merge_value(kind: str, a: Any, b: Any) -> Any:
    if kind == "histogram":
        if len(a["counts"]) != len(b["counts"]):
            raise ValueError("cannot merge histograms with different bucket counts")
        merged = {
            "counts": [x + y for x, y in zip(a["counts"], b["counts"])],
            "sum": a["sum"] + b["sum"],
            "count": a["count"] + b["count"],
        }
        exemplars = _merge_exemplars(a.get("exemplars"), b.get("exemplars"))
        if exemplars:
            merged["exemplars"] = exemplars
        return merged
    return a + b


def _merge_exemplars(a: Optional[Dict[str, Any]], b: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-bucket union keeping the most recent exemplar by timestamp."""
    merged: Dict[str, Any] = {bucket: dict(ex) for bucket, ex in (a or {}).items()}
    for bucket, ex in (b or {}).items():
        mine = merged.get(bucket)
        if mine is None or float(ex.get("ts", 0)) >= float(mine.get("ts", 0)):
            merged[bucket] = dict(ex)
    return merged


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Fold snapshots: same-name same-labels samples sum (all metric kinds).

    Summing gauges makes a merged gauge read as a fleet total (e.g. resident
    arena bytes across shard workers); per-process series that must stay
    distinguishable should be stamped with :func:`relabel_snapshot` first.
    """
    merged: Dict[str, Any] = {}
    for snap in snapshots:
        for name, entry in snap.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    "type": entry["type"],
                    "help": entry.get("help", ""),
                    "samples": [
                        [[list(kv) for kv in labels], _copy_value(entry["type"], value)]
                        for labels, value in entry["samples"]
                    ],
                }
                if "bounds" in entry:
                    merged[name]["bounds"] = list(entry["bounds"])
                continue
            if target["type"] != entry["type"]:
                raise ValueError(f"metric {name!r} has conflicting types across snapshots")
            index = {_labels_tuple(labels): i for i, (labels, _) in enumerate(target["samples"])}
            for labels, value in entry["samples"]:
                key = _labels_tuple(labels)
                if key in index:
                    slot = target["samples"][index[key]]
                    slot[1] = _merge_value(entry["type"], slot[1], value)
                else:
                    target["samples"].append([[list(kv) for kv in labels], _copy_value(entry["type"], value)])
    return merged


def _labels_tuple(labels_kv: Iterable[Sequence[Any]]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels_kv))


def _copy_value(kind: str, value: Any) -> Any:
    if kind == "histogram":
        copied = {"counts": list(value["counts"]), "sum": value["sum"], "count": value["count"]}
        if value.get("exemplars"):
            copied["exemplars"] = {b: dict(ex) for b, ex in value["exemplars"].items()}
        return copied
    return value


def relabel_snapshot(snapshot: Dict[str, Any], extra: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of ``snapshot`` with ``extra`` labels stamped onto every sample."""
    stamped = [[str(k), str(v)] for k, v in extra.items()]
    out: Dict[str, Any] = {}
    for name, entry in snapshot.items():
        copied = {
            "type": entry["type"],
            "help": entry.get("help", ""),
            "samples": [
                [[list(kv) for kv in labels] + [list(kv) for kv in stamped],
                 _copy_value(entry["type"], value)]
                for labels, value in entry["samples"]
            ],
        }
        if "bounds" in entry:
            copied["bounds"] = list(entry["bounds"])
        out[name] = copied
    return out


def gauge_fragment(
    name: str, value: float, help_text: str = "", labels: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """A one-gauge snapshot fragment (for point-in-time values like uptime)."""
    labels_kv = [[str(k), str(v)] for k, v in (labels or {}).items()]
    return {name: {"type": "gauge", "help": help_text, "samples": [[labels_kv, float(value)]]}}


# --------------------------------------------------------------- exposition
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels_kv: Sequence[Sequence[Any]], extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [(str(k), str(v)) for k, v in labels_kv] + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_number(value: Any) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a (merged) snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]
        if entry.get("help"):
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for labels_kv, value in entry["samples"]:
            if kind == "histogram":
                bounds = entry.get("bounds", ())
                exemplars = value.get("exemplars") or {}
                cumulative = 0
                for index, count in enumerate(value["counts"]):
                    cumulative += count
                    le = _format_number(bounds[index]) if index < len(bounds) else "+Inf"
                    line = f"{name}_bucket{_format_labels(labels_kv, (('le', le),))} {cumulative}"
                    ex = exemplars.get(str(index))
                    if ex is not None:
                        # OpenMetrics-style exemplar annotation: the most
                        # recent observation that landed in this bucket,
                        # linked to its trace.
                        line += (
                            f' # {{trace_id="{_escape_label(str(ex["trace_id"]))}"}}'
                            f' {repr(float(ex["value"]))} {repr(float(ex.get("ts", 0.0)))}'
                        )
                    lines.append(line)
                lines.append(f"{name}_sum{_format_labels(labels_kv)} {repr(float(value['sum']))}")
                lines.append(f"{name}_count{_format_labels(labels_kv)} {value['count']}")
            else:
                lines.append(f"{name}{_format_labels(labels_kv)} {_format_number(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse exposition text back into ``{series: {sorted_labels: value}}``.

    Deliberately minimal (no timestamps) — enough for the round-trip test
    and for smoke scripts to assert series presence and counter
    monotonicity without third-party clients.  Exemplar annotations
    (``... # {trace_id="..."} value ts``) are stripped before label
    parsing; :func:`parse_exemplars` reads them instead.  A label *value*
    containing the literal `` # {`` sequence would defeat the stripping —
    no series this repo emits does.
    """
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if " # {" in line:
            line = line[: line.index(" # {")].rstrip()
        if "}" in line:
            # Split on the LAST "}" — label values may contain braces (e.g.
            # the normalised route label "/builds/{token}").
            head, _, tail = line.rpartition("}")
            series, _, labels_raw = head.partition("{")
            value_text = tail.strip()
            labels: List[Tuple[str, str]] = []
            for item in _split_labels(labels_raw):
                key, _, raw = item.partition("=")
                labels.append((key.strip(), raw.strip().strip('"')))
            key_tuple = tuple(sorted(labels))
        else:
            series, _, value_text = line.partition(" ")
            key_tuple = ()
        out.setdefault(series.strip(), {})[key_tuple] = float(value_text)
    return out


def parse_exemplars(text: str) -> List[Dict[str, Any]]:
    """Extract the exemplar annotations from exposition text.

    Returns one record per annotated ``_bucket`` line:
    ``{"series", "labels", "trace_id", "value", "ts"}`` where ``labels`` is
    the sorted label tuple of the carrying sample (including ``le``).  The
    counterpart of the stripping in :func:`parse_prometheus_text`, so smoke
    scripts can assert that exposed exemplars parse and resolve.
    """
    out: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#") or " # {" not in line:
            continue
        head, _, annotation = line.partition(" # {")
        exemplar_raw, _, tail = annotation.partition("}")
        tail_parts = tail.split()
        if not tail_parts:
            continue
        exemplar_labels: Dict[str, str] = {}
        for item in _split_labels(exemplar_raw):
            key, _, raw = item.partition("=")
            exemplar_labels[key.strip()] = raw.strip().strip('"')
        series_head, _, _value_text = head.rpartition(" ")
        if "}" in series_head:
            body, _, _ = series_head.rpartition("}")
            series, _, labels_raw = body.partition("{")
            labels = []
            for item in _split_labels(labels_raw):
                key, _, raw = item.partition("=")
                labels.append((key.strip(), raw.strip().strip('"')))
            key_tuple = tuple(sorted(labels))
        else:
            series, key_tuple = series_head, ()
        out.append(
            {
                "series": series.strip(),
                "labels": key_tuple,
                "trace_id": exemplar_labels.get("trace_id", ""),
                "value": float(tail_parts[0]),
                "ts": float(tail_parts[1]) if len(tail_parts) > 1 else 0.0,
            }
        )
    return out


def exemplars_from_snapshot(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Flatten a (merged) snapshot's histogram exemplars into records.

    Shape per record: ``{"metric", "labels", "bucket_le", "trace_id",
    "value", "ts"}`` — what ``GET /debug/exemplars`` serves, so a p99
    outlier links to its span tree without scraping the text format.
    """
    out: List[Dict[str, Any]] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry.get("type") != "histogram":
            continue
        bounds = entry.get("bounds", [])
        for labels_kv, value in entry.get("samples", []):
            for bucket, ex in sorted((value.get("exemplars") or {}).items(), key=lambda kv: int(kv[0])):
                index = int(bucket)
                out.append(
                    {
                        "metric": name,
                        "labels": {str(k): str(v) for k, v in labels_kv},
                        "bucket_le": float(bounds[index]) if index < len(bounds) else None,
                        "trace_id": ex.get("trace_id", ""),
                        "value": float(ex.get("value", 0.0)),
                        "ts": float(ex.get("ts", 0.0)),
                    }
                )
    return out


def _split_labels(raw: str) -> List[str]:
    """Split ``a="x",b="y,z"`` on commas outside quotes."""
    items: List[str] = []
    depth_quote = False
    current = []
    for char in raw:
        if char == '"':
            depth_quote = not depth_quote
            current.append(char)
        elif char == "," and not depth_quote:
            if current:
                items.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        items.append("".join(current))
    return [item for item in (piece.strip() for piece in items) if item]
