"""``python -m repro report`` — turn recorded artifacts into readable output.

Loads any set of schema-v1 documents from ``results/``, renders per-experiment
views (scaling curves, latency tables/histograms, cache hit-rate tables), the
perf-over-commits trend table from ``results/perf_trend.jsonl``, and a
``--capacity`` planning mode that combines measured QPS with the recorded
shard-scaling efficiency to answer "how many shards for X requests/second".

Everything renders in ASCII with zero third-party dependencies; when
matplotlib happens to be installed, ``--plots DIR`` additionally writes PNG
versions of the scaling and latency views.  matplotlib is *not* a dependency
of this repo and the import is gated accordingly.
"""

from __future__ import annotations

import importlib.util
import json
import os
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "load_documents",
    "render_document",
    "render_report",
    "render_slo_summary",
    "render_trend_table",
    "capacity_plan",
    "render_capacity",
    "matplotlib_available",
    "ascii_bar",
    "format_table",
]

_BAR_WIDTH = 36


def matplotlib_available() -> bool:
    return importlib.util.find_spec("matplotlib") is not None


# ----------------------------------------------------------------- loading
def load_documents(paths: Sequence[str]) -> List[Tuple[str, Dict[str, Any]]]:
    """Load and validate schema-v1 artifacts; skip non-artifacts with a note."""
    from ..experiments.artifacts import ArtifactError, load_artifact

    docs: List[Tuple[str, Dict[str, Any]]] = []
    for path in paths:
        try:
            docs.append((path, load_artifact(path)))
        except (ArtifactError, json.JSONDecodeError, OSError) as exc:
            docs.append((path, {"_load_error": f"{type(exc).__name__}: {exc}"}))
    return docs


# ------------------------------------------------------------ ASCII pieces
def ascii_bar(value: float, maximum: float, width: int = _BAR_WIDTH) -> str:
    if maximum <= 0 or value <= 0:
        return ""
    filled = max(1, round(width * min(value, maximum) / maximum))
    return "#" * filled


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    cells = [[str(h) for h in headers]] + [[_cell(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(row)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


def _header(text: str) -> str:
    return f"{text}\n{'=' * len(text)}"


# ------------------------------------------------------- per-experiment views
def _render_generic(doc: Dict[str, Any]) -> str:
    rows = []
    for point in doc.get("points", [])[:20]:
        params = ", ".join(f"{k}={v}" for k, v in sorted(point.get("params", {}).items()))
        metrics = point.get("metrics", {})
        shown = {k: v for k, v in metrics.items() if isinstance(v, (int, float))}
        metric_text = ", ".join(f"{k}={_cell(v)}" for k, v in sorted(shown.items())[:6])
        rows.append([params or "-", metric_text])
    return format_table(["params", "metrics"], rows) if rows else "(no points)"


def _render_shard_scaling(doc: Dict[str, Any]) -> str:
    points = doc.get("points", [])
    qps_values = [float(p["metrics"].get("qps", 0)) for p in points]
    peak = max(qps_values or [0.0])
    rows = []
    for point in points:
        metrics = point.get("metrics", {})
        shards = point.get("params", {}).get("shards", "?")
        qps = float(metrics.get("qps", 0))
        rows.append([
            shards,
            qps,
            metrics.get("p50_ms", ""),
            metrics.get("p99_ms", ""),
            metrics.get("cache_hit_rate", ""),
            metrics.get("imbalance", ""),
            ascii_bar(qps, peak),
        ])
    table = format_table(["shards", "qps", "p50_ms", "p99_ms", "hit_rate", "imbalance", "scaling"], rows)
    note = points[0]["metrics"].get("note", "") if points else ""
    return table + (f"\nnote: {note}" if note else "")


def _render_service_latency(doc: Dict[str, Any]) -> str:
    rows = []
    parts = []
    for point in doc.get("points", []):
        params = point.get("params", {})
        metrics = point.get("metrics", {})
        rows.append([
            params.get("pattern", "?"),
            params.get("batch", "?"),
            metrics.get("qps", ""),
            metrics.get("p50_ms", ""),
            metrics.get("p95_ms", ""),
            metrics.get("p99_ms", ""),
            metrics.get("max_ms", ""),
            metrics.get("coalesced_requests", ""),
            metrics.get("rejected", ""),
        ])
        hist = metrics.get("latency_hist")
        if isinstance(hist, Mapping) and hist.get("counts"):
            label = f"pattern={params.get('pattern')} batch={params.get('batch')}"
            parts.append(_render_latency_hist(label, hist))
    table = format_table(
        ["pattern", "batch", "qps", "p50_ms", "p95_ms", "p99_ms", "max_ms", "coalesced", "rejected"],
        rows,
    )
    method = None
    for point in doc.get("points", []):
        method = point.get("metrics", {}).get("percentile_method") or method
    if method:
        table += f"\npercentile method: {method}"
    return "\n\n".join([table] + parts)


def _render_latency_hist(label: str, hist: Mapping[str, Any]) -> str:
    bounds = [float(b) for b in hist.get("bounds", [])]
    counts = [int(c) for c in hist.get("counts", [])]
    peak = max(counts or [0])
    rows = []
    for index, count in enumerate(counts):
        if count == 0:
            continue
        le = f"{bounds[index] * 1000:.3g} ms" if index < len(bounds) else "+Inf"
        rows.append([f"<= {le}", count, ascii_bar(count, peak)])
    return f"latency histogram [{label}]\n" + format_table(["bucket", "count", ""], rows)


def _render_service_throughput(doc: Dict[str, Any]) -> str:
    rows = []
    for point in doc.get("points", []):
        params = point.get("params", {})
        metrics = point.get("metrics", {})
        rows.append([
            params.get("workload", "?"),
            params.get("backend", "?"),
            params.get("batch", "?"),
            metrics.get("cached_qps", ""),
            metrics.get("cache_hit_rate", ""),
            metrics.get("cache_hits", ""),
            metrics.get("cache_misses", ""),
            metrics.get("cache_evictions", ""),
            metrics.get("speedup", ""),
        ])
    return format_table(
        ["workload", "backend", "batch", "cached_qps", "hit_rate", "hits", "misses", "evict", "speedup"],
        rows,
    )


def _render_perf_core(doc: Dict[str, Any]) -> str:
    perf = doc.get("perf", {})
    lines = []
    if perf:
        plan = perf.get("plan", {})
        lines.append(
            f"headline: n={perf.get('headline_n')} multiply speedup vs reference = "
            f"{_cell(float(perf.get('multiply_speedup_vs_reference', 0)))}x  "
            f"(plan: {', '.join(f'{k}={v}' for k, v in sorted(plan.items()))})"
        )
    points = doc.get("points", [])
    norms = [float(p["metrics"].get("normalized", 0)) for p in points]
    peak = max(norms or [0.0])
    rows = []
    for point in points:
        metrics = point.get("metrics", {})
        norm = float(metrics.get("normalized", 0))
        rows.append([
            point.get("params", {}).get("case", "?"),
            metrics.get("seconds", ""),
            norm,
            ascii_bar(norm, peak),
        ])
    lines.append(format_table(["case", "seconds", "normalized", ""], rows))
    return "\n".join(lines)


def _render_streaming(doc: Dict[str, Any]) -> str:
    rows = []
    for point in doc.get("points", []):
        params = point.get("params", {})
        metrics = point.get("metrics", {})
        rows.append([
            params.get("workload", "?"),
            params.get("backend", "?"),
            metrics.get("amortised_tick_seconds", ""),
            metrics.get("rebuild_per_tick_seconds", ""),
            metrics.get("speedup", ""),
        ])
    return format_table(["workload", "backend", "tick_s", "rebuild_s", "speedup"], rows)


_WINDOW_ORDER = ("5m", "1h", "6h", "3d")


def _render_slo_eval(doc: Dict[str, Any]) -> str:
    """Objectives x windows burn-rate table for one ``slo_eval`` artifact."""
    by_objective: Dict[str, Dict[str, Dict[str, Any]]] = {}
    severities: Dict[str, str] = {}
    for point in doc.get("points", []):
        params = point.get("params", {})
        metrics = point.get("metrics", {})
        name = str(params.get("objective", "?"))
        by_objective.setdefault(name, {})[str(params.get("window", "?"))] = metrics
        severities[name] = str(metrics.get("severity", severities.get(name, "ok")))
    window_names = [
        w for w in _WINDOW_ORDER if any(w in ws for ws in by_objective.values())
    ] or sorted({w for ws in by_objective.values() for w in ws})
    rows = []
    for name, windows in sorted(by_objective.items()):
        row: List[Any] = [name]
        for window in window_names:
            metrics = windows.get(window)
            row.append(_cell(float(metrics["burn_rate"])) + "x" if metrics else "-")
        row.append(severities.get(name, "ok"))
        rows.append(row)
    table = format_table(["objective"] + [f"burn_{w}" for w in window_names] + ["severity"], rows)
    thresholds = doc.get("fixed", {}).get("thresholds", {})
    if thresholds:
        table += (
            f"\nalerts: page when both fast windows >= {thresholds.get('fast_burn')}x, "
            f"ticket when both slow windows >= {thresholds.get('slow_burn')}x"
        )
    tracing = doc.get("fixed", {}).get("tracing", {})
    if tracing:
        table += (
            f"\ntracing: {tracing.get('retained')}/{tracing.get('started')} traces "
            f"retained (sampled={tracing.get('sampled_total')}, "
            f"dropped={tracing.get('dropped_total')})"
        )
    return table


def render_slo_summary(docs: Sequence[Tuple[str, Dict[str, Any]]]) -> str:
    """The ``--slo`` section: every recorded slo_eval document's alert state."""
    head = _header("SLO burn-rate summary")
    parts = [head]
    found = False
    for path, doc in docs:
        if doc.get("experiment") != "slo_eval" or "_load_error" in doc:
            continue
        found = True
        parts.append(f"[{os.path.basename(path)}]")
        parts.append(_render_slo_eval(doc))
    if not found:
        parts.append(
            "(no slo_eval artifacts found — record one with "
            "`repro serve-http --slo-record results/slo_eval.json`)"
        )
    return "\n".join(parts)


_RENDERERS: Dict[str, Callable[[Dict[str, Any]], str]] = {
    "shard_scaling": _render_shard_scaling,
    "service_latency": _render_service_latency,
    "service_throughput": _render_service_throughput,
    "perf_core": _render_perf_core,
    "streaming_throughput": _render_streaming,
    "slo_eval": _render_slo_eval,
}


def render_document(path: str, doc: Dict[str, Any]) -> str:
    if "_load_error" in doc:
        return f"{_header(os.path.basename(path))}\nskipped: {doc['_load_error']}"
    name = doc.get("experiment", "?")
    title = doc.get("title", "")
    checks = doc.get("checks_passed")
    status = {True: "checks passed", False: "CHECKS FAILED", None: "checks not run"}[
        True if checks is True else (False if checks is False else None)
    ]
    head = _header(f"{name} — {title}" if title else name)
    meta = (
        f"file: {os.path.basename(path)} | quick={doc.get('quick')} | "
        f"version={doc.get('package_version')} | {status}"
    )
    body = _RENDERERS.get(name, _render_generic)(doc)
    return f"{head}\n{meta}\n\n{body}"


# ----------------------------------------------------------------- trend
def render_trend_table(trend_path: str) -> str:
    """The perf-over-commits table from ``results/perf_trend.jsonl``."""
    from ..perf.trend import load_trend

    head = _header("perf trend (normalized seconds per case, by commit)")
    try:
        rows_raw = load_trend(trend_path)
    except (OSError, ValueError) as exc:
        return f"{head}\n(no trend data: {exc})"
    if not rows_raw:
        return f"{head}\n(no trend rows recorded yet — run `repro perf --record-trend`)"

    cases = sorted({case for row in rows_raw for case in row.get("normalized", {})})
    shown = cases[:5]
    headers = ["commit", "when", "quick", "speedup_x"] + shown
    rows = []
    for row in rows_raw:
        when = time.strftime("%Y-%m-%d %H:%M", time.gmtime(float(row.get("timestamp", 0))))
        rows.append(
            [row.get("commit", "?"), when, row.get("quick", "?"),
             row.get("multiply_speedup_vs_reference", "")]
            + [row.get("normalized", {}).get(case, "") for case in shown]
        )
    table = format_table(headers, rows)
    if len(cases) > len(shown):
        table += f"\n({len(cases) - len(shown)} more cases not shown)"
    return f"{head}\n{table}"


# --------------------------------------------------------------- capacity
def capacity_plan(
    docs: Sequence[Tuple[str, Dict[str, Any]]], target_qps: float
) -> Dict[str, Any]:
    """Combine measured QPS with shard-scaling efficiency into a shard count.

    Uses the best closed-loop QPS from ``service_latency`` as the
    single-server ceiling and the recorded ``shard_scaling`` curve to derive
    per-added-shard efficiency (which on a single-core host is < 1: the
    artifacts record pipe/dispatch overhead, not parallel speedup, and the
    plan says so rather than extrapolating fiction).
    """
    by_name = {doc.get("experiment"): doc for _, doc in docs if "_load_error" not in doc}
    plan: Dict[str, Any] = {"target_qps": float(target_qps), "feasible": None, "notes": []}

    latency = by_name.get("service_latency")
    single_qps = None
    if latency:
        closed = [
            float(p["metrics"].get("qps", 0))
            for p in latency.get("points", [])
            if p.get("params", {}).get("pattern") == "closed"
        ]
        if closed:
            single_qps = max(closed)
            plan["single_server_qps"] = single_qps

    scaling = by_name.get("shard_scaling")
    if scaling and scaling.get("points"):
        points = sorted(
            scaling["points"], key=lambda p: int(p.get("params", {}).get("shards", 0))
        )
        curve = [
            (int(p["params"]["shards"]), float(p["metrics"].get("qps", 0))) for p in points
        ]
        plan["shard_curve"] = [{"shards": s, "qps": q} for s, q in curve]
        base = curve[0][1] if curve else 0.0
        if len(curve) >= 2 and base > 0:
            last_shards, last_qps = curve[-1]
            # Observed throughput per shard relative to the 1-shard baseline.
            efficiency = (last_qps / base) / last_shards
            plan["scaling_efficiency"] = efficiency
            cpu = int(points[0]["metrics"].get("cpu_count", 0) or 0)
            plan["cpu_count"] = cpu
            if single_qps is None:
                single_qps = base
                plan["single_server_qps"] = base
            if efficiency >= 0.5 and cpu > 1:
                per_shard = single_qps * efficiency
                shards = max(1, _ceil_div(target_qps, per_shard))
                plan["recommended_shards"] = shards
                plan["feasible"] = True
                plan["notes"].append(
                    f"linear model: ceil(target / (single_qps * efficiency)) with "
                    f"efficiency={efficiency:.2f} measured up to {last_shards} shards"
                )
            else:
                plan["feasible"] = target_qps <= (single_qps or 0.0)
                plan["recommended_shards"] = 1 if plan["feasible"] else None
                plan["notes"].append(
                    "recorded shard_scaling shows no parallel speedup "
                    f"(efficiency={efficiency:.2f}, cpu_count={cpu}): sharding on this "
                    "host only adds dispatch overhead, so the honest answer is the "
                    "single-server ceiling; re-record shard_scaling on a multi-core "
                    "host to plan beyond it"
                )
    if single_qps is not None and plan["feasible"] is None:
        plan["feasible"] = target_qps <= single_qps
        plan["recommended_shards"] = 1 if plan["feasible"] else None
        plan["notes"].append("no shard_scaling artifact: single-server ceiling only")

    perf = by_name.get("perf_core", {}).get("perf")
    if perf:
        plan["multiply_speedup_vs_reference"] = perf.get("multiply_speedup_vs_reference")
    if single_qps is None:
        plan["notes"].append(
            "no measured QPS found (need service_latency or shard_scaling artifacts)"
        )
        plan["feasible"] = False
    return plan


def _ceil_div(a: float, b: float) -> int:
    return int(a // b) + (1 if a % b else 0) if b else 0


def render_capacity(plan: Dict[str, Any]) -> str:
    head = _header(f"capacity plan for {plan['target_qps']:g} requests/second")
    lines = [head]
    if "single_server_qps" in plan:
        lines.append(f"measured single-server ceiling: {plan['single_server_qps']:,.0f} qps")
    if "scaling_efficiency" in plan:
        lines.append(
            f"shard scaling efficiency: {plan['scaling_efficiency']:.2f} "
            f"(cpu_count={plan.get('cpu_count', '?')})"
        )
    for entry in plan.get("shard_curve", []):
        lines.append(f"  shards={entry['shards']}: {entry['qps']:,.0f} qps")
    if plan.get("feasible"):
        lines.append(f"recommended shards: {plan.get('recommended_shards')}")
    elif plan.get("feasible") is False:
        lines.append("target NOT reachable from the recorded measurements")
    for note in plan.get("notes", []):
        lines.append(f"note: {note}")
    return "\n".join(lines)


# ------------------------------------------------------------------ plots
def write_plots(docs: Sequence[Tuple[str, Dict[str, Any]]], outdir: str) -> List[str]:
    """PNG versions of the scaling/latency views; requires matplotlib."""
    if not matplotlib_available():
        raise RuntimeError("matplotlib is not installed; ASCII output only")
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(outdir, exist_ok=True)
    written: List[str] = []
    for _, doc in docs:
        name = doc.get("experiment")
        if name == "shard_scaling":
            xs = [p["params"]["shards"] for p in doc["points"]]
            ys = [p["metrics"]["qps"] for p in doc["points"]]
            fig, ax = plt.subplots()
            ax.plot(xs, ys, marker="o")
            ax.set_xlabel("shards"); ax.set_ylabel("qps"); ax.set_title("shard scaling")
            path = os.path.join(outdir, "shard_scaling.png")
            fig.savefig(path); plt.close(fig); written.append(path)
        elif name == "service_latency":
            labels, p50, p99 = [], [], []
            for p in doc["points"]:
                labels.append(f"{p['params'].get('pattern')}/b{p['params'].get('batch')}")
                p50.append(p["metrics"].get("p50_ms", 0))
                p99.append(p["metrics"].get("p99_ms", 0))
            fig, ax = plt.subplots()
            xs = range(len(labels))
            ax.bar([x - 0.2 for x in xs], p50, width=0.4, label="p50")
            ax.bar([x + 0.2 for x in xs], p99, width=0.4, label="p99")
            ax.set_xticks(list(xs)); ax.set_xticklabels(labels, rotation=30)
            ax.set_ylabel("ms"); ax.legend(); ax.set_title("service latency")
            path = os.path.join(outdir, "service_latency.png")
            fig.savefig(path); plt.close(fig); written.append(path)
    return written


# ------------------------------------------------------------------ driver
def render_report(
    paths: Sequence[str],
    *,
    trend_path: Optional[str] = None,
    capacity_qps: Optional[float] = None,
    plots_dir: Optional[str] = None,
    slo: bool = False,
) -> str:
    """The full report text; the CLI prints this verbatim."""
    docs = load_documents(paths)
    sections = [render_document(path, doc) for path, doc in docs]
    if slo:
        sections.append(render_slo_summary(docs))
    if trend_path is not None:
        sections.append(render_trend_table(trend_path))
    if capacity_qps is not None:
        sections.append(render_capacity(capacity_plan(docs, capacity_qps)))
    if plots_dir is not None:
        if matplotlib_available():
            written = write_plots(docs, plots_dir)
            sections.append("plots written:\n" + "\n".join(f"  {p}" for p in written))
        else:
            sections.append(
                f"plots skipped: matplotlib not installed (ASCII output above is complete)"
            )
    return "\n\n\n".join(sections) + "\n"
