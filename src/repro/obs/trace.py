"""Span-based per-request tracing, stdlib-only.

A :class:`Tracer` owns a bounded ring buffer of completed traces.  A trace
is started at the HTTP edge (:meth:`Tracer.start_trace`), which mints a
trace ID and installs the root span in a :mod:`contextvars` context;
instrumented code below the edge just wraps work in ``with span("name")``
and ends up parented correctly — including across thread hops, as long as
the dispatcher captures the context (``contextvars.copy_context().run``)
when handing work to an executor.  ``asyncio.create_task`` copies the
context automatically, so the coalescer's background pass inherits the
leading contributor's span for free.

When no trace is active, ``span(...)`` is a near-free no-op (one
ContextVar read), so instrumented inner layers cost nothing on untraced
paths such as the perf benchmark.  The same holds for
:func:`span_event`, the lightweight timestamped annotation (cache
spill/load, shard restart/retry, coalesce merge) that marks a moment
inside the current span without opening a child.

Retention is a policy, not a given: when the tracer is built with a
:class:`~repro.obs.sampling.TraceSampler`, the head decision is taken at
mint time (deterministic in the trace ID) and tail retention at completion
time — a trace that lost the head lottery is still kept if its end-to-end
latency crosses the per-route threshold.  Without a sampler every
completed trace is retained, the pre-sampler behaviour.

Spans live in memory only; :meth:`Tracer.export_chrome` converts a trace to
the Chrome trace-event JSON format (load via ``chrome://tracing`` or
https://ui.perfetto.dev) for offline inspection.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "span",
    "span_event",
    "current_trace_id",
    "current_span",
]


class Span:
    """One timed operation inside a trace."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs", "events", "_trace")

    def __init__(self, trace: "Trace", span_id: int, parent_id: Optional[int], name: str,
                 attrs: Dict[str, Any]):
        self._trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.events: List[Dict[str, Any]] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a timestamped annotation without opening a child span.

        Events are for moments, not durations: a cache spill, a shard
        worker restart, a coalesce merge.  Appends race-free under the
        trace lock because shard dispatch can finish sibling spans
        concurrently.
        """
        record = {
            "name": name,
            "at_s": time.perf_counter() - self._trace.origin,
            "attrs": dict(attrs),
        }
        with self._trace._lock:
            self.events.append(record)

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()
            self._trace._on_span_finished(self)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start - self._trace.origin,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
            "events": [dict(event) for event in self.events],
        }


class Trace:
    """A tree of spans sharing one trace ID.

    Span appends are lock-protected: shard dispatch runs spans from a
    thread pool, so siblings can finish concurrently.
    """

    def __init__(self, tracer: "Tracer", trace_id: str, name: str, route: Optional[str] = None):
        self.tracer = tracer
        self.trace_id = trace_id
        self.name = name
        #: The route label the sampler keys its per-route tail threshold on.
        self.route = route or name
        #: Head-sampling verdict, fixed at mint time (deterministic in the
        #: trace ID); the tracer's sampler sets it, default keep-everything.
        self.head_sampled = True
        #: Final retention outcome, set when the trace completes:
        #: ``retained`` says whether it landed in the ring buffer,
        #: ``retain_decision`` says why (``"head"`` / ``"tail"`` / ``None``).
        self.retained = False
        self.retain_decision: Optional[str] = None
        self.origin = time.perf_counter()
        self.wall_start = time.time()
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._open = 0
        self._root: Optional[Span] = None
        self._recorded = False

    def new_span(self, name: str, parent_id: Optional[int], attrs: Dict[str, Any]) -> Span:
        with self._lock:
            sp = Span(self, next(self._ids), parent_id, name, attrs)
            self.spans.append(sp)
            self._open += 1
            if self._root is None:
                self._root = sp
            return sp

    def _on_span_finished(self, sp: Span) -> None:
        with self._lock:
            self._open -= 1
            done = (
                self._open == 0
                and not self._recorded
                and self._root is not None
                and self._root.end is not None
            )
            if done:
                self._recorded = True
        if done:
            self.tracer._on_trace_finished(self)

    @property
    def root(self) -> Optional[Span]:
        return self._root

    def to_jsonable(self) -> Dict[str, Any]:
        with self._lock:
            spans = list(self.spans)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "wall_start": self.wall_start,
            "duration_s": self._root.duration if self._root else None,
            "spans": [sp.to_jsonable() for sp in spans],
        }

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            count = len(self.spans)
            events = sum(len(sp.events) for sp in self.spans)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "route": self.route,
            "wall_start": self.wall_start,
            "duration_s": self._root.duration if self._root else None,
            "span_count": count,
            "event_count": events,
            "retain_decision": self.retain_decision,
        }

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome trace-event JSON (complete "X" events, µs timestamps)."""
        with self._lock:
            spans = list(self.spans)
        events = []
        for sp in spans:
            if sp.end is None:
                continue
            events.append({
                "name": sp.name,
                "ph": "X",
                "ts": (sp.start - self.origin) * 1e6,
                "dur": (sp.end - sp.start) * 1e6,
                "pid": 1,
                "tid": sp.parent_id if sp.parent_id is not None else 0,
                "args": {k: _jsonable(v) for k, v in sp.attrs.items()},
            })
            # Span events render as instant ("i") marks on the same row.
            for event in sp.events:
                events.append({
                    "name": event["name"],
                    "ph": "i",
                    "s": "t",
                    "ts": event["at_s"] * 1e6,
                    "pid": 1,
                    "tid": sp.parent_id if sp.parent_id is not None else 0,
                    "args": {k: _jsonable(v) for k, v in event["attrs"].items()},
                })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"trace_id": self.trace_id, "name": self.name}}


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


# The active span for the current logical context.  Holds the Span object;
# the owning Trace is reachable through it.
_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional[Span]:
    return _current_span.get()


def current_trace_id() -> Optional[str]:
    sp = _current_span.get()
    return None if sp is None else sp._trace.trace_id


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Open a child span under the current one; no-op when untraced."""
    parent = _current_span.get()
    if parent is None:
        yield None
        return
    sp = parent._trace.new_span(name, parent.span_id, attrs)
    token = _current_span.set(sp)
    try:
        yield sp
    finally:
        _current_span.reset(token)
        sp.finish()


def span_event(name: str, **attrs: Any) -> None:
    """Annotate the current span with a timestamped event; no-op untraced."""
    sp = _current_span.get()
    if sp is not None:
        sp.event(name, **attrs)


class Tracer:
    """Mints traces and retains the most recent completed ones.

    With a ``sampler`` (:class:`~repro.obs.sampling.TraceSampler`), the ring
    buffer holds head-sampled traces plus tail outliers only; without one,
    every completed trace (the pre-sampler behaviour, and what the direct
    unit-test uses of this class expect).
    """

    def __init__(self, capacity: int = 128, sampler: Optional[Any] = None):
        self.capacity = capacity
        self.sampler = sampler
        self._completed: "deque[Trace]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._started = 0
        self._retained_total = 0
        self._dropped_total = 0

    @contextmanager
    def start_trace(self, name: str, route: Optional[str] = None, **attrs: Any) -> Iterator[Trace]:
        """Begin a trace with a fresh root span installed in the context.

        ``route`` keys the sampler's per-route tail threshold (defaults to
        ``name``); the head-sampling verdict is fixed here, deterministically
        in the minted trace ID.
        """
        trace = Trace(self, uuid.uuid4().hex[:16], name, route=route)
        if self.sampler is not None:
            trace.head_sampled = self.sampler.head_decision(trace.trace_id)
        with self._lock:
            self._started += 1
        root = trace.new_span(name, None, attrs)
        token = _current_span.set(root)
        try:
            yield trace
        finally:
            _current_span.reset(token)
            root.finish()

    def _on_trace_finished(self, trace: Trace) -> None:
        if self.sampler is None:
            keep, decision = True, "head"
        else:
            duration = trace.root.duration if trace.root is not None else 0.0
            keep, decision = self.sampler.decide(
                trace.route, duration or 0.0, trace.head_sampled
            )
        trace.retained = keep
        trace.retain_decision = decision
        with self._lock:
            if keep:
                self._completed.append(trace)
                self._retained_total += 1
            else:
                self._dropped_total += 1
            occupancy = len(self._completed)
        if self.sampler is not None:
            self.sampler.note_ring_size(occupancy)

    # ----------------------------------------------------------------- query
    def completed(self) -> List[Trace]:
        with self._lock:
            return list(self._completed)

    def get(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            for trace in self._completed:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out = {
                "started": self._started,
                "retained": len(self._completed),
                "capacity": self.capacity,
                "sampled_total": self._retained_total,
                "dropped_total": self._dropped_total,
            }
        if self.sampler is not None:
            out["sampler"] = self.sampler.config()
        return out

    def summaries(self) -> List[Dict[str, Any]]:
        return [trace.summary() for trace in reversed(self.completed())]
