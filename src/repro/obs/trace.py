"""Span-based per-request tracing, stdlib-only.

A :class:`Tracer` owns a bounded ring buffer of completed traces.  A trace
is started at the HTTP edge (:meth:`Tracer.start_trace`), which mints a
trace ID and installs the root span in a :mod:`contextvars` context;
instrumented code below the edge just wraps work in ``with span("name")``
and ends up parented correctly — including across thread hops, as long as
the dispatcher captures the context (``contextvars.copy_context().run``)
when handing work to an executor.  ``asyncio.create_task`` copies the
context automatically, so the coalescer's background pass inherits the
leading contributor's span for free.

When no trace is active, ``span(...)`` is a near-free no-op (one
ContextVar read), so instrumented inner layers cost nothing on untraced
paths such as the perf benchmark.

Spans live in memory only; :meth:`Tracer.export_chrome` converts a trace to
the Chrome trace-event JSON format (load via ``chrome://tracing`` or
https://ui.perfetto.dev) for offline inspection.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Trace", "Tracer", "span", "current_trace_id", "current_span"]


class Span:
    """One timed operation inside a trace."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs", "_trace")

    def __init__(self, trace: "Trace", span_id: int, parent_id: Optional[int], name: str,
                 attrs: Dict[str, Any]):
        self._trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = time.perf_counter()
        self.end: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()
            self._trace._on_span_finished(self)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start - self._trace.origin,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
        }


class Trace:
    """A tree of spans sharing one trace ID.

    Span appends are lock-protected: shard dispatch runs spans from a
    thread pool, so siblings can finish concurrently.
    """

    def __init__(self, tracer: "Tracer", trace_id: str, name: str):
        self.tracer = tracer
        self.trace_id = trace_id
        self.name = name
        self.origin = time.perf_counter()
        self.wall_start = time.time()
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._open = 0
        self._root: Optional[Span] = None
        self._recorded = False

    def new_span(self, name: str, parent_id: Optional[int], attrs: Dict[str, Any]) -> Span:
        with self._lock:
            sp = Span(self, next(self._ids), parent_id, name, attrs)
            self.spans.append(sp)
            self._open += 1
            if self._root is None:
                self._root = sp
            return sp

    def _on_span_finished(self, sp: Span) -> None:
        with self._lock:
            self._open -= 1
            done = (
                self._open == 0
                and not self._recorded
                and self._root is not None
                and self._root.end is not None
            )
            if done:
                self._recorded = True
        if done:
            self.tracer._on_trace_finished(self)

    @property
    def root(self) -> Optional[Span]:
        return self._root

    def to_jsonable(self) -> Dict[str, Any]:
        with self._lock:
            spans = list(self.spans)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "wall_start": self.wall_start,
            "duration_s": self._root.duration if self._root else None,
            "spans": [sp.to_jsonable() for sp in spans],
        }

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            count = len(self.spans)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "wall_start": self.wall_start,
            "duration_s": self._root.duration if self._root else None,
            "span_count": count,
        }

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome trace-event JSON (complete "X" events, µs timestamps)."""
        with self._lock:
            spans = list(self.spans)
        events = []
        for sp in spans:
            if sp.end is None:
                continue
            events.append({
                "name": sp.name,
                "ph": "X",
                "ts": (sp.start - self.origin) * 1e6,
                "dur": (sp.end - sp.start) * 1e6,
                "pid": 1,
                "tid": sp.parent_id if sp.parent_id is not None else 0,
                "args": {k: _jsonable(v) for k, v in sp.attrs.items()},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"trace_id": self.trace_id, "name": self.name}}


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


# The active span for the current logical context.  Holds the Span object;
# the owning Trace is reachable through it.
_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional[Span]:
    return _current_span.get()


def current_trace_id() -> Optional[str]:
    sp = _current_span.get()
    return None if sp is None else sp._trace.trace_id


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Open a child span under the current one; no-op when untraced."""
    parent = _current_span.get()
    if parent is None:
        yield None
        return
    sp = parent._trace.new_span(name, parent.span_id, attrs)
    token = _current_span.set(sp)
    try:
        yield sp
    finally:
        _current_span.reset(token)
        sp.finish()


class Tracer:
    """Mints traces and retains the most recent completed ones."""

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._completed: "deque[Trace]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._started = 0

    @contextmanager
    def start_trace(self, name: str, **attrs: Any) -> Iterator[Trace]:
        """Begin a trace with a fresh root span installed in the context."""
        trace = Trace(self, uuid.uuid4().hex[:16], name)
        with self._lock:
            self._started += 1
        root = trace.new_span(name, None, attrs)
        token = _current_span.set(root)
        try:
            yield trace
        finally:
            _current_span.reset(token)
            root.finish()

    def _on_trace_finished(self, trace: Trace) -> None:
        with self._lock:
            self._completed.append(trace)

    # ----------------------------------------------------------------- query
    def completed(self) -> List[Trace]:
        with self._lock:
            return list(self._completed)

    def get(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            for trace in self._completed:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {"started": self._started, "retained": len(self._completed),
                    "capacity": self.capacity}

    def summaries(self) -> List[Dict[str, Any]]:
        return [trace.summary() for trace in reversed(self.completed())]
