"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SLObjective` states what "healthy" means in one of two shapes:

``availability``
    A target fraction of HTTP requests that must not fail server-side
    (status < 500), read from ``repro_http_requests_total``.
``latency``
    A target fraction of requests that must finish under a threshold
    (e.g. 99% under 250 ms), read from ``repro_http_request_seconds``
    bucket counts.  The threshold snaps to the histogram's bucket grid:
    "good" counts every bucket whose upper bound is <= the threshold, so
    the measurement is conservative by at most one bucket width.

Both read the *same merged registry snapshot* that ``/metrics`` renders
and ``/stats`` reconciles with — the SLO engine never keeps a parallel
count that could drift.

Burn rate is error budget spend speed: ``error_ratio / (1 - target)``.
A burn rate of 1 spends exactly the budget over the SLO period; 14.4
spends 2% of a 30-day budget in one hour.  Following the Google SRE
workbook's multi-window multi-burn-rate alerts, the engine evaluates a
fast pair (5m and 1h, page at >= 14.4x) and a slow pair (6h and 3d,
ticket at >= 1x); both windows of a pair must burn to alert, so a single
spike cannot page and a slow leak cannot hide.  (The workbook pairs 6h
with 30m; here the slow pair is 6h/3d — the windows this engine keeps.)

The engine is fed cumulative totals at evaluation time and keeps a ring
of ``(timestamp, totals)`` points, so a window's burn rate is the delta
between now and the oldest point inside the window.  A server younger
than the window honestly reports the smaller ``coverage_seconds`` it
actually evaluated.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "SLObjective",
    "SLOEngine",
    "SLO_SCHEMA_ID",
    "default_objectives",
    "objectives_from_config",
]

SLO_SCHEMA_ID = "repro.server.slo"
SLO_SCHEMA_VERSION = 1

#: (name, seconds) in evaluation order: the fast pair then the slow pair.
WINDOWS: Tuple[Tuple[str, float], ...] = (
    ("5m", 300.0),
    ("1h", 3600.0),
    ("6h", 21600.0),
    ("3d", 259200.0),
)

#: Page when both fast windows burn >= 14.4x (2% of a 30d budget per hour).
FAST_BURN_THRESHOLD = 14.4
#: Ticket when both slow windows burn >= 1x (on pace to spend the budget).
SLOW_BURN_THRESHOLD = 1.0


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective evaluated against registry snapshots."""

    name: str
    kind: str  # "availability" | "latency"
    target: float  # good fraction, e.g. 0.999
    route: Optional[str] = None  # None = every route
    threshold_seconds: Optional[float] = None  # latency kind only

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"objective kind must be availability|latency, got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"objective target must be in (0, 1), got {self.target}")
        if self.kind == "latency" and (
            self.threshold_seconds is None or self.threshold_seconds <= 0
        ):
            raise ValueError(
                f"latency objective {self.name!r} needs a positive threshold_seconds"
            )

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "route": self.route,
            "threshold_seconds": self.threshold_seconds,
        }


def default_objectives() -> List[SLObjective]:
    """The serving tier's out-of-the-box objectives."""
    return [
        SLObjective(
            name="batch-availability-99.9",
            kind="availability",
            target=0.999,
            route="/v2/batch",
        ),
        SLObjective(
            name="batch-p99-under-250ms",
            kind="latency",
            target=0.99,
            route="/v2/batch",
            threshold_seconds=0.25,
        ),
    ]


def objectives_from_config(config: Sequence[Mapping[str, Any]]) -> List[SLObjective]:
    """Build objectives from a JSON-ish list (the ``--slo-config`` format).

    Each entry: ``{"name", "kind", "target", "route"?, "threshold_ms"? |
    "threshold_seconds"?}``.
    """
    objectives: List[SLObjective] = []
    for index, entry in enumerate(config):
        if not isinstance(entry, Mapping):
            raise ValueError(f"slo config entry {index} must be an object")
        threshold = entry.get("threshold_seconds")
        if threshold is None and entry.get("threshold_ms") is not None:
            threshold = float(entry["threshold_ms"]) / 1000.0
        objectives.append(
            SLObjective(
                name=str(entry.get("name", f"objective-{index}")),
                kind=str(entry.get("kind", "availability")),
                target=float(entry["target"]),
                route=entry.get("route"),
                threshold_seconds=threshold,
            )
        )
    if not objectives:
        raise ValueError("slo config must declare at least one objective")
    return objectives


# ----------------------------------------------------------- measurement
def _objective_totals(objective: SLObjective, snapshot: Mapping[str, Any]) -> Tuple[float, float]:
    """Cumulative ``(good, total)`` for one objective from a merged snapshot."""
    good = total = 0.0
    if objective.kind == "availability":
        entry = snapshot.get("repro_http_requests_total")
        for labels_kv, value in (entry or {}).get("samples", []):
            labels = {str(k): str(v) for k, v in labels_kv}
            if objective.route is not None and labels.get("route") != objective.route:
                continue
            total += float(value)
            try:
                status = int(labels.get("status", "0"))
            except ValueError:
                status = 0
            if status < 500:
                good += float(value)
        return good, total
    entry = snapshot.get("repro_http_request_seconds")
    if not entry:
        return 0.0, 0.0
    bounds = [float(b) for b in entry.get("bounds", [])]
    threshold = float(objective.threshold_seconds) * (1.0 + 1e-9)
    for labels_kv, value in entry.get("samples", []):
        labels = {str(k): str(v) for k, v in labels_kv}
        if objective.route is not None and labels.get("route") != objective.route:
            continue
        counts = value["counts"]
        total += float(value["count"])
        good += float(
            sum(count for bound, count in zip(bounds, counts) if bound <= threshold)
        )
    return good, total


class SLOEngine:
    """Evaluates objectives from registry snapshots with windowed burn rates.

    ``clock`` is injectable so the multi-window math is unit-testable
    without real hours passing.
    """

    def __init__(
        self,
        objectives: Optional[Sequence[SLObjective]] = None,
        *,
        clock: Callable[[], float] = time.time,
        max_points: int = 4096,
        history_path: Optional[str] = None,
    ) -> None:
        self.objectives = list(objectives) if objectives is not None else default_objectives()
        if not self.objectives:
            raise ValueError("SLOEngine needs at least one objective")
        self._clock = clock
        self._lock = threading.Lock()
        #: (timestamp, {objective_name: (good, total)}) — cumulative totals.
        self._history: "deque[Tuple[float, Dict[str, Tuple[float, float]]]]" = deque(
            maxlen=max_points
        )
        #: Restart continuity: the last persisted cumulative totals.  The
        #: registry counters reset to zero with the process, so every fresh
        #: total is shifted by these offsets — the persisted series stays
        #: monotone across restarts and windowed deltas never go negative.
        self._offsets: Dict[str, Tuple[float, float]] = {}
        self.history_path = history_path
        self._persisted_rows = 0
        if history_path is not None:
            self._load_history(history_path)

    # ----------------------------------------------------------- persistence
    def _load_history(self, path: str) -> None:
        """Reload persisted ``(ts, totals)`` points and set restart offsets.

        Rows outside the widest window are dropped; unparsable lines (a torn
        final append from a crash) are skipped rather than failing startup.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return
        horizon = self._clock() - WINDOWS[-1][1] - 60.0
        points: List[Tuple[float, Dict[str, Tuple[float, float]]]] = []
        last_totals: Optional[Dict[str, Tuple[float, float]]] = None
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                ts = float(row["ts"])
                totals = {
                    str(name): (float(pair[0]), float(pair[1]))
                    for name, pair in row["totals"].items()
                }
            except (KeyError, TypeError, ValueError, IndexError, json.JSONDecodeError):
                continue
            last_totals = totals
            if ts >= horizon:
                points.append((ts, totals))
        with self._lock:
            self._history.extend(points)
            self._persisted_rows = len(points)
        if last_totals is not None:
            self._offsets = dict(last_totals)

    def _persist(self, now: float, totals: Dict[str, Tuple[float, float]]) -> None:
        # Callers hold self._lock.  Append one JSONL row; when the file has
        # accumulated well past the in-memory ring, compact it down to the
        # pruned history so it cannot grow without bound.
        if self.history_path is None:
            return
        row = json.dumps(
            {"ts": now, "totals": {name: list(pair) for name, pair in totals.items()}}
        )
        try:
            maxlen = self._history.maxlen or 4096
            if self._persisted_rows >= 2 * maxlen:
                tmp_path = f"{self.history_path}.{os.getpid()}.tmp"
                with open(tmp_path, "w", encoding="utf-8") as handle:
                    for ts, point in self._history:
                        handle.write(
                            json.dumps(
                                {
                                    "ts": ts,
                                    "totals": {
                                        name: list(pair) for name, pair in point.items()
                                    },
                                }
                            )
                            + "\n"
                        )
                os.replace(tmp_path, self.history_path)
                self._persisted_rows = len(self._history)
            else:
                with open(self.history_path, "a", encoding="utf-8") as handle:
                    handle.write(row + "\n")
                self._persisted_rows += 1
        except OSError:
            # Persistence is best-effort: a full disk must not take down
            # request serving or in-memory burn-rate evaluation.
            pass

    # ------------------------------------------------------------- recording
    def record(self, snapshot: Mapping[str, Any], now: Optional[float] = None) -> None:
        """Fold one snapshot's cumulative totals into the window history."""
        now = self._clock() if now is None else float(now)
        totals: Dict[str, Tuple[float, float]] = {}
        for objective in self.objectives:
            good, total = _objective_totals(objective, snapshot)
            offset = self._offsets.get(objective.name)
            if offset is not None:
                good, total = good + offset[0], total + offset[1]
            totals[objective.name] = (good, total)
        horizon = now - WINDOWS[-1][1] - 60.0
        with self._lock:
            self._history.append((now, totals))
            while self._history and self._history[0][0] < horizon:
                self._history.popleft()
            self._persist(now, totals)

    def totals_summary(self, snapshot: Mapping[str, Any]) -> Dict[str, Any]:
        """Point-in-time cumulative totals per objective (``/stats`` view)."""
        out: Dict[str, Any] = {}
        for objective in self.objectives:
            good, total = _objective_totals(objective, snapshot)
            offset = self._offsets.get(objective.name)
            if offset is not None:
                good, total = good + offset[0], total + offset[1]
            out[objective.name] = {
                "kind": objective.kind,
                "target": objective.target,
                "good": good,
                "total": total,
            }
        return out

    # ------------------------------------------------------------ evaluation
    def evaluate(self, snapshot: Mapping[str, Any], now: Optional[float] = None) -> Dict[str, Any]:
        """Record ``snapshot`` and return the full burn-rate document."""
        now = self._clock() if now is None else float(now)
        self.record(snapshot, now)
        with self._lock:
            history = list(self._history)
        results = []
        for objective in self.objectives:
            current = history[-1][1][objective.name]
            windows: Dict[str, Any] = {}
            for window_name, window_seconds in WINDOWS:
                baseline, coverage = self._baseline(history, now, window_seconds, objective.name)
                delta_good = current[0] - baseline[0]
                delta_total = current[1] - baseline[1]
                error_ratio = (
                    1.0 - (delta_good / delta_total) if delta_total > 0 else 0.0
                )
                budget = 1.0 - objective.target
                windows[window_name] = {
                    "seconds": window_seconds,
                    "coverage_seconds": coverage,
                    "good": delta_good,
                    "total": delta_total,
                    "error_ratio": error_ratio,
                    "burn_rate": error_ratio / budget if budget > 0 else 0.0,
                }
            fast_page = (
                windows["5m"]["burn_rate"] >= FAST_BURN_THRESHOLD
                and windows["1h"]["burn_rate"] >= FAST_BURN_THRESHOLD
            )
            slow_ticket = (
                windows["6h"]["burn_rate"] >= SLOW_BURN_THRESHOLD
                and windows["3d"]["burn_rate"] >= SLOW_BURN_THRESHOLD
            )
            results.append(
                {
                    **objective.describe(),
                    "totals": {"good": current[0], "total": current[1]},
                    "windows": windows,
                    "alerts": {
                        "fast_page": fast_page,
                        "slow_ticket": slow_ticket,
                        "severity": "page" if fast_page else ("ticket" if slow_ticket else "ok"),
                    },
                }
            )
        return {
            "schema": SLO_SCHEMA_ID,
            "version": SLO_SCHEMA_VERSION,
            "now_unix": now,
            "thresholds": {
                "fast_burn": FAST_BURN_THRESHOLD,
                "slow_burn": SLOW_BURN_THRESHOLD,
                "fast_windows": ["5m", "1h"],
                "slow_windows": ["6h", "3d"],
            },
            "objectives": results,
        }

    @staticmethod
    def _baseline(
        history: List[Tuple[float, Dict[str, Tuple[float, float]]]],
        now: float,
        window_seconds: float,
        name: str,
    ) -> Tuple[Tuple[float, float], float]:
        """The ``(good, total)`` totals at the window's trailing edge.

        Picks the newest history point at or before ``now - window``; when
        the server is younger than the window, falls back to zero totals
        (everything since start) and reports the smaller actual coverage.
        """
        edge = now - window_seconds
        chosen: Optional[Tuple[float, Dict[str, Tuple[float, float]]]] = None
        for point in history:
            if point[0] <= edge:
                chosen = point
            else:
                break
        if chosen is not None:
            return chosen[1][name], now - chosen[0]
        coverage = min(window_seconds, max(0.0, now - history[0][0])) if history else 0.0
        return (0.0, 0.0), coverage
