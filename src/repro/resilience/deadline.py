"""Deadline budgets propagated through the serving path.

A :class:`Deadline` is an absolute expiry on a monotonic clock, created at
the HTTP edge from the ``X-Repro-Deadline-Ms`` header (or the server's
``--default-deadline-ms``) and carried through coalescing, the shard
router and the worker pipe wait via a :mod:`contextvars` scope — the same
propagation channel the tracer uses, so the budget survives the executor
thread hops (:meth:`repro.server.core.ServerCore._in_service_thread` and
the router's dispatch pool both ship context copies).

Each layer *reads the remaining budget* rather than receiving a decremented
copy: the edge checks it before admitting work, the coalescer bounds its
wait on the pending pass, the router refuses to dispatch (and to back off)
past it, and the worker pipe polls with at most the remaining budget.
Expiry surfaces as :class:`DeadlineExceeded` and is counted per stage on
``repro_deadline_expired_total`` so ``/metrics`` shows *where* budgets die.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from ..obs.metrics import get_registry
from ..obs.trace import span_event

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "current_deadline",
    "deadline_scope",
    "note_expiry",
]

_EXPIRED = get_registry().counter(
    "repro_deadline_expired_total",
    "Deadline budget expiries by pipeline stage",
    ("stage",),
)


class DeadlineExceeded(RuntimeError):
    """A request's deadline budget ran out before its answer was ready."""

    def __init__(self, message: str, stage: str = "unknown") -> None:
        super().__init__(message)
        self.stage = stage


class Deadline:
    """An absolute expiry on an injectable monotonic clock.

    ``budget_ms`` is what crossed the wire; it is kept for error messages
    and response annotations.  All comparisons use ``clock()`` so tests pin
    the math without sleeping.
    """

    __slots__ = ("expires_at", "budget_ms", "_clock")

    def __init__(
        self,
        expires_at: float,
        *,
        budget_ms: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = float(expires_at)
        self.budget_ms = budget_ms
        self._clock = clock

    @classmethod
    def after_ms(
        cls, budget_ms: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        budget_ms = float(budget_ms)
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms}")
        return cls(clock() + budget_ms / 1000.0, budget_ms=budget_ms, clock=clock)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def tighten_ms(self, budget_ms: float) -> "Deadline":
        """The stricter of this deadline and a fresh ``budget_ms`` one."""
        other = Deadline.after_ms(budget_ms, clock=self._clock)
        return other if other.expires_at < self.expires_at else self

    def describe(self) -> str:
        if self.budget_ms is not None:
            return f"{self.budget_ms:.0f}ms budget ({self.remaining() * 1000:.0f}ms left)"
        return f"{self.remaining() * 1000:.0f}ms left"


_CURRENT: "ContextVar[Optional[Deadline]]" = ContextVar("repro_deadline", default=None)


def current_deadline() -> Optional[Deadline]:
    """The deadline governing the current context (``None`` = unbounded)."""
    return _CURRENT.get()


@contextlib.contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` for the duration of the block (``None`` is a no-op)."""
    if deadline is None:
        yield None
        return
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)


def note_expiry(stage: str, count: int = 1, **attrs) -> None:
    """Count one (or ``count``) deadline expiries at ``stage`` + span event."""
    _EXPIRED.inc(count, stage=stage)
    span_event("deadline_expired", stage=stage, count=count, **attrs)
