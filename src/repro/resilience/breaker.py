"""Per-shard circuit breakers: closed → open → half-open → closed.

A breaker watches one worker's call outcomes.  It opens when either
``failure_threshold`` *consecutive* failures land, or a rolling window of
recent outcomes shows an error rate at or above ``error_rate_threshold``
(with at least ``min_window_calls`` observations, so two early failures
cannot trip a cold breaker).  While open, callers should not touch the
worker at all — the shard router serves the shard's keys from its inline
degraded fallback instead.  After ``cooldown_seconds`` the breaker lets
exactly one *probe* call through (half-open); a probe success closes it, a
probe failure re-opens it and restarts the cooldown.

The clock is injectable and every transition fires an ``on_transition``
callback, which the router wires to the
``repro_breaker_transitions_total`` counter and a span event — the state
machine itself stays import-cycle-free of the metrics registry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["BreakerConfig", "CircuitBreaker", "BREAKER_STATE_CODES"]

#: Numeric encoding for the per-shard state gauge on /metrics.
BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/reclose thresholds (shared by every shard's breaker)."""

    failure_threshold: int = 5
    error_rate_threshold: float = 0.5
    window: int = 20
    min_window_calls: int = 10
    cooldown_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if not 0.0 < self.error_rate_threshold <= 1.0:
            raise ValueError(
                f"error_rate_threshold must be in (0, 1], got {self.error_rate_threshold}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.cooldown_seconds <= 0:
            raise ValueError(
                f"cooldown_seconds must be positive, got {self.cooldown_seconds}"
            )


class CircuitBreaker:
    """One worker's breaker state machine (thread-safe, injectable clock)."""

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        *,
        name: str = "",
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.name = name
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._outcomes: "deque[bool]" = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probe_inflight = False
        self.transitions: Dict[str, int] = {}
        self.opened_total = 0
        self.rejected_calls = 0

    # ------------------------------------------------------------- internals
    def _transition(self, new_state: str) -> None:
        # Callers hold self._lock.
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        key = f"{old_state}->{new_state}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        if new_state == "open":
            self.opened_total += 1
            self._opened_at = self._clock()
        if new_state != "half_open":
            self._probe_inflight = False
        callback = self._on_transition
        if callback is not None:
            callback(self.name, old_state, new_state)

    def _window_rate_tripped(self) -> bool:
        if len(self._outcomes) < self.config.min_window_calls:
            return False
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes) >= self.config.error_rate_threshold

    # ------------------------------------------------------------------- api
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the caller touch the real worker right now?

        Open breakers become half-open once the cooldown elapses; a
        half-open breaker admits exactly one probe at a time.  A ``False``
        return means "serve degraded instead" and is counted.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.config.cooldown_seconds:
                    self._transition("half_open")
                else:
                    self.rejected_calls += 1
                    return False
            # half_open: admit a single probe.
            if self._probe_inflight:
                self.rejected_calls += 1
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._outcomes.append(True)
            if self._state == "half_open":
                self._transition("closed")
                self._outcomes.clear()

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._outcomes.append(False)
            if self._state == "half_open":
                # The probe failed: straight back to open, fresh cooldown.
                self._transition("open")
                return
            if self._state == "closed" and (
                self._consecutive_failures >= self.config.failure_threshold
                or self._window_rate_tripped()
            ):
                self._transition("open")

    def release_probe(self) -> None:
        """Give the probe slot back without judging the worker.

        For outcomes that say nothing about worker health — e.g. the
        *caller's* deadline expired mid-probe.  A leaked probe slot would
        otherwise wedge a half-open breaker forever.
        """
        with self._lock:
            self._probe_inflight = False

    def trip(self) -> None:
        """Force the breaker open (operational escape hatch + tests)."""
        with self._lock:
            self._transition("open")

    def reset(self) -> None:
        """Force the breaker closed and clear its failure memory."""
        with self._lock:
            self._consecutive_failures = 0
            self._outcomes.clear()
            self._transition("closed")

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "window_calls": len(self._outcomes),
                "window_failures": sum(1 for ok in self._outcomes if not ok),
                "opened_total": self.opened_total,
                "rejected_calls": self.rejected_calls,
                "transitions": dict(self.transitions),
                "cooldown_seconds": self.config.cooldown_seconds,
            }
