"""Deterministic fault injection at named sites in the serving path.

A :class:`FaultPlan` is a seeded, JSON-configurable list of rules, each
binding a **site** (a named choke point the serving code instruments with
:func:`fault_point`) to a fault **kind**:

=========  ==============================================================
``crash``  ``os._exit`` the current process (worker sites only) — the
           router sees pipe EOF, exactly like a real segfault.
``hang``   Sleep far past any timeout (default 3600 s) — exercises the
           poll-with-budget hang detection and kill/restart path.
``delay``  Sleep ``delay_ms`` then continue — exercises deadline expiry
           without killing anything.
``error``  Raise :class:`InjectedFault` — exercises structured error
           propagation (workers answer with an ``internal`` envelope).
``corrupt``  Returned to the caller (no side effect here): the cache
           spill-load site truncates the ``.npz`` before reading it, so
           the corrupt-file degrade-to-rebuild path runs for real.
=========  ==============================================================

Rules fire deterministically: ``hits`` names 1-based invocation indices of
the rule's site (counted per process, after ``match`` filtering), and
``probability`` draws from a per-rule ``random.Random`` seeded from
``(plan seed, site, rule index)`` — the same plan replays the same fault
sequence every run.  Fired faults are first-class observability events:
``repro_faults_injected_total{site,kind}`` plus a ``fault_injected`` span
event, so chaos runs are diagnosable from ``/metrics`` and traces alone.

The plan is picklable and shipped to shard workers inside their
:class:`~repro.service.sharding.ShardConfig`; :func:`install_plan` makes
it visible to in-process sites (cache spill, index build, router pipe).

Sites currently instrumented (:data:`FAULT_SITES`):

- ``worker.dispatch`` — worker-process side, before executing a command
- ``pipe.send`` / ``pipe.recv`` — router side of the worker pipe
- ``cache.spill_load`` — before reading a spilled ``.npz``
- ``index.build`` — before a cache-miss index build
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from typing import Any, Dict, List, Mapping, Optional

from ..obs.metrics import get_registry
from ..obs.trace import span_event

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "fault_point",
    "install_plan",
    "plan_from_spec",
    "uninstall_plan",
]

FAULT_KINDS = ("crash", "hang", "delay", "error", "corrupt")

FAULT_SITES = (
    "worker.dispatch",
    "pipe.send",
    "pipe.recv",
    "cache.spill_load",
    "index.build",
)

#: How long a "hang" sleeps when the rule gives no delay_ms: far past any
#: sane worker timeout, so the poll-with-budget path always trips first.
DEFAULT_HANG_SECONDS = 3600.0

_INJECTED = get_registry().counter(
    "repro_faults_injected_total", "Faults fired by the active FaultPlan", ("site", "kind")
)


class InjectedFault(RuntimeError):
    """The error the ``error`` fault kind raises at its site."""


class FaultRule:
    """One (site, kind) binding with deterministic firing conditions."""

    def __init__(
        self,
        site: str,
        kind: str,
        *,
        hits: Optional[List[int]] = None,
        probability: Optional[float] = None,
        delay_ms: Optional[float] = None,
        match: Optional[Mapping[str, Any]] = None,
        max_fires: Optional[int] = None,
    ) -> None:
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}; expected one of {FAULT_SITES}")
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
        if hits is None and probability is None:
            raise ValueError(f"rule for {site!r} needs 'hits' or 'probability'")
        if probability is not None and not 0.0 < float(probability) <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        self.site = site
        self.kind = kind
        self.hits = tuple(int(h) for h in hits) if hits is not None else None
        self.probability = float(probability) if probability is not None else None
        self.delay_ms = float(delay_ms) if delay_ms is not None else None
        self.match = dict(match) if match else None
        self.max_fires = int(max_fires) if max_fires is not None else None

    def matches(self, context: Mapping[str, Any]) -> bool:
        if not self.match:
            return True
        return all(context.get(key) == value for key, value in self.match.items())

    def describe(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.hits is not None:
            doc["hits"] = list(self.hits)
        if self.probability is not None:
            doc["probability"] = self.probability
        if self.delay_ms is not None:
            doc["delay_ms"] = self.delay_ms
        if self.match:
            doc["match"] = dict(self.match)
        if self.max_fires is not None:
            doc["max_fires"] = self.max_fires
        return doc


class FaultPlan:
    """A seeded set of :class:`FaultRule` with per-rule hit accounting.

    Picklable (the lock and injected sleep are rebuilt on unpickle) so it
    ships to shard workers inside :class:`~repro.service.sharding.ShardConfig`.
    Hit counters are **per process**: a restarted worker starts a fresh
    count, which is exactly what makes a ``hits: [2]`` hang rule a
    repeating-but-bounded irritant (each incarnation misbehaves once) —
    the scenario circuit breakers exist for.
    """

    def __init__(self, rules: List[FaultRule], *, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules = list(rules)
        self._lock = threading.Lock()
        self._sleep = time.sleep
        self._hit_counts = [0] * len(self.rules)
        self._fire_counts = [0] * len(self.rules)
        self._rngs = [
            random.Random(f"{self.seed}:{rule.site}:{index}")
            for index, rule in enumerate(self.rules)
        ]

    # ------------------------------------------------------------- pickling
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("_lock")
        state.pop("_sleep")
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._sleep = time.sleep

    # ------------------------------------------------------------- construction
    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(document, Mapping):
            raise ValueError("fault plan must be a JSON object")
        raw_rules = document.get("rules")
        if not isinstance(raw_rules, list) or not raw_rules:
            raise ValueError("fault plan needs a non-empty 'rules' list")
        rules = []
        for index, entry in enumerate(raw_rules):
            if not isinstance(entry, Mapping):
                raise ValueError(f"fault plan rule {index} must be an object")
            rules.append(
                FaultRule(
                    str(entry.get("site", "")),
                    str(entry.get("kind", "")),
                    hits=entry.get("hits"),
                    probability=entry.get("probability"),
                    delay_ms=entry.get("delay_ms"),
                    match=entry.get("match"),
                    max_fires=entry.get("max_fires"),
                )
            )
        return cls(rules, seed=int(document.get("seed", 0)))

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_document(json.load(handle))

    # ---------------------------------------------------------------- firing
    def fire(self, site: str, context: Mapping[str, Any]) -> Optional[str]:
        """Decide and execute at most one fault for this site invocation.

        Returns the fired kind (``"corrupt"`` asks the *caller* to act; the
        other kinds' side effects already happened), or ``None``.
        """
        decision: Optional[int] = None
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.site != site or not rule.matches(context):
                    continue
                self._hit_counts[index] += 1
                if rule.max_fires is not None and self._fire_counts[index] >= rule.max_fires:
                    continue
                fired = False
                if rule.hits is not None and self._hit_counts[index] in rule.hits:
                    fired = True
                elif rule.probability is not None:
                    fired = self._rngs[index].random() < rule.probability
                if fired and decision is None:
                    self._fire_counts[index] += 1
                    decision = index
                # Keep iterating: every matching rule's hit counter advances
                # even when an earlier rule already claimed this invocation,
                # so rule ordering never shifts another rule's schedule.
        if decision is None:
            return None
        rule = self.rules[decision]
        _INJECTED.inc(site=site, kind=rule.kind)
        # Context keys are caller-chosen and may shadow "site"/"kind"
        # (index.build passes kind=...), so namespace them.
        span_event(
            "fault_injected",
            site=site,
            kind=rule.kind,
            **{f"ctx_{key}": value for key, value in context.items()},
        )
        if rule.kind == "delay":
            self._sleep((rule.delay_ms or 0.0) / 1000.0)
        elif rule.kind == "hang":
            self._sleep(
                (rule.delay_ms / 1000.0) if rule.delay_ms else DEFAULT_HANG_SECONDS
            )
        elif rule.kind == "error":
            raise InjectedFault(f"injected fault at {site}")
        elif rule.kind == "crash":
            os._exit(13)
        return rule.kind

    # ----------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [
                    {**rule.describe(), "hit_count": hits, "fired": fires}
                    for rule, hits, fires in zip(
                        self.rules, self._hit_counts, self._fire_counts
                    )
                ],
                "fired_total": sum(self._fire_counts),
            }


def plan_from_spec(spec: str) -> FaultPlan:
    """Build a plan from a CLI/env spec: a JSON file path or inline JSON."""
    spec = spec.strip()
    if spec.startswith("{"):
        return FaultPlan.from_document(json.loads(spec))
    return FaultPlan.from_file(spec)


_ACTIVE: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Make ``plan`` the process-wide active plan (``None`` disables)."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall_plan() -> None:
    install_plan(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def fault_point(site: str, **context: Any) -> Optional[str]:
    """The hook the serving path calls at each named site (no-op when clean).

    Returns the fired kind so sites with caller-handled kinds (``corrupt``)
    can act; raises :class:`InjectedFault` / sleeps / exits per the rule.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site, context)
