"""Retry policies: exponential backoff with decorrelated jitter + a budget.

The fixed ``for attempt in range(retry_limit + 1)`` loop the shard router
shipped with retries instantly — N callers hitting a sick shard at once
re-hammer it in lockstep.  The standard fixes, both implemented here:

``RetryPolicy``
    *Decorrelated jitter* (the AWS architecture-blog variant): each sleep
    is ``min(cap, uniform(base, previous * multiplier))``.  Sleeps stay
    spread out even across many concurrent callers, and grow roughly
    exponentially without synchronising.

``RetryBudget``
    A process-wide token bucket: every retry spends one token, every
    *successful* call earns back ``refill_per_success`` (capped).  When
    the bucket is empty, failures surface immediately instead of feeding a
    retry storm — retries stay a small, self-limiting fraction of traffic.

Both are injectable-clock/rng friendly so the property tests pin the exact
bounds without sleeping.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "RetryBudget"]


@dataclass(frozen=True)
class RetryPolicy:
    """Decorrelated-jitter backoff parameters (pure math, no state).

    ``base_seconds`` is both the first sleep's lower bound and the floor of
    every later draw; ``cap_seconds`` bounds the worst case.  The canonical
    decorrelated-jitter recurrence draws the next sleep from
    ``uniform(base, previous * multiplier)`` and clamps at the cap.
    """

    base_seconds: float = 0.02
    cap_seconds: float = 2.0
    multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.base_seconds <= 0:
            raise ValueError(f"base_seconds must be positive, got {self.base_seconds}")
        if self.cap_seconds < self.base_seconds:
            raise ValueError(
                f"cap_seconds ({self.cap_seconds}) must be >= base_seconds "
                f"({self.base_seconds})"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def backoff(self, previous: float, rng: Optional[random.Random] = None) -> float:
        """The next sleep after a sleep of ``previous`` seconds (0 = first)."""
        draw = (rng or random).uniform(
            self.base_seconds, max(self.base_seconds, previous * self.multiplier)
        )
        return min(self.cap_seconds, draw)


class RetryBudget:
    """Thread-safe retry token bucket shared across shards.

    ``capacity`` bounds how many retries can burst; ``refill_per_success``
    is the fraction of a token each successful call earns back, which makes
    the steady-state retry rate at most that fraction of the success rate.
    """

    def __init__(self, capacity: float = 10.0, refill_per_success: float = 0.1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if refill_per_success < 0:
            raise ValueError(
                f"refill_per_success must be non-negative, got {refill_per_success}"
            )
        self.capacity = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self._tokens = float(capacity)
        self._lock = threading.Lock()
        self.spent = 0
        self.exhausted = 0

    def try_spend(self) -> bool:
        """Take one retry token; ``False`` means the budget is exhausted."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.exhausted += 1
            return False

    def credit(self) -> None:
        """A successful call earns back a fraction of a token."""
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.refill_per_success)

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "tokens": self._tokens,
                "refill_per_success": self.refill_per_success,
                "spent": self.spent,
                "exhausted": self.exhausted,
            }
