"""Policy-driven resilience for the serving path.

Four small, injectable-clock primitives the serving stack composes:

- :mod:`~repro.resilience.deadline` — request budgets propagated edge →
  coalesce → router → worker pipe via a contextvar scope; expiry is a
  structured 504 at the edge and a counted, traced event everywhere.
- :mod:`~repro.resilience.retry` — decorrelated-jitter backoff + a
  process-wide retry budget, replacing the router's fixed retry loop.
- :mod:`~repro.resilience.breaker` — per-shard circuit breakers
  (closed → open → half-open) gating worker dispatch; open shards serve
  from the router's inline degraded fallback.
- :mod:`~repro.resilience.faults` — seeded, JSON-configurable fault
  injection at named sites, so every path above is exercised
  deterministically in CI (chaos tests + the smoke chaos cycle).
"""

from .breaker import BREAKER_STATE_CODES, BreakerConfig, CircuitBreaker
from .deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
    note_expiry,
)
from .faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    fault_point,
    install_plan,
    plan_from_spec,
    uninstall_plan,
)
from .retry import RetryBudget, RetryPolicy

__all__ = [
    "BREAKER_STATE_CODES",
    "BreakerConfig",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RetryBudget",
    "RetryPolicy",
    "active_plan",
    "current_deadline",
    "deadline_scope",
    "fault_point",
    "install_plan",
    "note_expiry",
    "plan_from_spec",
    "uninstall_plan",
]
