"""A Krusche–Tiskin-style baseline (SPAA 2010).

[KT10a] give a BSP algorithm for subunit-Monge multiplication with O(log n)
supersteps whose communication/memory cost is ``Õ(n/p + p²)`` — it is
therefore *not* fully scalable: it only translates to an MPC algorithm for
``δ < 1/3`` (Table 1), where it yields an ``O(log² n)``-round exact LIS.

This module reproduces that row of Table 1: it refuses to run outside the
admissible range of ``δ`` and charges O(log n) rounds per multiplication
(one combine level per superstep).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.permutation import Permutation, SubPermutation
from ..core.seaweed import multiply_permutations, pad_to_permutations, strip_padding
from ..lis.semilocal import rank_transform
from ..lis.mpc_lis import mpc_lis_matrix
from ..mpc.cluster import MPCCluster
from ..mpc.errors import ScalabilityError

__all__ = [
    "KT10_DELTA_LIMIT",
    "kt10_check_scalability",
    "kt10_multiply",
    "kt10_multiply_subpermutation",
    "kt10_lis_length",
]

#: The algorithm needs p < n^{1/3} machines, i.e. δ < 1/3.
KT10_DELTA_LIMIT = 1.0 / 3.0


def kt10_check_scalability(cluster: MPCCluster) -> None:
    """Raise :class:`ScalabilityError` when ``δ`` is outside ``(0, 1/3)``."""
    if cluster.delta >= KT10_DELTA_LIMIT:
        raise ScalabilityError(
            f"the KT10 algorithm requires delta < 1/3 (got delta={cluster.delta}): "
            f"its Õ(n/p + p²) memory term exceeds the machine space"
        )
    # The p² term must also fit into a single machine's memory.
    quadratic_term = cluster.num_machines ** 2
    if quadratic_term > cluster.space_per_machine:
        raise ScalabilityError(
            f"p² = {quadratic_term} exceeds the per-machine space {cluster.space_per_machine}"
        )


def kt10_multiply(cluster: MPCCluster, pa: Permutation, pb: Permutation) -> Permutation:
    """Unit-Monge multiplication with KT10-style accounting (O(log n) rounds)."""
    kt10_check_scalability(cluster)
    n = pa.size
    log_n = max(1, math.ceil(math.log2(max(n, 2))))
    machine_load = math.ceil(2 * n / cluster.num_machines) + cluster.num_machines ** 2
    cluster.charge_rounds(
        log_n, "kt10:superstep", words_per_round=2 * n, max_load=machine_load, phase="kt10"
    )
    return multiply_permutations(pa, pb)


def kt10_multiply_subpermutation(
    cluster: MPCCluster, pa: SubPermutation, pb: SubPermutation
) -> SubPermutation:
    """Subunit-Monge multiplication via §4.1 padding and the KT10 multiplier."""
    if (
        pa.n_rows == pa.n_cols == pb.n_rows == pb.n_cols
        and pa.is_full_permutation()
        and pb.is_full_permutation()
    ):
        return kt10_multiply(cluster, pa.as_permutation(), pb.as_permutation())
    n2 = pa.n_cols
    load = math.ceil(2 * n2 / max(1, cluster.num_machines)) + 1
    cluster.charge_rounds(3, "kt10:pad", words_per_round=2 * n2, max_load=load, phase="kt10-pad")
    perm_a, perm_b, info = pad_to_permutations(pa, pb)
    product = kt10_multiply(cluster, perm_a, perm_b)
    cluster.charge_round("kt10:strip", words=n2, max_load=load, phase="kt10-pad")
    return strip_padding(product, info)


def kt10_lis_length(cluster: MPCCluster, sequence: Sequence[float], *, strict: bool = True) -> int:
    """Exact LIS with KT10-style accounting: O(log² n) rounds, δ < 1/3 only."""
    kt10_check_scalability(cluster)
    ranks = rank_transform(sequence, strict=strict)
    if len(ranks) == 0:
        return 0
    result = mpc_lis_matrix(
        cluster, sequence, strict=strict, multiply_fn=kt10_multiply_subpermutation
    )
    return result.length
