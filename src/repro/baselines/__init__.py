"""Prior-work baselines used to reproduce Table 1 of the paper."""

from .chs23 import (
    chs23_combine_rounds,
    chs23_lis_length,
    chs23_multiply,
    chs23_multiply_subpermutation,
)
from .kt10 import (
    KT10_DELTA_LIMIT,
    kt10_check_scalability,
    kt10_lis_length,
    kt10_multiply,
    kt10_multiply_subpermutation,
)

__all__ = [
    "chs23_combine_rounds",
    "chs23_lis_length",
    "chs23_multiply",
    "chs23_multiply_subpermutation",
    "KT10_DELTA_LIMIT",
    "kt10_check_scalability",
    "kt10_lis_length",
    "kt10_multiply",
    "kt10_multiply_subpermutation",
]
