"""A CHS23-style baseline (Cao, Huang, Su — SPAA 2023).

CHS23 solve the "core problem" (the function ``f(i)`` of the paper's §1.4)
with an ``O(log² n)``-span EREW-PRAM divide-and-conquer, which yields an
``O(log³ n)``-round subunit-Monge multiplication and an ``O(log⁴ n)``-round
exact LIS when simulated in the MPC model (the row of Table 1 this module
reproduces).

The baseline executes the same binary split / compact / combine skeleton as
the rest of the library (so it produces exactly the same — correct — output),
but charges rounds the way the CHS23 combine does: a binary divide-and-conquer
over the demarcation function with ``Θ(log n)`` phases of ``Θ(log n)`` rounds
each, instead of the O(1)-round flattened-tree search of the paper.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..core.combine import combine_colored
from ..core.permutation import Permutation, SubPermutation
from ..core.seaweed import (
    expand_block_results,
    multiply_permutations,
    pad_to_permutations,
    split_into_blocks,
    strip_padding,
)
from ..mpc.cluster import MPCCluster
from ..lis.semilocal import rank_transform
from ..lis.mpc_lis import mpc_lis_matrix

__all__ = [
    "chs23_multiply",
    "chs23_multiply_subpermutation",
    "chs23_lis_length",
    "chs23_combine_rounds",
]


def chs23_combine_rounds(n: int) -> int:
    """Rounds charged for one CHS23-style combine: Θ(log² n)."""
    log_n = max(1, math.ceil(math.log2(max(n, 2))))
    return log_n * log_n


def chs23_multiply(
    cluster: MPCCluster,
    pa: Permutation,
    pb: Permutation,
    *,
    _depth: int = 0,
) -> Permutation:
    """Unit-Monge multiplication with CHS23-style round accounting (O(log³ n))."""
    n = pa.size
    phase = f"chs23-level{_depth}"
    if n <= max(2, cluster.space_per_machine // 2):
        cluster.charge_round("chs23:local", words=2 * n, max_load=2 * n, phase=phase)
        return multiply_permutations(pa, pb)

    machine_load = math.ceil(2 * n / cluster.num_machines) + 2
    cluster.charge_rounds(3, "chs23:split", words_per_round=2 * n, max_load=machine_load, phase=phase)
    split = split_into_blocks(pa, pb, 2)

    children = cluster.fork(2)
    results = [
        chs23_multiply(child, a_blk, b_blk, _depth=_depth + 1)
        for child, a_blk, b_blk in zip(children, split.a_blocks, split.b_blocks)
    ]
    cluster.join(children, label=phase)

    rows, cols, colors = expand_block_results(results, split)
    # The CHS23 core problem: a binary D&C over f(i) with log n levels, each
    # level needing a logarithmic number of rounds of rank searching.
    cluster.charge_rounds(
        chs23_combine_rounds(n), "chs23:core-problem", words_per_round=2 * n,
        max_load=machine_load, phase=phase,
    )
    merged = combine_colored(rows, cols, colors, 2, n, n)
    return merged.as_permutation()


def chs23_multiply_subpermutation(
    cluster: MPCCluster, pa: SubPermutation, pb: SubPermutation
) -> SubPermutation:
    """Subunit-Monge multiplication via §4.1 padding and the CHS23 multiplier."""
    if (
        pa.n_rows == pa.n_cols == pb.n_rows == pb.n_cols
        and pa.is_full_permutation()
        and pb.is_full_permutation()
    ):
        return chs23_multiply(cluster, pa.as_permutation(), pb.as_permutation())
    n2 = pa.n_cols
    load = math.ceil(2 * n2 / max(1, cluster.num_machines)) + 1
    cluster.charge_rounds(3, "chs23:pad", words_per_round=2 * n2, max_load=load, phase="chs23-pad")
    perm_a, perm_b, info = pad_to_permutations(pa, pb)
    product = chs23_multiply(cluster, perm_a, perm_b)
    cluster.charge_round("chs23:strip", words=n2, max_load=load, phase="chs23-pad")
    return strip_padding(product, info)


def chs23_lis_length(cluster: MPCCluster, sequence: Sequence[float], *, strict: bool = True) -> int:
    """Exact LIS with CHS23-style round accounting (O(log⁴ n) rounds).

    Uses the merge pipeline of Theorem 1.3 but performs every subunit-Monge
    multiplication with the CHS23-style multiplier.
    """
    ranks = rank_transform(sequence, strict=strict)
    if len(ranks) == 0:
        return 0
    result = mpc_lis_matrix(
        cluster, sequence, strict=strict, multiply_fn=chs23_multiply_subpermutation
    )
    return result.length
