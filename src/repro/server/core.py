"""Transport-agnostic request handling for the HTTP front-end.

:class:`ServerCore` owns everything the network layer should not care
about: routing, request coalescing, admission control, background index
builds, streaming sessions and the timing counters behind ``/stats``.  Both
transports (:mod:`repro.server.transport`) drive the same
``await core.handle(method, path, body)`` coroutine, so transport choice
changes socket mechanics only — never an answer.

Concurrency model
-----------------
The service behind the core advertises how many calls it can usefully run
at once through a ``concurrency`` attribute.  A plain
:class:`~repro.service.serving.QueryService` (single-threaded, like the
:class:`~repro.service.cache.IndexCache` behind it) has none and defaults
to 1: all service work funnels through one worker thread guarded by an
``asyncio.Semaphore(1)`` — exactly the historical lock discipline.  A
:class:`~repro.service.sharding.ShardRouter` advertises its shard count:
the semaphore and the executor both widen to N, so N vectorised passes
(bound for different shards) overlap while the event loop stays free.
Streaming sessions remain single-threaded objects regardless, so each
session additionally holds a private per-session lock.

The semaphore is what makes **coalescing** profitable: while the service
slots are busy, every new request against the same
``(target, kind, strict)`` group key joins the pending
:class:`_PendingPass` instead of queueing its own.  When a slot frees,
the pass *seals* (pops itself from the pending map — failures can never
poison the map for later requests) and answers all contributors in one
vectorised :meth:`QueryService.submit` call.  Outcomes are demuxed back to
contributors by position slice, because ``submit`` preserves input order.

**Admission control** counts in-flight *service requests* (not HTTP
calls): a batch whose size would push the count past ``max_inflight`` is
rejected whole with ``429`` and a ``Retry-After`` header, never silently
dropped.  Background index builds are bounded separately by
``build_queue_limit``.
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
import importlib.util
import itertools
import json
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.serialize import to_jsonable
from ..obs.metrics import (
    exemplars_from_snapshot,
    gauge_fragment,
    get_registry,
    merge_snapshots,
    render_prometheus,
)
from ..obs.alerts import AlertEmitter
from ..obs.sampling import TraceSampler
from ..obs.slo import SLOEngine
from ..obs.trace import Tracer, current_trace_id, span, span_event
from ..resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
    note_expiry,
)
from ..service import (
    INDEX_KINDS,
    QueryRequest,
    QueryService,
    ServiceRequestError,
    TargetSpec,
    parse_requests_lenient,
    parse_target,
)
from ..streaming import StreamingLCS, StreamingLIS

__all__ = [
    "BATCH_SCHEMA_ID",
    "STATS_SCHEMA_ID",
    "ServerCore",
    "aiohttp_available",
]

BATCH_SCHEMA_ID = "repro.server.batch"
STATS_SCHEMA_ID = "repro.server.stats"
STATS_SCHEMA_VERSION = 1
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_HTTP_REQUESTS = get_registry().counter(
    "repro_http_requests_total", "HTTP requests by method, route and status",
    ("method", "route", "status"),
)
_HTTP_SECONDS = get_registry().histogram(
    "repro_http_request_seconds", "End-to-end HTTP request handling time", ("route",)
)
_QUEUE_WAIT_SECONDS = get_registry().histogram(
    "repro_server_queue_wait_seconds",
    "Time a batch request spent before its pass started",
)
_ANSWER_SECONDS = get_registry().histogram(
    "repro_server_answer_seconds", "Vectorised pass time attributed to batch requests"
)
_REJECTIONS = get_registry().counter(
    "repro_server_rejections_total", "Requests rejected by admission control", ("reason",)
)
_PASSES = get_registry().counter(
    "repro_server_passes_total", "Vectorised passes run by the coalescer"
)
_MERGED_PASSES = get_registry().counter(
    "repro_server_merged_passes_total", "Passes that served more than one contributor"
)
_COALESCED = get_registry().counter(
    "repro_server_coalesced_requests_total", "Requests that joined an in-flight pass"
)


def aiohttp_available() -> bool:
    """Whether the aiohttp transport could be used (recorded in artifacts)."""
    return importlib.util.find_spec("aiohttp") is not None


def _swallow_future_error(future: "asyncio.Future") -> None:
    """Mark an abandoned pass future's exception as retrieved.

    When every contributor's deadline expires before the pass finishes,
    nobody is left to await the future — without this callback asyncio
    logs a spurious "exception was never retrieved" at teardown.
    """
    if not future.cancelled():
        future.exception()


class _HttpError(Exception):
    """Abort a request with a structured JSON error response."""

    def __init__(self, status: int, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.retry_after = retry_after


class _JsonResponse:
    """A routed payload that carries its own HTTP status (e.g. a 504 batch).

    Unlike :class:`_HttpError` this is not an abort: the payload is a full,
    well-formed response document — only the status line differs from 200.
    """

    __slots__ = ("status", "payload")

    def __init__(self, status: int, payload: Any) -> None:
        self.status = int(status)
        self.payload = payload


class _Timing:
    """Streaming aggregate of one latency component (count / total / max)."""

    __slots__ = ("count", "total", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def add(self, seconds: float, count: int = 1) -> None:
        self.count += int(count)
        self.total += float(seconds)
        self.max = max(self.max, float(seconds))

    def summary(self) -> Dict[str, float]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": mean,
            "max_seconds": self.max,
        }


class _PendingPass:
    """One in-flight vectorised pass that concurrent requests may join.

    Contributors append their requests while the pass waits for the service
    lock; ``add`` returns each contributor's start offset so the merged
    outcome list can be sliced back apart (``QueryService.submit`` preserves
    input positions).
    """

    __slots__ = ("key", "requests", "contributions", "sealed", "created", "future")

    def __init__(self, key, loop: asyncio.AbstractEventLoop) -> None:
        self.key = key
        self.requests: List[QueryRequest] = []
        self.contributions = 0
        self.sealed = False
        self.created = time.perf_counter()
        self.future: asyncio.Future = loop.create_future()

    def add(self, requests: Sequence[QueryRequest]) -> int:
        offset = len(self.requests)
        self.requests.extend(requests)
        self.contributions += 1
        return offset


class ServerCore:
    """Routing, coalescing, backpressure and stats for the HTTP front-end."""

    def __init__(
        self,
        service: Optional[Any] = None,
        *,
        max_inflight: int = 64,
        build_queue_limit: int = 8,
        coalesce_seconds: float = 0.002,
        retry_after_seconds: float = 1.0,
        default_seed: Optional[int] = None,
        transport: str = "asyncio",
        trace_capacity: int = 128,
        sampler: Optional[TraceSampler] = None,
        slo_engine: Optional[SLOEngine] = None,
        default_deadline_ms: Optional[float] = None,
        alert_emitter: Optional[AlertEmitter] = None,
        slo_eval_seconds: float = 5.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        if build_queue_limit < 1:
            raise ValueError(f"build_queue_limit must be positive, got {build_queue_limit}")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be positive, got {default_deadline_ms}"
            )
        if slo_eval_seconds <= 0:
            raise ValueError(f"slo_eval_seconds must be positive, got {slo_eval_seconds}")
        self.service = service if service is not None else QueryService()
        # Shard routers advertise how many calls may run at once; plain
        # services default to 1 and keep the historical strict serialisation.
        self.service_concurrency = max(1, int(getattr(self.service, "concurrency", 1) or 1))
        self.max_inflight = int(max_inflight)
        self.build_queue_limit = int(build_queue_limit)
        self.coalesce_seconds = float(coalesce_seconds)
        self.retry_after_seconds = float(retry_after_seconds)
        self.default_seed = default_seed
        self.transport = transport

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._service_lock: Optional[asyncio.Semaphore] = None
        self._session_locks: Dict[str, asyncio.Lock] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pending: Dict[Tuple[TargetSpec, str, bool], _PendingPass] = {}
        self._builds: Dict[str, Dict[str, Any]] = {}
        self._build_counter = itertools.count(1)
        self._sessions: Dict[str, Any] = {}
        self._session_meta: Dict[str, Dict[str, Any]] = {}
        self._session_counter = itertools.count(1)
        self._tasks: set = set()
        self._started = time.perf_counter()
        #: Head+tail retention policy for the ring buffer.  The default
        #: (head_rate=1.0) keeps every completed trace — the historical
        #: behaviour — while still exercising the decision counters.
        self.sampler = sampler if sampler is not None else TraceSampler()
        #: Per-request traces, minted at the HTTP edge for batch POSTs;
        #: the sampler decides which land in the bounded ring buffer
        #: behind ``GET /debug/traces``.
        self.tracer = Tracer(capacity=trace_capacity, sampler=self.sampler)
        #: Declarative objectives with multi-window burn rates, evaluated
        #: from the same merged snapshot ``/metrics`` renders
        #: (``GET /debug/slo``).
        self.slo = slo_engine if slo_engine is not None else SLOEngine()
        #: Deadline budget applied to every ``POST /v2/batch`` that does
        #: not carry its own ``X-Repro-Deadline-Ms`` header.  ``None`` keeps
        #: the historical unbounded behaviour.
        self.default_deadline_ms = default_deadline_ms
        #: Deduplicated page/ticket emission; when set, a background loop
        #: evaluates the SLO engine every ``slo_eval_seconds`` and feeds
        #: the verdicts through the emitter.
        self.alert_emitter = alert_emitter
        self.slo_eval_seconds = float(slo_eval_seconds)

        self.inflight = 0
        self.peak_inflight = 0
        self.requests_received = 0
        self.requests_answered = 0
        self.requests_rejected = 0
        self.requests_failed = 0
        self.parse_errors = 0
        self.passes = 0
        self.merged_passes = 0
        self.coalesced_requests = 0
        self.failed_passes = 0
        self.builds_started = 0
        self.builds_done = 0
        self.builds_failed = 0
        self.internal_errors = 0
        self.deadline_expired = 0
        self.degraded_answers = 0
        self.queue_wait = _Timing()
        self.answer_timing = _Timing()
        self.build_wait = _Timing()

    # ---------------------------------------------------------------- lifecycle
    async def startup(self) -> None:
        """Bind to the running event loop (call once, from that loop)."""
        self._loop = asyncio.get_running_loop()
        # Semaphore width == how many service calls run at once.  Width 1
        # (plain QueryService) is the historical lock discipline; a shard
        # router widens it to its shard count so per-shard passes overlap.
        self._service_lock = asyncio.Semaphore(self.service_concurrency)
        self._executor = ThreadPoolExecutor(
            max_workers=self.service_concurrency, thread_name_prefix="repro-service"
        )
        if self.alert_emitter is not None or self.slo.history_path is not None:
            # Continuous evaluation matters when someone is listening
            # (alerts) or when the window history must persist across
            # restarts; otherwise /debug/slo evaluates on demand as before.
            self._spawn(self._slo_loop())

    def _evaluate_slo(self) -> Dict[str, Any]:
        """One SLO tick (runs on the service thread: snapshots poll pipes)."""
        document = self.slo.evaluate(self.metrics_snapshot())
        if self.alert_emitter is not None:
            self.alert_emitter.consume(document)
        return document

    async def _slo_loop(self) -> None:
        """Periodic SLO evaluation: feeds the alert emitter + history file."""
        while True:
            await asyncio.sleep(self.slo_eval_seconds)
            try:
                await self._in_service_thread(self._evaluate_slo)
            except Exception:  # noqa: BLE001 — the eval loop must survive
                self.internal_errors += 1

    async def shutdown(self) -> None:
        for task in list(self._tasks):
            task.cancel()
        close = getattr(self.service, "close", None)
        if callable(close) and self._executor is not None:
            # Shard routers own worker processes; tear them down off-loop
            # while the executor is still alive.
            await self._loop.run_in_executor(self._executor, close)
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def _spawn(self, coro: Awaitable[Any]) -> None:
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _in_service_thread(self, fn, *args, **kwargs):
        """Run ``fn`` on the single service thread (never on the event loop).

        Executor threads do not inherit the caller's contextvars, so each
        call ships a fresh context copy — service-layer spans stay parented
        to the request that triggered them.
        """
        ctx = contextvars.copy_context()
        return await self._loop.run_in_executor(
            self._executor, ctx.run, functools.partial(fn, *args, **kwargs)
        )

    # ------------------------------------------------------------------ routing
    def _edge_deadline(
        self, headers: Optional[Dict[str, str]]
    ) -> Optional[Deadline]:
        """The batch deadline: ``X-Repro-Deadline-Ms`` header, else default."""
        raw = None
        if headers:
            for key, value in headers.items():
                if key.lower() == "x-repro-deadline-ms":
                    raw = value
                    break
        if raw is None:
            if self.default_deadline_ms is None:
                return None
            return Deadline.after_ms(self.default_deadline_ms)
        try:
            budget_ms = float(raw)
            if budget_ms <= 0:
                raise ValueError
        except (TypeError, ValueError):
            raise _HttpError(
                400,
                f"X-Repro-Deadline-Ms must be a positive number of "
                f"milliseconds, got {raw!r}",
            ) from None
        return Deadline.after_ms(budget_ms)

    async def handle(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """Answer one HTTP request: ``(status, extra_headers, payload)``.

        The payload is JSON unless the handler set its own ``Content-Type``
        in the extra headers (``/metrics`` returns Prometheus text).
        ``headers`` carries the request headers the core reads
        (``X-Repro-Deadline-Ms``); ``None`` means "no budget header", so
        direct callers and old transports keep working unchanged.
        """
        started = time.perf_counter()
        path, _, raw_query = path.partition("?")
        path = path.rstrip("/") or "/"
        method = method.upper()
        query = urllib.parse.parse_qs(raw_query) if raw_query else {}
        route = self._route_label(method, path)
        exemplar = None
        if method == "POST" and path == "/v2/batch":
            try:
                deadline = self._edge_deadline(headers)
            except _HttpError as exc:
                status, headers_out, payload = (
                    exc.status,
                    {},
                    self._encode({"error": exc.message, "status": exc.status}),
                )
            else:
                # The trace-everything path is gone: every batch is still
                # *traced* (tail retention needs the duration of every
                # request), but the sampler decides at completion whether
                # the trace stays in the ring buffer.  The head verdict is
                # deterministic in the trace ID; the route keys the
                # per-route tail threshold.  The deadline scope wraps the
                # trace so every span below can read the remaining budget.
                with deadline_scope(deadline):
                    with self.tracer.start_trace(
                        "edge", route=route, method=method, path=path
                    ) as trace:
                        status, headers_out, payload = await self._handle_routed(
                            method, path, query, body
                        )
                # The root span finished when the with-block exited, so the
                # retention verdict is in; only retained traces become
                # exemplars — an exemplar must resolve via /debug/traces/<id>.
                if trace.retained:
                    exemplar = trace.trace_id
        else:
            status, headers_out, payload = await self._handle_routed(
                method, path, query, body
            )
        _HTTP_REQUESTS.inc(method=method, route=route, status=status)
        _HTTP_SECONDS.observe(time.perf_counter() - started, route=route, exemplar=exemplar)
        return status, headers_out, payload

    async def _handle_routed(
        self, method: str, path: str, query: Dict[str, List[str]], body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        try:
            payload = await self._route(method, path, query, body)
            if isinstance(payload, tuple):  # (extra_headers, raw_bytes) — /metrics
                return 200, payload[0], payload[1]
            if isinstance(payload, _JsonResponse):  # e.g. a whole-batch 504
                return payload.status, {}, self._encode(payload.payload)
            return 200, {}, self._encode(payload)
        except _HttpError as exc:
            headers = {}
            if exc.retry_after is not None:
                headers["Retry-After"] = str(max(1, int(np.ceil(exc.retry_after))))
            return exc.status, headers, self._encode(
                {"error": exc.message, "status": exc.status}
            )
        except ServiceRequestError as exc:
            return 400, {}, self._encode({"error": str(exc), "status": 400})
        except Exception as exc:  # noqa: BLE001 — the server must stay up
            self.internal_errors += 1
            return 500, {}, self._encode(
                {"error": f"internal error: {type(exc).__name__}: {exc}", "status": 500}
            )

    @staticmethod
    def _route_label(method: str, path: str) -> str:
        """Collapse parameterised paths so metric labels stay low-cardinality."""
        if path.startswith("/builds/"):
            return "/builds/{token}"
        if path.startswith("/sessions/"):
            return "/sessions/{id}/push" if path.endswith("/push") else "/sessions/{id}"
        if path.startswith("/debug/traces/"):
            return "/debug/traces/{id}"
        known = {
            "/", "/healthz", "/stats", "/metrics", "/v2/batch",
            "/builds", "/sessions", "/debug/traces", "/debug/exemplars",
            "/debug/slo",
        }
        return path if path in known else "(unknown)"

    async def _route(
        self, method: str, path: str, query: Dict[str, List[str]], body: bytes
    ) -> Any:
        if method == "GET":
            if path in ("/", "/healthz"):
                from .. import __version__

                return {
                    "status": "ok",
                    "transport": self.transport,
                    "version": __version__,
                    "uptime_seconds": time.perf_counter() - self._started,
                    "aiohttp_available": aiohttp_available(),
                }
            if path == "/stats":
                return self.stats()
            if path == "/metrics":
                text = self.metrics_text()
                return {"Content-Type": METRICS_CONTENT_TYPE}, text.encode("utf-8")
            if path == "/debug/traces":
                return {
                    "schema": "repro.server.traces",
                    "version": 1,
                    **self.tracer.stats(),
                    "tail_thresholds": self.sampler.route_state(),
                    "traces": self.tracer.summaries(),
                }
            if path.startswith("/debug/traces/"):
                return self._get_trace(path[len("/debug/traces/"):], query)
            if path == "/debug/exemplars":
                return self._get_exemplars()
            if path == "/debug/slo":
                return self.slo.evaluate(self.metrics_snapshot())
            if path == "/builds":
                return {"builds": [dict(rec) for rec in self._builds.values()]}
            if path.startswith("/builds/"):
                return self._get_build(path[len("/builds/"):])
            if path == "/sessions":
                return {"sessions": [self._session_state(sid) for sid in self._sessions]}
            if path.startswith("/sessions/"):
                return self._session_state(self._session_id(path))
            raise _HttpError(404, f"no route for GET {path}")
        if method == "POST":
            document = self._decode(body)
            if path == "/v2/batch":
                return await self._post_batch(document)
            if path == "/builds":
                return await self._post_build(document)
            if path == "/sessions":
                return await self._post_session(document)
            if path.startswith("/sessions/") and path.endswith("/push"):
                sid = self._session_id(path[: -len("/push")])
                return await self._push_session(sid, document)
            raise _HttpError(404, f"no route for POST {path}")
        if method == "DELETE":
            if path.startswith("/sessions/"):
                return self._delete_session(self._session_id(path))
            raise _HttpError(404, f"no route for DELETE {path}")
        raise _HttpError(405, f"method {method} not allowed")

    # ----------------------------------------------------------------- metrics
    def metrics_snapshot(self) -> Dict[str, Any]:
        """The merged metrics snapshot every observability surface reads.

        Merges this process's registry (which includes the shard router's
        per-shard collector when sharded), the shard-stamped worker-process
        snapshots shipped over the router pipes, and point-in-time fragments
        (uptime, build info).  ``/metrics``, ``/debug/exemplars`` and
        ``/debug/slo`` all derive from this one snapshot, so they reconcile
        with each other and with ``/stats`` by construction.
        """
        from .. import __version__

        parts = [get_registry().snapshot()]
        extra = getattr(self.service, "extra_metric_snapshots", None)
        if callable(extra):
            parts.extend(extra())
        parts.append(
            gauge_fragment(
                "repro_server_uptime_seconds",
                time.perf_counter() - self._started,
                "Seconds since this server core started",
            )
        )
        parts.append(
            gauge_fragment(
                "repro_build_info",
                1,
                "Constant 1; the labels carry version and transport",
                labels={"version": __version__, "transport": self.transport},
            )
        )
        return merge_snapshots(*parts)

    def metrics_text(self) -> str:
        """The merged Prometheus exposition for ``GET /metrics``."""
        return render_prometheus(self.metrics_snapshot())

    def _get_exemplars(self) -> Dict[str, Any]:
        """``GET /debug/exemplars``: bucket exemplars resolved against the ring.

        ``retained`` says whether the linked trace is still in the ring
        buffer — an exemplar can outlive its trace once the ring wraps.
        """
        records = exemplars_from_snapshot(self.metrics_snapshot())
        for record in records:
            record["retained"] = self.tracer.get(record["trace_id"]) is not None
        return {
            "schema": "repro.server.exemplars",
            "version": 1,
            "count": len(records),
            "exemplars": records,
        }

    def _get_trace(self, trace_id: str, query: Dict[str, List[str]]) -> Any:
        trace = self.tracer.get(trace_id)
        if trace is None:
            raise _HttpError(404, f"unknown (or evicted) trace {trace_id!r}")
        if query.get("format", [""])[0] == "chrome":
            # Served as a download: a stable filename keyed by the trace ID
            # so "save for chrome://tracing" lands somewhere predictable.
            headers = {
                "Content-Disposition": (
                    f'attachment; filename="repro-trace-{trace.trace_id}.chrome.json"'
                )
            }
            return headers, self._encode(trace.to_chrome())
        return trace.to_jsonable()

    @staticmethod
    def _encode(payload: Any) -> bytes:
        return json.dumps(to_jsonable(payload)).encode("utf-8")

    @staticmethod
    def _decode(body: bytes) -> Any:
        if not body:
            raise _HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None

    # ------------------------------------------------------------------- batch
    async def _post_batch(self, document: Any) -> Any:
        """Deadline plumbing around :meth:`_post_batch_inner`.

        A document-level ``deadline_ms`` can only *tighten* the budget the
        edge already installed from the header / server default — a client
        cannot talk itself into more time than the operator allowed.
        """
        doc_deadline: Optional[Deadline] = None
        if isinstance(document, dict) and document.get("deadline_ms") is not None:
            try:
                budget_ms = float(document["deadline_ms"])
                if budget_ms <= 0:
                    raise ValueError
            except (TypeError, ValueError):
                raise _HttpError(
                    400,
                    f"deadline_ms must be a positive number of milliseconds, "
                    f"got {document['deadline_ms']!r}",
                ) from None
            ambient = current_deadline()
            doc_deadline = (
                ambient.tighten_ms(budget_ms)
                if ambient is not None
                else Deadline.after_ms(budget_ms)
            )
        with deadline_scope(doc_deadline):
            return await self._post_batch_inner(document)

    async def _post_batch_inner(self, document: Any) -> Any:
        received = time.perf_counter()
        defaults, parsed, errors = parse_requests_lenient(
            document, default_seed=self.default_seed
        )
        self.parse_errors += len(errors)
        total = len(parsed) + len(errors)
        self.requests_received += total

        slots: List[Optional[Dict[str, Any]]] = [None] * total
        for err in errors:
            slots[err["index"]] = {
                "id": err["id"],
                "status": "error",
                "error": err["error"],
            }

        if parsed:
            n = len(parsed)
            if n > self.max_inflight:
                self.requests_rejected += total
                _REJECTIONS.inc(total, reason="batch_too_large")
                raise _HttpError(
                    400,
                    f"batch of {n} requests exceeds --max-inflight={self.max_inflight}; "
                    f"split the batch",
                )
            if self.inflight + n > self.max_inflight:
                self.requests_rejected += total
                _REJECTIONS.inc(total, reason="capacity")
                raise _HttpError(
                    429,
                    f"server at capacity ({self.inflight}/{self.max_inflight} "
                    f"requests in flight)",
                    retry_after=self.retry_after_seconds,
                )
            self.inflight += n
            self.peak_inflight = max(self.peak_inflight, self.inflight)
            try:
                # Refreshes mutate the cache, so they never coalesce with
                # other clients; query groups share one pass per group key.
                groups: Dict[Any, List[Tuple[int, QueryRequest]]] = {}
                for idx, request in parsed:
                    if request.op == "refresh":
                        key = ("refresh", idx)
                    else:
                        kind = request.index_kind()
                        strict = bool(request.strict) if kind != "lcs" else True
                        key = (request.target, kind, strict)
                    groups.setdefault(key, []).append((idx, request))
                waiters = [
                    self._submit_requests(key, members, received, coalesce=key[0] != "refresh")
                    for key, members in groups.items()
                ]
                for group_slots in await asyncio.gather(*waiters):
                    for idx, entry in group_slots:
                        slots[idx] = entry
            finally:
                self.inflight -= n

        ok = sum(1 for entry in slots if entry is not None and entry.get("status") == "ok")
        self.requests_answered += ok
        self.requests_failed += total - ok
        expired = sum(
            1 for entry in slots if entry is not None and entry.get("deadline_exceeded")
        )
        degraded = sum(
            1 for entry in slots if entry is not None and entry.get("degraded")
        )
        response = {
            "schema": BATCH_SCHEMA_ID,
            "version": 1,
            "transport": self.transport,
            "trace_id": current_trace_id(),
            "defaults": dict(defaults),
            "results": slots,
            "ok": ok,
            "errors": total - ok,
            "deadline_expired": expired,
            "degraded": degraded,
            "seconds": time.perf_counter() - received,
        }
        if expired and ok == 0:
            # Nothing in the batch beat its budget: the whole response is a
            # structured 504.  Mixed batches stay 200 — expiry is isolated
            # per request in its result entry.
            return _JsonResponse(504, response)
        return response

    async def _submit_requests(
        self,
        key,
        members: List[Tuple[int, QueryRequest]],
        received: float,
        coalesce: bool,
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Answer one group's requests, joining an in-flight pass when possible."""
        requests = [request for _, request in members]
        joined = False
        # The coalesce span covers join/create + the wait for the pass; the
        # pass task is spawned *inside* it, so the route/worker spans of the
        # leading contributor land under its coalesce span (create_task
        # copies the contextvars context).  Joiners record the join only —
        # the pass itself belongs to the trace that started it.
        with span("coalesce", requests=len(requests)) as coalesce_span:
            if coalesce:
                pending = self._pending.get(key)
                if pending is not None and not pending.sealed:
                    offset = pending.add(requests)
                    joined = True
                    self.coalesced_requests += len(requests)
                    _COALESCED.inc(len(requests))
                    span_event(
                        "coalesce_merge", offset=offset, requests=len(requests)
                    )
                else:
                    pending = _PendingPass(key, self._loop)
                    offset = pending.add(requests)
                    self._pending[key] = pending
                    self._spawn(self._run_pass(pending, coalescable=True))
            else:
                pending = _PendingPass(key, self._loop)
                offset = pending.add(requests)
                self._spawn(self._run_pass(pending, coalescable=False))
            if coalesce_span is not None:
                coalesce_span.set(joined=joined)

            deadline = current_deadline()
            try:
                waiter = asyncio.shield(pending.future)
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0.0:
                        waiter.cancel()
                        raise asyncio.TimeoutError
                    batch, pass_started, pass_seconds = await asyncio.wait_for(
                        waiter, timeout=remaining
                    )
                else:
                    batch, pass_started, pass_seconds = await waiter
            except asyncio.CancelledError:
                raise
            except (asyncio.TimeoutError, DeadlineExceeded) as exc:
                # The budget died here at the edge (TimeoutError) or deeper
                # down (DeadlineExceeded, already counted at its stage).
                # Either way: structured per-request errors, the pass itself
                # keeps running for any contributor with budget left.
                if isinstance(exc, asyncio.TimeoutError):
                    note_expiry("edge", requests=len(members))
                pending.future.add_done_callback(_swallow_future_error)
                self.deadline_expired += len(members)
                message = (
                    f"deadline exceeded ({deadline.describe()})"
                    if deadline is not None
                    else f"deadline exceeded: {exc}"
                )
                return [
                    (
                        idx,
                        {
                            "id": request.request_id,
                            "status": "error",
                            "error": message,
                            "deadline_exceeded": True,
                        },
                    )
                    for idx, request in members
                ]
            except Exception as exc:  # noqa: BLE001 — fault isolation per group
                message = f"{type(exc).__name__}: {exc}"
                return [
                    (idx, {"id": request.request_id, "status": "error", "error": message})
                    for idx, request in members
                ]
        queue_seconds = pass_started - received
        self.queue_wait.add(queue_seconds, len(requests))
        self.answer_timing.add(pass_seconds, len(requests))
        _QUEUE_WAIT_SECONDS.observe(queue_seconds)
        _ANSWER_SECONDS.observe(pass_seconds)
        entries: List[Tuple[int, Dict[str, Any]]] = []
        with span("answer", requests=len(members)):
            for slot, (idx, request) in enumerate(members):
                outcome = batch.outcomes[offset + slot]
                degraded = bool(getattr(outcome, "degraded", False))
                if degraded:
                    self.degraded_answers += 1
                entries.append(
                    (
                        idx,
                        {
                            "id": request.request_id,
                            "status": "ok",
                            "degraded": degraded,
                            "op": outcome.op,
                            "target": outcome.target,
                            "index_kind": outcome.index_kind,
                            "index_fingerprint": outcome.index_fingerprint,
                            "cache_hit": outcome.cache_hit,
                            "num_queries": outcome.num_queries,
                            "result": outcome.result,
                            "seconds": outcome.seconds,
                            "queue_wait_seconds": queue_seconds,
                            "pass_seconds": pass_seconds,
                            "coalesced": joined,
                        },
                    )
                )
        return entries

    async def _run_pass(self, pending: _PendingPass, coalescable: bool) -> None:
        """Seal and execute one pending pass on the service thread."""
        try:
            if coalescable and self.coalesce_seconds > 0:
                # A short open window lets near-simultaneous requests join
                # even when the service lock is free.
                await asyncio.sleep(self.coalesce_seconds)
            async with self._service_lock:
                pending.sealed = True
                if self._pending.get(pending.key) is pending:
                    del self._pending[pending.key]
                pass_started = time.perf_counter()
                try:
                    batch = await self._in_service_thread(
                        self.service.submit, list(pending.requests)
                    )
                except Exception as exc:  # noqa: BLE001
                    self.failed_passes += 1
                    if not pending.future.done():
                        pending.future.set_exception(exc)
                    return
                self.passes += 1
                _PASSES.inc()
                if pending.contributions > 1:
                    self.merged_passes += 1
                    _MERGED_PASSES.inc()
                    span_event(
                        "coalesce_merged_pass",
                        contributors=pending.contributions,
                        requests=len(pending.requests),
                    )
                if not pending.future.done():
                    pending.future.set_result(
                        (batch, pass_started, time.perf_counter() - pass_started)
                    )
        finally:
            # Whatever happened, the fingerprint must not stay poisoned.
            pending.sealed = True
            if self._pending.get(pending.key) is pending:
                del self._pending[pending.key]
            if not pending.future.done():
                pending.future.set_exception(
                    RuntimeError("pass abandoned without a result")
                )

    # ------------------------------------------------------------------ builds
    async def _post_build(self, document: Any) -> Dict[str, Any]:
        if not isinstance(document, dict):
            raise _HttpError(400, "build request must be a JSON object")
        queued = sum(
            1 for rec in self._builds.values() if rec["status"] in ("queued", "running")
        )
        if queued >= self.build_queue_limit:
            raise _HttpError(
                429,
                f"build queue full ({queued}/{self.build_queue_limit})",
                retry_after=self.retry_after_seconds,
            )
        target = parse_target(document, "build target", int(self.default_seed or 0))
        kind = document.get("kind")
        if kind is not None and kind not in INDEX_KINDS:
            raise _HttpError(
                400, f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}"
            )
        strict = bool(document.get("strict", True))
        token = f"b{next(self._build_counter)}"
        record = {
            "token": token,
            "status": "queued",
            "target": target.describe(),
            "kind": kind,
            "strict": strict,
            "queued_at_seconds": time.perf_counter() - self._started,
        }
        self._builds[token] = record
        self.builds_started += 1
        self._spawn(self._run_build(token, target, kind, strict))
        return {"token": token, "status": "queued", "poll": f"/builds/{token}"}

    async def _run_build(
        self, token: str, target: TargetSpec, kind: Optional[str], strict: bool
    ) -> None:
        record = self._builds[token]
        queued = time.perf_counter()
        async with self._service_lock:
            record["status"] = "running"
            started = time.perf_counter()
            self.build_wait.add(started - queued)
            try:
                index, was_cached = await self._in_service_thread(
                    self.service.ensure_index, target, kind, strict=strict
                )
            except Exception as exc:  # noqa: BLE001
                record["status"] = "failed"
                record["error"] = f"{type(exc).__name__}: {exc}"
                record["seconds"] = time.perf_counter() - started
                self.builds_failed += 1
                return
            record["status"] = "done"
            record["fingerprint"] = index.fingerprint
            record["kind"] = index.kind
            record["cache_hit"] = was_cached
            record["seconds"] = time.perf_counter() - started
            self.builds_done += 1

    def _get_build(self, token: str) -> Dict[str, Any]:
        record = self._builds.get(token)
        if record is None:
            raise _HttpError(404, f"unknown build token {token!r}")
        return dict(record)

    # ---------------------------------------------------------------- sessions
    @staticmethod
    def _symbols(values: Any, what: str) -> np.ndarray:
        try:
            symbols = np.asarray(values, dtype=np.float64).ravel()
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"{what} must be an array of numbers: {exc}") from None
        if symbols.size == 0:
            raise _HttpError(400, f"{what} must be non-empty")
        return symbols

    @staticmethod
    def _session_id(path: str) -> str:
        sid = path[len("/sessions/"):]
        if not sid or "/" in sid:
            raise _HttpError(404, f"no route for {path}")
        return sid

    def _session_lock(self, sid: str) -> asyncio.Lock:
        """Per-session mutation lock.

        The service semaphore admits up to ``service_concurrency`` calls at
        once, but a streaming session is a single-threaded object — two
        pushes to the *same* session must still serialise.
        """
        lock = self._session_locks.get(sid)
        if lock is None:
            lock = self._session_locks[sid] = asyncio.Lock()
        return lock

    async def _post_session(self, document: Any) -> Dict[str, Any]:
        if not isinstance(document, dict):
            raise _HttpError(400, "session request must be a JSON object")
        kind = document.get("kind", "lis")
        if kind not in ("lis", "lcs"):
            raise _HttpError(400, f"session kind must be 'lis' or 'lcs', got {kind!r}")
        window = document.get("window")
        if window is not None:
            window = int(window)
        strict = bool(document.get("strict", True))
        sid = f"s{next(self._session_counter)}"
        if kind == "lis":
            session = StreamingLIS(window=window, strict=strict)
            initial = document.get("push")
        else:
            target = parse_target(document, "session target", int(self.default_seed or 0))
            if target.kind != "string_pair":
                raise _HttpError(400, "lcs sessions need a string-pair target")
            s, _t = target.realise()
            session = StreamingLCS(s, window=window)
            initial = document.get("push")
        meta = {
            "id": sid,
            "kind": kind,
            "window": window,
            "strict": strict if kind == "lis" else True,
            "target": document.get("string_workload") or document.get("workload"),
        }
        initial_symbols = (
            self._symbols(initial, "'push'") if initial is not None else None
        )
        async with self._session_lock(sid), self._service_lock:
            self._sessions[sid] = session
            self._session_meta[sid] = meta
            if initial_symbols is not None:
                await self._in_service_thread(session.push, initial_symbols)
        return self._session_state(sid)

    async def _push_session(self, sid: str, document: Any) -> Dict[str, Any]:
        session = self._sessions.get(sid)
        if session is None:
            raise _HttpError(404, f"unknown session {sid!r}")
        if not isinstance(document, dict) or "symbols" not in document:
            raise _HttpError(400, "push needs a JSON object with 'symbols'")
        symbols = self._symbols(document["symbols"], "'symbols'")
        async with self._session_lock(sid), self._service_lock:
            dropped = await self._in_service_thread(session.push, symbols)
        state = self._session_state(sid)
        state["dropped"] = int(dropped)
        return state

    def _session_state(self, sid: str) -> Dict[str, Any]:
        session = self._sessions.get(sid)
        if session is None:
            raise _HttpError(404, f"unknown session {sid!r}")
        meta = self._session_meta[sid]
        counters = session.counters()
        if meta["kind"] == "lis":
            size = len(session)
            answer = session.lis_length() if size else 0
        else:
            size = session.t_length
            answer = session.lcs_length() if size else 0
        return {
            **meta,
            "size": int(size),
            "answer": int(answer),
            "ticks": int(counters.get("ticks", 0)),
            "multiplies": int(counters.get("multiplies", 0)),
            "blocks_built": int(counters.get("blocks_built", 0)),
        }

    def _delete_session(self, sid: str) -> Dict[str, Any]:
        if sid not in self._sessions:
            raise _HttpError(404, f"unknown session {sid!r}")
        del self._sessions[sid]
        del self._session_meta[sid]
        self._session_locks.pop(sid, None)
        return {"id": sid, "status": "deleted"}

    # ------------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` document: honest queue depths and timing aggregates."""
        return {
            "schema": STATS_SCHEMA_ID,
            "version": STATS_SCHEMA_VERSION,
            "stats_schema": f"{STATS_SCHEMA_ID}.v{STATS_SCHEMA_VERSION}",
            "transport": self.transport,
            "aiohttp_available": aiohttp_available(),
            "uptime_seconds": time.perf_counter() - self._started,
            "max_inflight": self.max_inflight,
            "service_concurrency": self.service_concurrency,
            "inflight": self.inflight,
            "peak_inflight": self.peak_inflight,
            "coalesce_seconds": self.coalesce_seconds,
            "build_queue_limit": self.build_queue_limit,
            "internal_errors": self.internal_errors,
            "requests": {
                "received": self.requests_received,
                "answered": self.requests_answered,
                "rejected": self.requests_rejected,
                "failed": self.requests_failed,
                "parse_errors": self.parse_errors,
                "deadline_expired": self.deadline_expired,
                "degraded": self.degraded_answers,
            },
            "resilience": {
                "default_deadline_ms": self.default_deadline_ms,
                "alerts": (
                    self.alert_emitter.stats()
                    if self.alert_emitter is not None
                    else None
                ),
                "slo_history_path": self.slo.history_path,
            },
            "coalescing": {
                "passes": self.passes,
                "merged_passes": self.merged_passes,
                "coalesced_requests": self.coalesced_requests,
                "failed_passes": self.failed_passes,
                "inflight_fingerprints": len(self._pending),
            },
            "builds": {
                "started": self.builds_started,
                "done": self.builds_done,
                "failed": self.builds_failed,
                "queued": sum(
                    1
                    for rec in self._builds.values()
                    if rec["status"] in ("queued", "running")
                ),
                "limit": self.build_queue_limit,
            },
            "sessions": {"live": len(self._sessions)},
            # Tracing and SLO read the same counters /metrics and /debug/slo
            # use, so the surfaces reconcile by construction.
            "tracing": self.tracer.stats(),
            "slo": self.slo.totals_summary(self.metrics_snapshot()),
            "timings": {
                "queue_wait": self.queue_wait.summary(),
                "answer": self.answer_timing.summary(),
                "build_wait": self.build_wait.summary(),
            },
            "service": self.service.stats(),
        }
