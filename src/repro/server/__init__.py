"""Async HTTP front-end over the query-serving subsystem.

The server package puts a network face on :class:`~repro.service.serving.QueryService`:

* :mod:`~repro.server.core` — :class:`ServerCore`, the transport-agnostic
  brain: routing (``/v2/batch``, ``/builds``, ``/sessions``, ``/stats``),
  per-fingerprint request coalescing, admission control with honest 429 +
  ``Retry-After`` backpressure, background index builds and streaming
  sessions, all serialised onto one service thread;
* :mod:`~repro.server.transport` — the stdlib transports (``asyncio`` codec
  and ``ThreadingHTTPServer`` bridge) behind :func:`start_server`;
* :mod:`~repro.server.loadgen` — the open/closed-loop load generator behind
  the registered ``service_latency`` experiment.

``python -m repro serve-http`` is the CLI entry point.
"""

from .core import BATCH_SCHEMA_ID, STATS_SCHEMA_ID, ServerCore, aiohttp_available
from .loadgen import LoadReport, get_json, post_json, run_load
from .transport import TRANSPORTS, ServerHandle, detect_transport, start_server

__all__ = [
    "BATCH_SCHEMA_ID",
    "STATS_SCHEMA_ID",
    "ServerCore",
    "aiohttp_available",
    "LoadReport",
    "get_json",
    "post_json",
    "run_load",
    "TRANSPORTS",
    "ServerHandle",
    "detect_transport",
    "start_server",
]
