"""In-process load generator for the HTTP front-end.

Drives a running server with the two canonical arrival patterns:

``closed``
    ``concurrency`` workers each issue the next request as soon as the
    previous one answers — measures saturated throughput and the latency
    the server *chooses* under full load.
``open``
    Requests arrive on a fixed schedule (``rate`` per second) regardless of
    completions — measures latency under an offered load the server cannot
    slow down, the pattern where queueing delay actually shows.

Both report p50/p95/p99/max latency over successful requests, sustained
QPS, and the per-variant answer payloads so callers can assert bit-identity
against a serial :class:`~repro.service.serving.QueryService` oracle.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import DEFAULT_TIME_BUCKETS, histogram_quantile

__all__ = [
    "LoadReport",
    "PERCENTILE_METHOD",
    "get_json",
    "percentile_linear",
    "post_json",
    "run_load",
]

#: Recorded in every latency artifact so readers know exactly what the
#: pXX numbers mean (and that the histogram-derived quantiles should agree
#: within one bucket width).
PERCENTILE_METHOD = (
    "linear interpolation (Hyndman-Fan R-7, the numpy default): "
    "h = (n-1)*q/100; x[floor(h)] + (h-floor(h)) * (x[floor(h)+1] - x[floor(h)])"
)


def percentile_linear(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by R-7 linear interpolation.

    Explicit so the artifact method string above is the literal code, not a
    library default that could drift: sort, take ``h = (n-1)*q/100``, and
    interpolate between the two order statistics bracketing ``h``.  Matches
    ``np.percentile(values, q)`` bit-for-bit (the tests pin that).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    h = (len(ordered) - 1) * q / 100.0
    lo = int(h)
    frac = h - lo
    if lo + 1 >= len(ordered):
        return ordered[-1]
    return ordered[lo] + frac * (ordered[lo + 1] - ordered[lo])


def post_json(
    url: str,
    payload: Any,
    timeout: float = 30.0,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, str], Any]:
    """POST a JSON document; returns ``(status, headers, parsed_body)``.

    HTTP error statuses (4xx/5xx) are returned, not raised — the load
    generator must count 429s, not crash on them.  ``headers`` adds or
    overrides request headers (e.g. ``X-Repro-Deadline-Ms``).
    """
    body = json.dumps(payload).encode("utf-8")
    request_headers = {"Content-Type": "application/json"}
    if headers:
        request_headers.update(headers)
    request = urllib.request.Request(
        url, data=body, headers=request_headers, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.load(response)
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": raw.decode("utf-8", "replace")}
        return exc.code, dict(exc.headers), parsed


def get_json(url: str, timeout: float = 30.0) -> Tuple[int, Dict[str, str], Any]:
    """GET a JSON document; returns ``(status, headers, parsed_body)``."""
    request = urllib.request.Request(url, method="GET")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.load(response)
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": raw.decode("utf-8", "replace")}
        return exc.code, dict(exc.headers), parsed


@dataclass
class LoadReport:
    """What one load run measured."""

    pattern: str
    requests: int
    ok: int
    rejected: int
    failed: int
    seconds: float
    qps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    #: Fixed-log-bucket latency histogram: ``{"bounds": [...], "counts":
    #: [...]}`` (seconds; counts has one extra +Inf slot).  The
    #: histogram-derived quantiles below must agree with the exact pXX
    #: values above within one bucket width — the tests pin that.
    latency_hist: Dict[str, Any] = field(default_factory=dict)
    hist_p50_ms: float = 0.0
    hist_p95_ms: float = 0.0
    hist_p99_ms: float = 0.0
    percentile_method: str = PERCENTILE_METHOD
    #: The requests at or above the run's p99, each citing the server-side
    #: trace ID its batch response carried — so a recorded tail latency is
    #: one ``GET /debug/traces/<id>`` away from its span tree (tail-based
    #: retention keeps exactly these traces even under head sampling).
    tail_exemplars: List[Dict[str, Any]] = field(default_factory=list)
    #: ``variant index -> list of per-request 'results' arrays`` (for
    #: bit-identity assertions against a serial oracle).
    answers: Dict[int, List[Any]] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "pattern": self.pattern,
            "requests": self.requests,
            "ok": self.ok,
            "rejected": self.rejected,
            "failed": self.failed,
            "seconds": self.seconds,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
            "hist_p50_ms": self.hist_p50_ms,
            "hist_p95_ms": self.hist_p95_ms,
            "hist_p99_ms": self.hist_p99_ms,
            "latency_hist": dict(self.latency_hist),
            "percentile_method": self.percentile_method,
            "tail_exemplars": [dict(entry) for entry in self.tail_exemplars],
        }


def run_load(
    url: str,
    documents: Sequence[Any],
    *,
    pattern: str = "closed",
    total: int = 64,
    concurrency: int = 8,
    rate: float = 64.0,
    duration: float = 1.0,
    timeout: float = 30.0,
) -> LoadReport:
    """Drive ``POST {url}/v2/batch`` with ``documents`` cycled round-robin.

    ``closed``: ``total`` requests split across ``concurrency`` workers.
    ``open``: arrivals scheduled every ``1/rate`` seconds for ``duration``
    seconds (``total`` caps the request count).
    """
    if pattern not in ("closed", "open"):
        raise ValueError(f"pattern must be 'closed' or 'open', got {pattern!r}")
    if not documents:
        raise ValueError("documents must be non-empty")
    endpoint = url.rstrip("/") + "/v2/batch"

    latencies: List[float] = []
    trace_ids: List[Tuple[float, Any]] = []  # (latency_s, trace_id or None)
    outcomes = {"ok": 0, "rejected": 0, "failed": 0}
    answers: Dict[int, List[Any]] = {}
    lock = threading.Lock()

    def fire(variant: int) -> None:
        started = time.perf_counter()
        try:
            status, _headers, parsed = post_json(
                endpoint, documents[variant], timeout=timeout
            )
        except Exception:  # noqa: BLE001 — connection failures count as failed
            with lock:
                outcomes["failed"] += 1
            return
        elapsed = time.perf_counter() - started
        with lock:
            if status == 200:
                outcomes["ok"] += 1
                latencies.append(elapsed)
                trace_ids.append((elapsed, parsed.get("trace_id")))
                answers.setdefault(variant, []).append(
                    [entry.get("result") for entry in parsed.get("results", [])]
                )
            elif status == 429:
                outcomes["rejected"] += 1
            else:
                outcomes["failed"] += 1

    started = time.perf_counter()
    if pattern == "closed":
        counter = {"next": 0}

        def worker() -> None:
            while True:
                with lock:
                    n = counter["next"]
                    if n >= total:
                        return
                    counter["next"] = n + 1
                fire(n % len(documents))

        threads = [threading.Thread(target=worker) for _ in range(max(1, concurrency))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        issued = total
    else:
        interval = 1.0 / max(rate, 1e-9)
        count = min(int(total), max(1, int(np.floor(duration * rate))))
        with ThreadPoolExecutor(max_workers=max(4, concurrency)) as pool:
            futures = []
            for n in range(count):
                target_time = started + n * interval
                delay = target_time - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(pool.submit(fire, n % len(documents)))
            for future in futures:
                future.result()
        issued = count
    seconds = time.perf_counter() - started

    bounds = list(DEFAULT_TIME_BUCKETS)
    counts = [0] * (len(bounds) + 1)
    for value in latencies:
        slot = len(bounds)
        for i, bound in enumerate(bounds):
            if value <= bound:
                slot = i
                break
        counts[slot] += 1
    if latencies:
        arr_ms = [value * 1000.0 for value in latencies]
        p50, p95, p99 = (percentile_linear(arr_ms, q) for q in (50, 95, 99))
        mx = max(arr_ms)
        hist_p50, hist_p95, hist_p99 = (
            histogram_quantile(q / 100.0, bounds, counts) * 1000.0
            for q in (50, 95, 99)
        )
    else:
        p50 = p95 = p99 = mx = 0.0
        hist_p50 = hist_p95 = hist_p99 = 0.0
    tail_exemplars: List[Dict[str, Any]] = []
    if latencies:
        threshold_s = p99 / 1000.0
        tail_exemplars = sorted(
            (
                {"latency_ms": lat * 1000.0, "trace_id": trace_id}
                for lat, trace_id in trace_ids
                if lat >= threshold_s and trace_id
            ),
            key=lambda entry: -entry["latency_ms"],
        )[:16]
    return LoadReport(
        pattern=pattern,
        requests=issued,
        ok=outcomes["ok"],
        rejected=outcomes["rejected"],
        failed=outcomes["failed"],
        seconds=seconds,
        qps=outcomes["ok"] / seconds if seconds > 0 else 0.0,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        max_ms=mx,
        latency_hist={"bounds": bounds, "counts": counts},
        hist_p50_ms=hist_p50,
        hist_p95_ms=hist_p95,
        hist_p99_ms=hist_p99,
        tail_exemplars=tail_exemplars,
        answers=answers,
    )
