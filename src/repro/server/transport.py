"""Network transports for the HTTP front-end.

Two stdlib transports drive the same :class:`~repro.server.core.ServerCore`:

``asyncio`` (default)
    ``asyncio.start_server`` with a minimal HTTP/1.1 codec, run on a
    dedicated event-loop thread so :func:`start_server` works from
    synchronous callers (tests, the CLI, the load generator).
``thread``
    ``http.server.ThreadingHTTPServer`` whose handler threads bridge each
    request into the core's event loop with
    ``asyncio.run_coroutine_threadsafe`` — the fallback shape for
    environments where the asyncio codec is undesirable.

aiohttp would be the preferred transport but is not installed in this
environment; :func:`detect_transport` records that fact so artifacts stay
honest about what actually served the traffic
(:func:`repro.server.core.aiohttp_available`).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional

from .core import ServerCore

__all__ = ["TRANSPORTS", "ServerHandle", "detect_transport", "start_server"]

#: The transports this build can actually serve with (stdlib only).
TRANSPORTS = ("asyncio", "thread")

_MAX_BODY_BYTES = 64 * 1024 * 1024


def detect_transport(requested: Optional[str] = None) -> str:
    """Resolve a transport name (``None``/``'auto'`` → best available)."""
    if requested in (None, "auto"):
        # aiohttp, were it installed, would win here; the stdlib asyncio
        # codec is the best always-available option.
        return "asyncio"
    if requested not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {requested!r}; expected one of {TRANSPORTS + ('auto',)}"
        )
    return requested


@dataclass
class ServerHandle:
    """A running server: address, core (for stats) and a stop switch."""

    core: ServerCore
    host: str
    port: int
    transport: str
    _stop: Callable[[], None] = field(repr=False, default=lambda: None)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        self._stop()


async def _serve_connection(
    core: ServerCore, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """One HTTP/1.1 exchange over the asyncio transport (close after answer)."""
    try:
        request_line = await reader.readline()
        if not request_line:
            return
        try:
            method, path, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            writer.write(b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n")
            await writer.drain()
            return
        content_length = 0
        request_headers: dict = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            request_headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > _MAX_BODY_BYTES:
            writer.write(b"HTTP/1.1 413 Payload Too Large\r\nContent-Length: 0\r\n\r\n")
            await writer.drain()
            return
        body = await reader.readexactly(content_length) if content_length else b""
        status, extra_headers, payload = await core.handle(
            method, path, body, headers=request_headers
        )
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 429: "Too Many Requests",
                  500: "Internal Server Error",
                  503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(status, "OK")
        # The handler may override Content-Type (/metrics serves Prometheus
        # text); everything else is JSON.
        content_type = extra_headers.pop("Content-Type", "application/json")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        headers.extend(f"{name}: {value}" for name, value in extra_headers.items())
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + payload)
        await writer.drain()
    except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _start_asyncio(core: ServerCore, host: str, port: int):
    """Run ``asyncio.start_server`` on a dedicated event-loop thread."""
    ready = threading.Event()
    bound = {}
    stop_event: dict = {}

    async def main() -> None:
        await core.startup()
        stop_event["event"] = asyncio.Event()
        stop_event["loop"] = asyncio.get_running_loop()
        server = await asyncio.start_server(
            lambda r, w: _serve_connection(core, r, w), host, port
        )
        bound["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        try:
            async with server:
                await stop_event["event"].wait()
        finally:
            await core.shutdown()

    thread = threading.Thread(target=lambda: asyncio.run(main()), daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("asyncio transport failed to start within 30s")

    def stop() -> None:
        loop = stop_event.get("loop")
        event = stop_event.get("event")
        if loop is not None and event is not None and not loop.is_closed():
            loop.call_soon_threadsafe(event.set)
        thread.join(timeout=10)

    return bound["port"], stop


def _start_thread(core: ServerCore, host: str, port: int):
    """ThreadingHTTPServer whose handlers bridge into the core's event loop."""
    loop = asyncio.new_event_loop()
    loop_thread = threading.Thread(target=loop.run_forever, daemon=True)
    loop_thread.start()
    asyncio.run_coroutine_threadsafe(core.startup(), loop).result(timeout=30)

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _dispatch(self) -> None:
            length = int(self.headers.get("Content-Length", 0) or 0)
            if length > _MAX_BODY_BYTES:
                self.send_error(413)
                return
            body = self.rfile.read(length) if length else b""
            request_headers = {
                name.lower(): value for name, value in self.headers.items()
            }
            status, extra_headers, payload = asyncio.run_coroutine_threadsafe(
                core.handle(self.command, self.path, body, headers=request_headers),
                loop,
            ).result(timeout=300)
            self.send_response(status)
            content_type = extra_headers.pop("Content-Type", "application/json")
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            for name, value in extra_headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        do_GET = do_POST = do_DELETE = _dispatch

        def log_message(self, *args) -> None:  # noqa: D102 — keep stdio clean
            pass

    httpd = ThreadingHTTPServer((host, port), Handler)
    httpd.daemon_threads = True
    serve_thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    serve_thread.start()

    def stop() -> None:
        httpd.shutdown()
        httpd.server_close()
        serve_thread.join(timeout=10)
        asyncio.run_coroutine_threadsafe(core.shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        loop_thread.join(timeout=10)
        loop.close()

    return httpd.server_address[1], stop


def start_server(
    service: Optional[Any] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    transport: Optional[str] = None,
    max_inflight: int = 64,
    build_queue_limit: int = 8,
    coalesce_seconds: float = 0.002,
    retry_after_seconds: float = 1.0,
    default_seed: Optional[int] = None,
    trace_capacity: int = 128,
    sampler: Optional[Any] = None,
    slo_engine: Optional[Any] = None,
    default_deadline_ms: Optional[float] = None,
    alert_emitter: Optional[Any] = None,
    slo_eval_seconds: float = 5.0,
) -> ServerHandle:
    """Start an HTTP front-end; returns a :class:`ServerHandle` (``port=0`` ⇒ ephemeral).

    ``sampler`` (:class:`~repro.obs.sampling.TraceSampler`) and
    ``slo_engine`` (:class:`~repro.obs.slo.SLOEngine`) configure trace
    retention and the ``/debug/slo`` objectives; ``None`` means the core's
    defaults (keep every trace, stock objectives).  ``default_deadline_ms``
    puts a budget on every batch that does not send its own
    ``X-Repro-Deadline-Ms``; ``alert_emitter``
    (:class:`~repro.obs.alerts.AlertEmitter`) turns on the periodic SLO
    evaluation loop (every ``slo_eval_seconds``) with deduplicated
    page/ticket emission.

    The caller owns the handle: ``handle.stop()`` tears the transport and the
    core down (idempotent teardown is the transports' problem, not yours).
    """
    resolved = detect_transport(transport)
    core = ServerCore(
        service,
        max_inflight=max_inflight,
        build_queue_limit=build_queue_limit,
        coalesce_seconds=coalesce_seconds,
        retry_after_seconds=retry_after_seconds,
        default_seed=default_seed,
        transport=resolved,
        trace_capacity=trace_capacity,
        sampler=sampler,
        slo_engine=slo_engine,
        default_deadline_ms=default_deadline_ms,
        alert_emitter=alert_emitter,
        slo_eval_seconds=slo_eval_seconds,
    )
    if resolved == "asyncio":
        bound_port, stop = _start_asyncio(core, host, port)
    else:
        bound_port, stop = _start_thread(core, host, port)
    return ServerHandle(core=core, host=host, port=bound_port, transport=resolved, _stop=stop)
