"""Block-product reuse: patch a built value-interval matrix in place.

The service layer's indexes (:class:`repro.service.index.SemiLocalIndex`)
wrap one expensive build product.  When the indexed sequence *grows*, the
associativity of ``⊡`` means the old product is a perfectly good left
operand: relabel it into the extended rank universe, build a block product
for just the appended suffix, and multiply **once** —

    ``P(old + suffix)  =  embed(P(old))  ⊡  embed(P(suffix))``

The result is bit-identical to a from-scratch rebuild (the recomposition
only re-brackets the same product) at the cost of one suffix build plus one
multiplication instead of the whole O(n log n) recursion.  This is the patch
path behind the ``refresh`` request kind of ``repro.service.requests`` v2.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.seaweed import multiply
from ..lis.semilocal import SemiLocalLIS
from .aggregator import BlockProduct, MultiplyFn, build_block_product, combine_block_products

__all__ = ["block_product_from_semilocal", "extend_value_matrix"]


def block_product_from_semilocal(
    semilocal: SemiLocalLIS, values: Sequence[float], *, strict: bool = True, arrival_offset: int = 0
) -> BlockProduct:
    """Re-key a built value-interval matrix as a streaming block product.

    ``values`` must be the exact sequence the matrix was built over; the
    reconstructed keys (value, ±position) reproduce the rank universe of
    :func:`repro.lis.semilocal.rank_transform`, so the matrix can be merged
    with other block products.
    """
    if semilocal.kind != "value":
        raise ValueError(f"block products need a value-interval matrix, got kind={semilocal.kind!r}")
    values = np.asarray(values, dtype=np.float64)
    if len(values) != semilocal.length:
        raise ValueError(
            f"sequence length {len(values)} does not match the matrix length {semilocal.length}"
        )
    arrivals = arrival_offset + np.arange(len(values), dtype=np.int64)
    ties = -arrivals if strict else arrivals
    order = np.lexsort((ties, values))
    return BlockProduct(semilocal.matrix, values[order], ties[order])


def extend_value_matrix(
    semilocal: SemiLocalLIS,
    old_values: Sequence[float],
    suffix: Sequence[float],
    *,
    strict: bool = True,
    multiply_fn: Optional[MultiplyFn] = None,
) -> SemiLocalLIS:
    """``value_interval_matrix(old + suffix)`` by reusing the old product.

    Returns a new :class:`SemiLocalLIS` over the extended sequence whose
    matrix is bit-identical to a full rebuild.  ``semilocal`` must be the
    value-interval matrix of ``old_values`` built with the same ``strict``.
    """
    fn = multiply_fn if multiply_fn is not None else multiply
    suffix = np.asarray(suffix, dtype=np.float64)
    old_values = np.asarray(old_values, dtype=np.float64)
    if suffix.size == 0:
        return semilocal
    old_block = block_product_from_semilocal(semilocal, old_values, strict=strict)
    arrivals = len(old_values) + np.arange(len(suffix), dtype=np.int64)
    suffix_block = build_block_product(suffix, -arrivals if strict else arrivals, fn)
    combined = combine_block_products(old_block, suffix_block, fn)
    return SemiLocalLIS(matrix=combined.matrix, kind="value", length=combined.size)
