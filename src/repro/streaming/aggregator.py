"""The seaweed segment tree: incremental semi-local recomposition.

The (sub)unit-Monge product ``⊡`` is associative, so the value-interval
semi-local matrix of a sequence (Theorem 1.3) factors over *any* bracketing
of its elements in position order — not just the balanced recursion of
:func:`repro.lis.semilocal.value_interval_matrix`.  This module exploits that
monoid structure for streams:

* A :class:`BlockProduct` is the semi-local product of one contiguous run of
  window elements, carried together with the run's sorted *keys* (the
  ``(value, tie-break)`` pairs whose lexicographic order defines the rank
  universe).  Two adjacent runs merge with one relabel-and-multiply — the
  same ``embed_into_universe`` + ``multiply`` step used by the batch builders.
* A :class:`SeaweedAggregator` shards the current window into leaf blocks,
  memoizes aligned tree nodes over sealed leaves in an ``nbytes``-aware
  :class:`NodeStore`, and supports ``append`` / ``evict`` / ``update`` by
  touching only the affected leaf plus the O(log n) node path above it —
  never a full rebuild.  As the window slides, each tree node is multiplied
  once per lifetime, so the amortised per-element maintenance cost is the
  build cost divided by the window length.
* Per-tick answers do **not** require recombining the root: the aggregator
  evaluates semi-local scores directly over the O(log n) cover products with
  an exact (max,+) *seam sweep* (:func:`cover_scores`), which applies the
  factorisation ``T(x, y) = max_v (T_left(x, v) + T_right(v, y))`` across the
  cover without materialising any product.  The true root product (needed for
  window sweeps, snapshots and the service refresh path) is folded on demand
  and cached until the next mutation.

Leaf builds are dispatched through the PR-2 execution engine
(:mod:`repro.mpc.engine`), so ``backend='thread'`` parallelises multi-leaf
appends; every backend produces bit-identical products.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.permutation import SubPermutation
from ..core.plan import MultiplyPlan
from ..core.seaweed import multiply
from ..lis.semilocal import (
    DENSE_BLOCK_SIZE,
    SemiLocalLIS,
    _build_recursive,
    embed_into_universe,
    validate_intervals,
)
from ..mpc.engine import ExecutionBackend, resolve_backend

__all__ = [
    "MultiplyFn",
    "BlockProduct",
    "NodeStore",
    "AggregatorStats",
    "SeaweedAggregator",
    "build_block_product",
    "combine_block_products",
    "merge_key_slots",
    "cover_scores",
    "multi_cover_scores",
]

MultiplyFn = Callable[[SubPermutation, SubPermutation], SubPermutation]

#: Sentinel for "no chain reaches this corner" in the seam sweep.  Large
#: enough that adding window-sized scores can never wrap back above zero.
_NEG_INF = np.int64(-(1 << 40))

#: Upper bound on seam-sweep temporaries (int64 entries per chunk).
_SWEEP_CHUNK_ENTRIES = 1 << 22


def _lexicographic_ranks(values: np.ndarray, ties: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(order, ranks)`` of the ``(value, tie)`` pairs, ties decided by ``tie``.

    This is :func:`repro.lis.semilocal.rank_transform` generalised to explicit
    tie-break keys: strict sessions pass ``tie = -arrival`` (equal values can
    never chain), non-strict sessions pass ``tie = +arrival``.
    """
    order = np.lexsort((ties, values))
    ranks = np.empty(len(values), dtype=np.int64)
    ranks[order] = np.arange(len(values), dtype=np.int64)
    return order, ranks


class BlockProduct:
    """The semi-local product of one contiguous element run, plus its keys.

    ``matrix`` is the value-interval sub-permutation over the run's compacted
    rank universe; ``key_values`` / ``key_ties`` are the run's keys sorted by
    ``(value, tie)`` — rank ``t`` of the universe is the ``t``-th key pair.
    The dense distribution matrix used by the seam sweep is materialised
    lazily and counted in :attr:`nbytes` (it is the dominant resident cost of
    hot nodes).
    """

    __slots__ = ("matrix", "key_values", "key_ties", "_dense")

    def __init__(self, matrix: SubPermutation, key_values: np.ndarray, key_ties: np.ndarray) -> None:
        self.matrix = matrix
        self.key_values = key_values
        self.key_ties = key_ties
        self._dense: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return len(self.key_values)

    @property
    def nbytes(self) -> int:
        """Resident bytes: matrix + keys + the lazily built dense table."""
        total = (
            int(self.matrix.nbytes)
            + int(self.key_values.nbytes)
            + int(self.key_ties.nbytes)
        )
        if self._dense is not None:
            total += int(self._dense.nbytes)
        return total

    def dense_distribution(self) -> np.ndarray:
        """The ``(s+1) x (s+1)`` distribution table ``K`` (int32, cached)."""
        if self._dense is None:
            self._dense = self.matrix.distribution_matrix().astype(np.int32)
        return self._dense

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockProduct(size={self.size}, nnz={self.matrix.num_nonzeros})"


def empty_block_product() -> BlockProduct:
    """The monoid identity: zero elements, the 0x0 matrix."""
    return BlockProduct(
        SubPermutation.empty(0, 0),
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.int64),
    )


def build_block_product(
    values: np.ndarray,
    ties: np.ndarray,
    multiply_fn: MultiplyFn = multiply,
    dense_block_size: int = DENSE_BLOCK_SIZE,
) -> BlockProduct:
    """Build one run's product from scratch (``_build_recursive`` machinery).

    ``values`` are in *window order*; ``ties`` are the per-element tie-break
    keys (see :func:`_lexicographic_ranks`).
    """
    values = np.asarray(values, dtype=np.float64)
    ties = np.asarray(ties, dtype=np.int64)
    m = len(values)
    order, ranks = _lexicographic_ranks(values, ties)
    matrix = _build_recursive(
        np.arange(m, dtype=np.int64), ranks, multiply_fn, dense_block_size
    )
    return BlockProduct(matrix, values[order], ties[order])


def merge_key_slots(
    left: BlockProduct, right: BlockProduct
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merge two sorted key runs: ``(values, ties, left_slots, right_slots)``.

    ``left_slots[t]`` is the merged-universe rank of the left run's ``t``-th
    key (strictly increasing — the relabelling map of the paper's §4.2).
    """
    values = np.concatenate([left.key_values, right.key_values])
    ties = np.concatenate([left.key_ties, right.key_ties])
    order = np.lexsort((ties, values))
    rank = np.empty(len(values), dtype=np.int64)
    rank[order] = np.arange(len(values), dtype=np.int64)
    return values[order], ties[order], rank[: left.size], rank[left.size :]


def combine_block_products(
    left: BlockProduct, right: BlockProduct, multiply_fn: MultiplyFn = multiply
) -> BlockProduct:
    """``left ⊡ right`` for adjacent runs: relabel into the union and multiply."""
    if left.size == 0:
        return right
    if right.size == 0:
        return left
    values, ties, left_slots, right_slots = merge_key_slots(left, right)
    universe = len(values)
    left_embedded = embed_into_universe(left.matrix, left_slots, universe)
    right_embedded = embed_into_universe(right.matrix, right_slots, universe)
    return BlockProduct(multiply_fn(left_embedded, right_embedded), values, ties)


# ----------------------------------------------------------------- seam sweep
def _part_slots(parts: Sequence[BlockProduct]) -> Tuple[int, List[np.ndarray]]:
    """Global ranks of every part's keys within the union key universe."""
    if not parts:
        return 0, []
    values = np.concatenate([part.key_values for part in parts])
    ties = np.concatenate([part.key_ties for part in parts])
    order = np.lexsort((ties, values))
    rank = np.empty(len(values), dtype=np.int64)
    rank[order] = np.arange(len(values), dtype=np.int64)
    slots: List[np.ndarray] = []
    offset = 0
    for part in parts:
        slots.append(rank[offset : offset + part.size])
        offset += part.size
    return len(values), slots


def _sweep_one_part(D: np.ndarray, part: BlockProduct, slots: np.ndarray) -> np.ndarray:
    """One (max,+) step of the seam sweep: fold ``part`` into the corner rows.

    ``D[r, v]`` is the best score of a chain through the previous parts whose
    last rank is ``< v`` (one row per simultaneous left corner); the step
    computes ``D'(v) = max(D(v), max_{p < a(v)} [D(e_p) + S(p, a(v))])``
    where ``e`` are the part's global key ranks, ``a(v) = #e < v`` and ``S``
    is the part's local semi-local score ``(q - p) - K(p, q)``.  Because
    every row of ``D`` is non-decreasing, the best threshold inside bucket
    ``p`` is its right endpoint ``e_p`` — which is what makes the step a
    dense vectorised pass.
    """
    s = part.size
    if s == 0:
        return D
    rows = D.shape[0]
    K = part.dense_distribution()
    G = D[:, slots]  # (rows, s): best previous score per local bucket
    p_idx = np.arange(s, dtype=np.int64)
    base = G - p_idx[None, :]
    q_idx = np.arange(s + 1, dtype=np.int64)
    H = np.full((rows, s + 1), _NEG_INF, dtype=np.int64)
    chunk = max(1, _SWEEP_CHUNK_ENTRIES // max(1, rows * s))
    for lo in range(0, s + 1, chunk):
        hi = min(s + 1, lo + chunk)
        q = q_idx[lo:hi]
        cand = base[:, :, None] + q[None, None, :] - K[None, :s, lo:hi].astype(np.int64)
        np.copyto(cand, _NEG_INF, where=(p_idx[:, None] >= q[None, :])[None, :, :])
        H[:, lo:hi] = cand.max(axis=1, initial=_NEG_INF)
    corners = np.arange(D.shape[1], dtype=np.int64)
    a_v = np.searchsorted(slots, corners, side="left")
    return np.maximum(D, H[:, a_v])


def multi_cover_scores(
    parts: Sequence[BlockProduct],
    slots: Sequence[np.ndarray],
    m: int,
    xs: np.ndarray,
) -> np.ndarray:
    """Corner-score rows ``T(x_r, ·)`` over a cover, all rows in one sweep.

    ``parts`` are the cover products in window (split) order with their
    precomputed global key ranks ``slots``; ``xs`` are the left corners (one
    output row each).  This is the (max,+) expansion of the ⊡ product
    restricted to corner rows — answers are identical to querying the
    multiplied-out root product, at O(rows · sum of part sizes squared)
    vectorised work instead of a chain of full multiplications.
    """
    xs = np.asarray(xs, dtype=np.int64)
    corners = np.arange(m + 1, dtype=np.int64)
    D = np.where(corners[None, :] >= xs[:, None], np.int64(0), _NEG_INF)
    for part, part_slots in zip(parts, slots):
        D = _sweep_one_part(D, part, part_slots)
    return np.maximum(D, 0)


def cover_scores(parts: Sequence[BlockProduct], x: int, y: np.ndarray) -> np.ndarray:
    """Exact semi-local scores ``T(x, y_j)`` over a cover, without a root."""
    m, slots = _part_slots(parts)
    y = np.asarray(y, dtype=np.int64)
    D = multi_cover_scores(parts, slots, m, np.asarray([x], dtype=np.int64))
    return D[0, y]


def _leaf_build_task(item: Tuple[np.ndarray, np.ndarray, MultiplyFn], _index: int):
    """Backend-mapped leaf build: ``(values, ties, multiply_fn) -> (product, multiplies)``.

    Pure with respect to shared state — each task counts its own multiplies
    locally and the driver merges the deltas after the map, so the thread
    backend can genuinely run leaf builds concurrently.  The ``(values, ...)``
    tuple shape also lets the engine's item-weight heuristic see the real
    element count when deciding whether threading pays.
    """
    values, ties, multiply_fn = item
    performed = [0]

    def counting_multiply(left: SubPermutation, right: SubPermutation) -> SubPermutation:
        performed[0] += 1
        return multiply_fn(left, right)

    return build_block_product(values, ties, counting_multiply), performed[0]


# ------------------------------------------------------------------ the tree
class NodeStore:
    """``nbytes``-aware store of memoized tree-node :class:`BlockProduct`\\ s.

    Keys are ``(level, index)`` on the infinite aligned binary grid over
    global leaf numbers: node ``(j, i)`` covers leaves ``[i·2^j, (i+1)·2^j)``.
    The aggregator prunes entries whose leftmost leaf has been evicted; the
    store only accounts, it never decides.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int], BlockProduct] = {}
        self.inserts = 0
        self.prunes = 0

    def get(self, key: Tuple[int, int]) -> Optional[BlockProduct]:
        return self._entries.get(key)

    def put(self, key: Tuple[int, int], product: BlockProduct) -> None:
        self._entries[key] = product
        self.inserts += 1

    def discard(self, key: Tuple[int, int]) -> None:
        self._entries.pop(key, None)

    def prune_before(self, first_live_leaf: int) -> int:
        """Drop every node whose leftmost leaf precedes ``first_live_leaf``."""
        dead = [key for key in self._entries if (key[1] << key[0]) < first_live_leaf]
        for key in dead:
            del self._entries[key]
        self.prunes += len(dead)
        return len(dead)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._entries

    @property
    def nbytes(self) -> int:
        """Total resident bytes of every stored product (incl. dense tables)."""
        return sum(product.nbytes for product in self._entries.values())

    def counters(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "nbytes": int(self.nbytes),
            "inserts": int(self.inserts),
            "prunes": int(self.prunes),
        }


@dataclass
class AggregatorStats:
    """Observable cost counters of one aggregator (JSON-safe via counters())."""

    multiplies: int = 0
    blocks_built: int = 0
    elements_appended: int = 0
    elements_evicted: int = 0
    updates: int = 0
    root_rebuilds: int = 0
    seam_sweeps: int = 0

    def counters(self) -> Dict[str, int]:
        return {
            "multiplies": int(self.multiplies),
            "blocks_built": int(self.blocks_built),
            "elements_appended": int(self.elements_appended),
            "elements_evicted": int(self.elements_evicted),
            "updates": int(self.updates),
            "root_rebuilds": int(self.root_rebuilds),
            "seam_sweeps": int(self.seam_sweeps),
        }


class _Leaf:
    """One leaf block: its elements, arrival ids and evicted prefix length."""

    __slots__ = ("leaf_id", "values", "start_arrival", "evicted")

    def __init__(self, leaf_id: int, start_arrival: int) -> None:
        self.leaf_id = leaf_id
        self.values = np.empty(0, dtype=np.float64)
        self.start_arrival = start_arrival
        self.evicted = 0

    @property
    def live(self) -> int:
        return len(self.values) - self.evicted

    def live_values(self) -> np.ndarray:
        return self.values[self.evicted :]

    def live_arrivals(self) -> np.ndarray:
        return self.start_arrival + np.arange(self.evicted, len(self.values), dtype=np.int64)


#: Default number of elements per leaf block (kept at or below the dense
#: construction threshold so leaf rebuilds never recurse).
DEFAULT_LEAF_SIZE = 64


class SeaweedAggregator:
    """A sliding-window monoid aggregator over seaweed block products.

    Parameters
    ----------
    strict:
        LIS strictness of the maintained value-interval product (matches the
        ``strict`` flag of :func:`repro.lis.semilocal.value_interval_matrix`;
        the root product is bit-identical to a from-scratch build of the
        current window).
    leaf_size:
        Elements per leaf block.  The default stays below the dense
        construction threshold, so per-tick leaf rebuilds are one vectorised
        dense pass.
    multiply_fn:
        The (sub)unit-Monge multiplication used for node merges (defaults to
        the sequential :func:`repro.core.seaweed.multiply`).
    plan:
        A :class:`~repro.core.plan.MultiplyPlan` tuning the default multiply
        (ignored when an explicit ``multiply_fn`` is given).  Mechanics only:
        every plan yields bit-identical products.
    backend:
        PR-2 execution backend (name or instance) used to fan out multi-leaf
        block builds; answers are bit-identical across backends.
    """

    def __init__(
        self,
        *,
        strict: bool = True,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        multiply_fn: Optional[MultiplyFn] = None,
        plan: Optional[MultiplyPlan] = None,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> None:
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be positive, got {leaf_size}")
        self.strict = bool(strict)
        self.leaf_size = int(leaf_size)
        if multiply_fn is not None:
            self._multiply_fn: MultiplyFn = multiply_fn
        elif plan is not None:
            self._multiply_fn = plan.multiply_fn()
        else:
            self._multiply_fn = multiply
        self.backend: ExecutionBackend = resolve_backend(backend)
        self.store = NodeStore()
        self.stats = AggregatorStats()
        self._leaves: List[_Leaf] = []
        self._leaf_by_id: Dict[int, _Leaf] = {}
        self._next_arrival = 0
        self._next_leaf_id = 0
        self._version = 0
        self._root: Optional[BlockProduct] = None
        self._root_version = -1
        self._root_semilocal: Optional[SemiLocalLIS] = None
        self._cover_cache = None

    # ------------------------------------------------------------------ sizing
    def __len__(self) -> int:
        return sum(leaf.live for leaf in self._leaves)

    @property
    def size(self) -> int:
        """Number of live window elements."""
        return len(self)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the node store plus the cached root product."""
        total = self.store.nbytes
        if self._root is not None:
            total += self._root.nbytes
        return total

    def window_values(self) -> np.ndarray:
        """The live window contents, in position order (oracle comparisons)."""
        if not self._leaves:
            return np.empty(0, dtype=np.float64)
        return np.concatenate([leaf.live_values() for leaf in self._leaves])

    # -------------------------------------------------------------- mutations
    def _tie_keys(self, arrivals: np.ndarray) -> np.ndarray:
        return -arrivals if self.strict else arrivals

    def _counted_multiply(self, left: SubPermutation, right: SubPermutation) -> SubPermutation:
        self.stats.multiplies += 1
        return self._multiply_fn(left, right)

    def _build_leaf_product(self, leaf: _Leaf) -> BlockProduct:
        self.stats.blocks_built += 1
        return build_block_product(
            leaf.live_values(), self._tie_keys(leaf.live_arrivals()), self._counted_multiply
        )

    def _touch(self) -> None:
        self._version += 1
        self._root = None
        self._root_semilocal = None
        self._cover_cache = None

    def append(self, values: Sequence[float]) -> None:
        """Append elements at the window's tail (splits into leaf blocks)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        touched: List[_Leaf] = []
        offset = 0
        while offset < len(values):
            if not self._leaves or len(self._leaves[-1].values) >= self.leaf_size:
                leaf = _Leaf(self._next_leaf_id, self._next_arrival + offset)
                self._next_leaf_id += 1
                self._leaves.append(leaf)
                self._leaf_by_id[leaf.leaf_id] = leaf
            leaf = self._leaves[-1]
            take = min(self.leaf_size - len(leaf.values), len(values) - offset)
            leaf.values = np.concatenate([leaf.values, values[offset : offset + take]])
            offset += take
            if leaf not in touched:
                touched.append(leaf)
        self._next_arrival += len(values)
        self.stats.elements_appended += len(values)
        # Rebuild every touched leaf product through the execution engine —
        # a multi-leaf append is an embarrassingly parallel local phase.  The
        # mapped task is pure (own multiply counter); stats merge afterwards
        # on the driver, so concurrent leaf builds cannot lose increments.
        outcomes = self.backend.map_local(
            _leaf_build_task,
            [
                (leaf.live_values(), self._tie_keys(leaf.live_arrivals()), self._multiply_fn)
                for leaf in touched
            ],
        )
        for leaf, (product, multiplies) in zip(touched, outcomes):
            self.stats.blocks_built += 1
            self.stats.multiplies += multiplies
            self.store.put((0, leaf.leaf_id), product)
        self._touch()

    def evict(self, count: int) -> int:
        """Drop the ``count`` oldest window elements; returns how many went."""
        count = int(count)
        if count < 0:
            raise ValueError(f"evict count must be non-negative, got {count}")
        dropped = 0
        while count > 0 and self._leaves:
            head = self._leaves[0]
            take = min(count, head.live)
            head.evicted += take
            count -= take
            dropped += take
            self.store.discard((0, head.leaf_id))
            if head.live == 0:
                self._leaves.pop(0)
                del self._leaf_by_id[head.leaf_id]
        self.stats.elements_evicted += dropped
        if dropped:
            self.store.prune_before(self._first_full_leaf_id())
            self._touch()
        return dropped

    def update(self, position: int, value: float) -> None:
        """Replace the window element at ``position`` (0-based from the head).

        Only the containing leaf is rebuilt; the memoized ancestors above it
        are invalidated so the next query recombines just the O(log n) root
        path.
        """
        position = int(position)
        if position < 0 or position >= len(self):
            raise IndexError(f"update position {position} outside window of {len(self)}")
        remaining = position
        for leaf in self._leaves:
            if remaining < leaf.live:
                leaf.values[leaf.evicted + remaining] = float(value)
                self.store.put((0, leaf.leaf_id), self._build_leaf_product(leaf))
                level = 1
                while (1 << level) <= 2 * max(1, self._next_leaf_id):
                    self.store.discard((level, leaf.leaf_id >> level))
                    level += 1
                self.stats.updates += 1
                self._touch()
                return
            remaining -= leaf.live
        raise AssertionError("unreachable: position was bounds-checked")  # pragma: no cover

    # ----------------------------------------------------------------- cover
    def _first_full_leaf_id(self) -> int:
        if not self._leaves:
            return self._next_leaf_id
        head = self._leaves[0]
        return head.leaf_id + (1 if head.evicted else 0)

    def _leaf_product(self, leaf: _Leaf) -> BlockProduct:
        key = (0, leaf.leaf_id)
        cached = self.store.get(key)
        if cached is None:
            cached = self._build_leaf_product(leaf)
            self.store.put(key, cached)
        return cached

    def _node_product(self, level: int, index: int) -> BlockProduct:
        key = (level, index)
        cached = self.store.get(key)
        if cached is not None:
            return cached
        if level == 0:
            return self._leaf_product(self._leaf_by_id[index])
        left = self._node_product(level - 1, 2 * index)
        right = self._node_product(level - 1, 2 * index + 1)
        product = combine_block_products(left, right, self._counted_multiply)
        self.store.put(key, product)
        return product

    def _canonical_nodes(self, lo: int, hi: int) -> List[BlockProduct]:
        """Canonical aligned-node cover of the sealed leaf range ``[lo, hi)``.

        Node sizes are capped near the square root of the span: the seam
        sweep's dense pass is quadratic in the largest part, while the cover
        length only grows logarithmically, so √span nodes balance per-tick
        query cost against cover overhead (and keep the node store's dense
        tables small).
        """
        out: List[BlockProduct] = []
        span = hi - lo
        cap_level = span.bit_length() // 2 if span > 1 else 0
        while lo < hi:
            level = (lo & -lo).bit_length() - 1 if lo > 0 else cap_level
            level = min(level, cap_level)
            while lo + (1 << level) > hi:
                level -= 1
            out.append(self._node_product(level, lo >> level))
            lo += 1 << level
        return out

    def _range_cover(self, i: int, j: int) -> List[BlockProduct]:
        """Cover products of the window element range ``[i, j)``, in order.

        Maximal runs of sealed fully-live leaves reuse the memoized aligned
        nodes; partially evicted, unsealed or range-clipped leaves contribute
        ad-hoc (dense-sized) block products.
        """
        parts: List[BlockProduct] = []
        run: List[int] = []  # [lo, hi) leaf-id range of the pending sealed run

        def flush() -> None:
            if run:
                parts.extend(self._canonical_nodes(run[0], run[1]))
                run.clear()

        pos = 0
        for leaf in self._leaves:
            start, end = pos, pos + leaf.live
            pos = end
            if end <= i or start >= j:
                continue
            s, e = max(i, start), min(j, end)
            whole = s == start and e == end
            if whole and leaf.evicted == 0 and len(leaf.values) >= self.leaf_size:
                if not run:
                    run.extend([leaf.leaf_id, leaf.leaf_id + 1])
                else:
                    run[1] = leaf.leaf_id + 1
                continue
            flush()
            if whole:
                parts.append(self._leaf_product(leaf))
            else:
                lo_off = leaf.evicted + (s - start)
                hi_off = leaf.evicted + (e - start)
                arrivals = leaf.start_arrival + np.arange(lo_off, hi_off, dtype=np.int64)
                self.stats.blocks_built += 1
                parts.append(
                    build_block_product(
                        leaf.values[lo_off:hi_off],
                        self._tie_keys(arrivals),
                        self._counted_multiply,
                    )
                )
        flush()
        return parts

    def _cover(self) -> List[BlockProduct]:
        """The O(log n) cover products of the whole live window."""
        return self._range_cover(0, len(self))

    # ---------------------------------------------------------------- queries
    def root_product(self) -> BlockProduct:
        """The full window product, folded from the cover and cached.

        The fold is a balanced pairwise reduction (order-preserving):
        left-deep accumulation would pay a near-full-size multiply per part,
        the balanced tree pays the usual geometric total.
        """
        if self._root is not None and self._root_version == self._version:
            return self._root
        parts = self._cover()
        if not parts:
            product = empty_block_product()
        else:
            while len(parts) > 1:
                parts = [
                    combine_block_products(parts[i], parts[i + 1], self._counted_multiply)
                    if i + 1 < len(parts)
                    else parts[i]
                    for i in range(0, len(parts), 2)
                ]
            product = parts[0]
        self._root = product
        self._root_version = self._version
        self.stats.root_rebuilds += 1
        return product

    def to_semilocal(self) -> SemiLocalLIS:
        """The window's value-interval :class:`SemiLocalLIS` (root product).

        Bit-identical to ``value_interval_matrix(window, strict=strict)`` —
        the recomposition only re-brackets the same associative product.
        """
        if self._root_semilocal is None or self._root_version != self._version:
            root = self.root_product()
            self._root_semilocal = SemiLocalLIS(matrix=root.matrix, kind="value", length=root.size)
        return self._root_semilocal

    #: Above this many distinct left corners, folding the root once beats
    #: one batched seam sweep.
    _SWEEP_BATCH_LIMIT = 16

    def _cover_with_slots(self):
        """The window cover plus each part's global key ranks, version-cached.

        Every query of one tick shares the same cover and relabelling, so the
        O(m log m) key merge happens once per mutation, not once per query.
        """
        if getattr(self, "_cover_cache", None) is not None and self._cover_cache[0] == self._version:
            return self._cover_cache[1:]
        parts = self._cover()
        m, slots = _part_slots(parts)
        self._cover_cache = (self._version, parts, slots, m)
        return parts, slots, m

    def rank_scores(self, x, y) -> np.ndarray:
        """Batched semi-local scores over rank windows ``[x, y)`` (exact).

        Served from the cached root product when one is fresh; otherwise one
        batched seam sweep over the cover (one row per distinct left corner),
        falling back to a root fold for very wide batches.
        """
        m = len(self)
        x, y = validate_intervals(x, y, m, what="rank interval")
        if self._root is not None and self._root_version == self._version:
            return self.to_semilocal().score(x, y)
        distinct, row_of = np.unique(x, return_inverse=True)
        if len(distinct) > self._SWEEP_BATCH_LIMIT:
            return self.to_semilocal().score(x, y)
        parts, slots, cover_m = self._cover_with_slots()
        self.stats.seam_sweeps += len(distinct)
        D = multi_cover_scores(parts, slots, cover_m, distinct)
        return D[row_of, y]

    def lis_length(self) -> int:
        """The LIS of the current window (the ``(0, m)`` corner score)."""
        m = len(self)
        if m == 0:
            return 0
        return int(self.rank_scores(0, m)[0])

    def substring_scores(self, i, j) -> np.ndarray:
        """Batched LIS of the window *subsegments* ``[i, j)`` (position space).

        Position restriction cannot be read off the value-interval root, but
        it is a sub-range of the split order — each query runs one seam sweep
        over the cover of its element range (ad-hoc edge blocks plus the
        memoized aligned nodes inside).
        """
        i, j = validate_intervals(i, j, len(self), what="substring window")
        out = np.empty(len(i), dtype=np.int64)
        for idx in range(len(i)):
            lo, hi = int(i[idx]), int(j[idx])
            if lo >= hi:
                out[idx] = 0
                continue
            parts = self._range_cover(lo, hi)
            span = sum(part.size for part in parts)
            self.stats.seam_sweeps += 1
            out[idx] = cover_scores(parts, 0, np.asarray([span], dtype=np.int64))[0]
        return out

    def window_sweep(self, width: int, step: int = 1) -> np.ndarray:
        """Scores of every ``width``-wide rank window, strided by ``step``.

        Sweeps touch every left corner, so they are answered from the
        materialised root product (cached until the next mutation).
        """
        semilocal = self.to_semilocal()
        m = len(self)
        width = int(width)
        step = int(step)
        if width < 1 or width > m:
            raise ValueError(f"window width must satisfy 1 <= width <= {m}, got {width}")
        if step < 1:
            raise ValueError(f"window step must be >= 1, got {step}")
        starts = np.arange(0, m - width + 1, step, dtype=np.int64)
        return semilocal.score(starts, starts + width)

    def counters(self) -> Dict[str, int]:
        """JSON-safe cost/occupancy counters (artifact ``streaming`` section)."""
        doc = dict(self.stats.counters())
        doc["window"] = len(self)
        doc["leaves"] = len(self._leaves)
        doc["node_store"] = self.store.counters()
        doc["nbytes"] = int(self.nbytes)
        return doc
