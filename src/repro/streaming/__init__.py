"""Streaming sliding-window subsystem: incremental seaweed recomposition.

The (sub)unit-Monge product ``⊡`` is an associative monoid operation, so the
semi-local build products of Theorem 1.3 / Corollaries 1.3.2-1.3.3 can be
*recombined* instead of rebuilt when the input slides, appends or mutates:

* :mod:`~repro.streaming.aggregator` — :class:`SeaweedAggregator`, a seaweed
  segment tree over per-leaf-block products with an ``nbytes``-aware
  :class:`NodeStore`, O(log n) root-path recombination for
  ``append`` / ``evict`` / ``update``, and exact seam-sweep query evaluation
  over the window cover;
* :mod:`~repro.streaming.sessions` — :class:`StreamingLIS` and
  :class:`StreamingLCS`, per-tick session objects exposing ``lis_length`` /
  ``lcs_length`` / window-sweep queries over the live window;
* :mod:`~repro.streaming.recompose` — :func:`extend_value_matrix`, the
  one-multiply append patch used by the service layer's ``refresh`` request
  kind (``repro.service.requests`` v2).

Amortised per-tick sliding cost is measured by the registered
``streaming_throughput`` experiment (``python -m repro run
streaming_throughput``); ``python -m repro stream`` drives a live session
from the command line.
"""

from .aggregator import (
    AggregatorStats,
    BlockProduct,
    NodeStore,
    SeaweedAggregator,
    build_block_product,
    combine_block_products,
    cover_scores,
)
from .recompose import block_product_from_semilocal, extend_value_matrix
from .sessions import StreamingLCS, StreamingLIS

__all__ = [
    "AggregatorStats",
    "BlockProduct",
    "NodeStore",
    "SeaweedAggregator",
    "build_block_product",
    "combine_block_products",
    "cover_scores",
    "block_product_from_semilocal",
    "extend_value_matrix",
    "StreamingLCS",
    "StreamingLIS",
]
