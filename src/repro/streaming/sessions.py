"""Streaming sessions: per-tick LIS / LCS over a sliding window.

The session objects are the user-facing surface of the streaming subsystem:

* :class:`StreamingLIS` maintains the semi-local LIS of a sliding sequence
  window.  ``push`` slides the window (append new symbols, evict overflow),
  ``update`` patches one position in place; per-tick answers —
  :meth:`~StreamingLIS.lis_length`, rank-interval probes, substring probes
  and full :meth:`~StreamingLIS.window_sweep` queries — are exact and
  checksum-identical to rebuilding the Theorem 1.3 product from scratch on
  the current window.
* :class:`StreamingLCS` maintains ``LCS(S, T-window)`` for a fixed reference
  ``S`` while ``T`` streams, via the Corollary 1.3.3 reduction: every ``T``
  symbol contributes its Hunt–Szymanski match positions (descending, so
  equal ``T`` positions can never chain) to a strict-LIS aggregator keyed by
  ``S`` position.  Appending or evicting one ``T`` symbol touches only the
  match points it owns.

Both sessions delegate the heavy lifting to one
:class:`~repro.streaming.aggregator.SeaweedAggregator` and therefore inherit
its cost profile: sliding mutations touch a leaf block plus the O(log n)
node path, answers come from seam sweeps over the cover, and the root
product is only folded when a sweep-shaped query genuinely needs it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.plan import MultiplyPlan
from ..lis.semilocal import SemiLocalLIS
from ..mpc.engine import ExecutionBackend
from .aggregator import DEFAULT_LEAF_SIZE, MultiplyFn, SeaweedAggregator

__all__ = ["StreamingLIS", "StreamingLCS"]


class StreamingLIS:
    """Sliding-window semi-local LIS with incremental recomposition.

    Parameters
    ----------
    window:
        Maximum window length maintained by :meth:`push` (``None`` keeps the
        window unbounded; ``append``/``evict`` always remain available).
    strict:
        Strictly increasing (default) vs non-decreasing subsequences.
    leaf_size, backend, multiply_fn, plan:
        Forwarded to the underlying :class:`SeaweedAggregator`.
    """

    def __init__(
        self,
        *,
        window: Optional[int] = None,
        strict: bool = True,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        backend: Union[None, str, ExecutionBackend] = None,
        multiply_fn: Optional[MultiplyFn] = None,
        plan: Optional[MultiplyPlan] = None,
    ) -> None:
        if window is not None and window < 1:
            raise ValueError(f"window must be positive (or None), got {window}")
        self.window = window
        self.aggregator = SeaweedAggregator(
            strict=strict, leaf_size=leaf_size, backend=backend,
            multiply_fn=multiply_fn, plan=plan,
        )
        self.ticks = 0

    # -------------------------------------------------------------- mutations
    def append(self, values: Sequence[float]) -> None:
        """Append symbols at the tail (window may exceed the configured cap)."""
        self.aggregator.append(values)
        self.ticks += 1

    def evict(self, count: int) -> int:
        """Evict the ``count`` oldest symbols; returns how many were dropped."""
        dropped = self.aggregator.evict(count)
        self.ticks += 1
        return dropped

    def push(self, values: Sequence[float]) -> int:
        """One slide tick: append ``values``, evict down to the window cap.

        Returns the number of evicted symbols (0 while the window warms up).
        """
        self.aggregator.append(values)
        dropped = 0
        if self.window is not None and len(self.aggregator) > self.window:
            dropped = self.aggregator.evict(len(self.aggregator) - self.window)
        self.ticks += 1
        return dropped

    def update(self, position: int, value: float) -> None:
        """Replace the symbol at window ``position`` (O(log n) recombination)."""
        self.aggregator.update(position, value)
        self.ticks += 1

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.aggregator)

    @property
    def size(self) -> int:
        return len(self.aggregator)

    def window_values(self) -> np.ndarray:
        """The current window contents (position order)."""
        return self.aggregator.window_values()

    def lis_length(self) -> int:
        """LIS of the current window (exact, per tick)."""
        return self.aggregator.lis_length()

    def rank_intervals(self, x, y) -> np.ndarray:
        """Batched LIS over rank windows ``[x, y)`` of the current window."""
        return self.aggregator.rank_scores(x, y)

    def rank_interval(self, x: int, y: int) -> int:
        return int(self.rank_intervals(x, y)[0])

    def substring_scores(self, i, j) -> np.ndarray:
        """Batched LIS of window subsegments ``[i, j)`` (position space)."""
        return self.aggregator.substring_scores(i, j)

    def substring_lis(self, i: int, j: int) -> int:
        return int(self.substring_scores(i, j)[0])

    def window_sweep(self, width: int, step: int = 1) -> np.ndarray:
        """Every ``width``-wide rank window, answered from the root product."""
        return self.aggregator.window_sweep(width, step)

    def to_semilocal(self) -> SemiLocalLIS:
        """The window's value-interval product (folds and caches the root)."""
        return self.aggregator.to_semilocal()

    def counters(self) -> Dict[str, int]:
        doc = self.aggregator.counters()
        doc["ticks"] = int(self.ticks)
        return doc


class StreamingLCS:
    """``LCS(S, T-window)`` maintained incrementally while ``T`` streams.

    Parameters
    ----------
    reference:
        The fixed string ``S``.
    window:
        Maximum number of live ``T`` symbols kept by :meth:`push` (``None``
        keeps ``T`` unbounded).
    leaf_size, backend, multiply_fn, plan:
        Forwarded to the underlying match-point :class:`SeaweedAggregator`.
    """

    def __init__(
        self,
        reference: Sequence,
        *,
        window: Optional[int] = None,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        backend: Union[None, str, ExecutionBackend] = None,
        multiply_fn: Optional[MultiplyFn] = None,
        plan: Optional[MultiplyPlan] = None,
    ) -> None:
        if window is not None and window < 1:
            raise ValueError(f"window must be positive (or None), got {window}")
        self.reference = np.asarray(reference)
        self.window = window
        # Descending S-positions per symbol: appending one T symbol appends
        # its matches in an order that forbids chaining two matches of the
        # same T position (the strict-LIS tie-break of Corollary 1.3.3).
        self._matches: Dict[float, np.ndarray] = {}
        for value in np.unique(self.reference):
            positions = np.flatnonzero(self.reference == value)[::-1].astype(np.float64)
            self._matches[float(value)] = positions
        self.aggregator = SeaweedAggregator(
            strict=True, leaf_size=leaf_size, backend=backend,
            multiply_fn=multiply_fn, plan=plan,
        )
        self._t_symbols: List[float] = []
        self._t_counts: List[int] = []
        self.ticks = 0

    # -------------------------------------------------------------- mutations
    def _append(self, symbols: Sequence) -> None:
        symbols = np.asarray(symbols).ravel()
        points: List[np.ndarray] = []
        for symbol in symbols:
            matches = self._matches.get(float(symbol), None)
            count = 0 if matches is None else len(matches)
            if count:
                points.append(matches)
            self._t_symbols.append(float(symbol))
            self._t_counts.append(count)
        if points:
            self.aggregator.append(np.concatenate(points))

    def _evict(self, count: int) -> int:
        if count < 0:
            raise ValueError(f"evict count must be non-negative, got {count}")
        count = min(int(count), len(self._t_counts))
        dropped_points = sum(self._t_counts[:count])
        del self._t_counts[:count]
        del self._t_symbols[:count]
        if dropped_points:
            self.aggregator.evict(dropped_points)
        return count

    def append(self, symbols: Sequence) -> None:
        """Append symbols to the live end of ``T``."""
        self._append(symbols)
        self.ticks += 1

    def evict(self, count: int) -> int:
        """Drop the ``count`` oldest ``T`` symbols (and their match points)."""
        dropped = self._evict(count)
        self.ticks += 1
        return dropped

    def push(self, symbols: Sequence) -> int:
        """One slide tick: append symbols, evict ``T`` down to the window cap."""
        self._append(symbols)
        dropped = 0
        if self.window is not None and len(self._t_counts) > self.window:
            dropped = self._evict(len(self._t_counts) - self.window)
        self.ticks += 1
        return dropped

    # ---------------------------------------------------------------- queries
    @property
    def t_length(self) -> int:
        """Number of live ``T`` symbols."""
        return len(self._t_counts)

    def t_window(self) -> np.ndarray:
        """The live ``T`` contents (position order)."""
        return np.asarray(self._t_symbols, dtype=self.reference.dtype)

    def lcs_length(self) -> int:
        """``LCS(S, T-window)`` (exact, per tick)."""
        return self.aggregator.lis_length()

    def query_batch(self, i, j) -> np.ndarray:
        """Batched ``LCS(S, T_window[i:j])`` over ``T``-position windows.

        A ``T`` window is a *split-order* range of match points, so each
        window runs one seam sweep over the range cover (edge blocks plus
        memoized nodes) — no root product is materialised.
        """
        i = np.atleast_1d(np.asarray(i, dtype=np.int64))
        j = np.atleast_1d(np.asarray(j, dtype=np.int64))
        i, j = np.broadcast_arrays(i, j)
        bad = (i < 0) | (j > self.t_length) | (i > j)
        if np.any(bad):
            first = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"invalid T window ({int(i[first])}, {int(j[first])}): windows must "
                f"satisfy 0 <= i <= j <= {self.t_length}"
            )
        prefix = np.concatenate([[0], np.cumsum(self._t_counts)]).astype(np.int64)
        return self.aggregator.substring_scores(prefix[i], prefix[j])

    def query(self, i: int, j: int) -> int:
        """``LCS(S, T_window[i:j])``."""
        return int(self.query_batch(i, j)[0])

    def window_sweep(self, width: int, step: int = 1) -> np.ndarray:
        """``LCS(S, ·)`` of every ``width``-wide ``T`` window, strided by ``step``."""
        width = int(width)
        step = int(step)
        if width < 1 or width > self.t_length:
            raise ValueError(
                f"window width must satisfy 1 <= width <= {self.t_length}, got {width}"
            )
        if step < 1:
            raise ValueError(f"window step must be >= 1, got {step}")
        starts = np.arange(0, self.t_length - width + 1, step, dtype=np.int64)
        return self.query_batch(starts, starts + width)

    def counters(self) -> Dict[str, int]:
        doc = self.aggregator.counters()
        doc["ticks"] = int(self.ticks)
        doc["t_length"] = self.t_length
        doc["match_points"] = int(sum(self._t_counts))
        return doc
