"""Request/response model of the serving layer, plus the JSON batch format.

``python -m repro serve --requests file.json`` drives the service from one
self-identifying document::

    {
      "schema": "repro.service.requests",
      "version": 1,
      "defaults": {"mode": "sequential", "delta": 0.5, "backend": "serial"},
      "requests": [
        {"op": "lis_length",       "workload": "random", "n": 4096, "seed": 7},
        {"op": "substring_query",  "workload": "random", "n": 4096, "seed": 7,
         "i": [0, 128, 1024], "j": [512, 4096, 2048]},
        {"op": "window_sweep",     "workload": "random", "n": 4096, "seed": 7,
         "width": 256, "step": 64},
        {"op": "rank_interval_query", "sequence": [3, 1, 4, 1, 5, 9, 2, 6],
         "x": 0, "y": 8},
        {"op": "lcs_length", "string_workload": "correlated_pair", "n": 256,
         "seed": 3, "workload_args": {"alphabet": 8}},
        {"op": "substring_query", "string_workload": "correlated_pair",
         "n": 256, "seed": 3, "workload_args": {"alphabet": 8},
         "i": 0, "j": 128}
      ]
    }

Targets are either **named workloads** (the registry of
:mod:`repro.workloads.registry`; ``workload`` for sequences,
``string_workload`` for LCS pairs) or **inline data** (``sequence`` /
``s``+``t``).  Requests against the same target share one index build —
that grouping is the whole point of the serving layer.

Version 2 (additive) introduces the ``refresh`` request kind::

    {"op": "refresh", "workload": "random", "n": 4096, "seed": 7,
     "append": [3, 1, 4, 1, 5]}

which asks the service to *patch* the cached value-interval index of the
target in place — one suffix block build plus one ⊡ multiplication
(:func:`repro.streaming.recompose.extend_value_matrix`) — re-fingerprint the
extended sequence and re-insert the patched index into the cache, instead of
discarding the build product and starting over.  Version-1 documents remain
valid; the parser accepts any version up to
:data:`REQUESTS_SCHEMA_VERSION`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..workloads.registry import (
    make_sequence,
    make_string_pair,
    sequence_workload_names,
    string_workload_names,
)

__all__ = [
    "REQUESTS_SCHEMA_ID",
    "REQUESTS_SCHEMA_VERSION",
    "OPS",
    "ServiceRequestError",
    "TargetSpec",
    "QueryRequest",
    "parse_requests_document",
    "parse_requests_lenient",
    "parse_target",
]

REQUESTS_SCHEMA_ID = "repro.service.requests"
REQUESTS_SCHEMA_VERSION = 2

#: The request operations the service answers (``refresh`` is new in v2).
OPS = (
    "lis_length",
    "lcs_length",
    "substring_query",
    "rank_interval_query",
    "window_sweep",
    "refresh",
)


class ServiceRequestError(ValueError):
    """A request (or the batch document) is malformed."""


@dataclass(frozen=True)
class TargetSpec:
    """What input an index is built over (named workload or inline data)."""

    #: ``'sequence'`` or ``'string_pair'``.
    kind: str
    #: Registry name when the target is a named workload, else ``None``.
    workload: Optional[str] = None
    n: Optional[int] = None
    seed: Optional[int] = None
    #: Extra generator kwargs (canonicalised to a sorted tuple for hashing).
    workload_args: Tuple[Tuple[str, Any], ...] = ()
    #: Inline data (tuple-of-numbers form so the spec stays hashable).
    data: Optional[tuple] = None
    data_t: Optional[tuple] = None

    def realise(self):
        """Produce the concrete input array(s) this target describes.

        Inline data is canonicalised to ``float64``: Python tuple equality
        treats ``1 == 1.0``, so two equal :class:`TargetSpec` objects must
        realise to byte-identical arrays or the fingerprint memo of the
        serving layer would hand equal specs different identities.  LIS/LCS
        only compare values for order/equality, so the coercion never
        changes an answer (integers above 2^53 excepted).
        """
        kwargs = dict(self.workload_args)
        if self.kind == "sequence":
            if self.workload is not None:
                return make_sequence(self.workload, self.n, seed=self.seed, **kwargs)
            return np.asarray(self.data, dtype=np.float64)
        if self.workload is not None:
            return make_string_pair(self.workload, self.n, seed=self.seed, **kwargs)
        return (
            np.asarray(self.data, dtype=np.float64),
            np.asarray(self.data_t, dtype=np.float64),
        )

    def describe(self) -> str:
        if self.workload is not None:
            return f"{self.workload}(n={self.n}, seed={self.seed})"
        size = len(self.data) if self.data is not None else 0
        return f"inline[{size}]" if self.kind == "sequence" else f"inline_pair[{size}]"


@dataclass
class QueryRequest:
    """One unit of work: an operation against a target."""

    op: str
    target: TargetSpec
    request_id: str = ""
    #: Substring / subsegment windows (scalars or parallel arrays).
    i: Any = None
    j: Any = None
    #: Rank windows (``rank_interval_query``).
    x: Any = None
    y: Any = None
    #: Sweep geometry (``window_sweep``).
    width: Optional[int] = None
    step: int = 1
    #: Strictness of the LIS order (ignored for LCS targets).
    strict: bool = True
    #: Symbols appended to the target (``refresh``, schema v2).
    append: Optional[tuple] = None

    def index_kind(self) -> str:
        """The index kind this request must be answered from."""
        if self.target.kind == "string_pair":
            return "lcs"
        if self.op in ("rank_interval_query", "refresh"):
            return "lis:value"
        return "lis:position"


def _as_tuple(values, what: str) -> tuple:
    try:
        arr = np.asarray(values)
    except Exception:
        raise ServiceRequestError(f"{what} must be an array of numbers") from None
    if arr.ndim != 1 or arr.size == 0 or not np.issubdtype(arr.dtype, np.number):
        raise ServiceRequestError(f"{what} must be a non-empty 1-D array of numbers")
    return tuple(arr.tolist())


def _parse_target(doc: Mapping[str, Any], where: str, default_seed: int = 0) -> TargetSpec:
    ways = [key for key in ("workload", "string_workload", "sequence", "s") if key in doc]
    if len(ways) != 1:
        raise ServiceRequestError(
            f"{where}: specify the target exactly one way — 'workload' (named sequence), "
            f"'string_workload' (named pair), 'sequence' (inline) or 's'+'t' (inline pair); "
            f"got {ways or 'none'}"
        )
    workload_args = doc.get("workload_args", {})
    if not isinstance(workload_args, dict):
        raise ServiceRequestError(f"{where}: 'workload_args' must be an object")
    for key, value in workload_args.items():
        # TargetSpec is hashable (it is the request-grouping key), so every
        # generator argument must be a scalar — a list here would crash the
        # grouping with an opaque TypeError long after parsing.
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise ServiceRequestError(
                f"{where}: 'workload_args' values must be scalars, got "
                f"{key}={value!r} ({type(value).__name__})"
            )
    args_key = tuple(sorted(workload_args.items()))

    if "workload" in doc or "string_workload" in doc:
        named_seq = "workload" in doc
        name = doc["workload"] if named_seq else doc["string_workload"]
        known = sequence_workload_names() if named_seq else string_workload_names()
        if name not in known:
            kind_word = "sequence" if named_seq else "string-pair"
            raise ServiceRequestError(
                f"{where}: unknown {kind_word} workload {name!r}; available: {known}"
            )
        if "n" not in doc:
            raise ServiceRequestError(f"{where}: named workload targets need 'n'")
        n = int(doc["n"])
        if n < 1:
            raise ServiceRequestError(f"{where}: 'n' must be positive, got {n}")
        return TargetSpec(
            kind="sequence" if named_seq else "string_pair",
            workload=name,
            n=n,
            seed=int(doc.get("seed", default_seed)),
            workload_args=args_key,
        )
    if "sequence" in doc:
        return TargetSpec(kind="sequence", data=_as_tuple(doc["sequence"], f"{where}: 'sequence'"))
    if "t" not in doc:
        raise ServiceRequestError(f"{where}: inline pair targets need both 's' and 't'")
    return TargetSpec(
        kind="string_pair",
        data=_as_tuple(doc["s"], f"{where}: 's'"),
        data_t=_as_tuple(doc["t"], f"{where}: 't'"),
    )


def _parse_request(doc: Mapping[str, Any], idx: int, default_seed: int = 0) -> QueryRequest:
    where = f"requests[{idx}]"
    if not isinstance(doc, Mapping):
        raise ServiceRequestError(f"{where} must be an object")
    op = doc.get("op")
    if op not in OPS:
        raise ServiceRequestError(f"{where}: unknown op {op!r}; supported: {sorted(OPS)}")
    target = _parse_target(doc, where, default_seed)

    if op == "lis_length" and target.kind != "sequence":
        raise ServiceRequestError(f"{where}: 'lis_length' needs a sequence target")
    if op == "lcs_length" and target.kind != "string_pair":
        raise ServiceRequestError(f"{where}: 'lcs_length' needs a string-pair target")
    if op in ("rank_interval_query", "refresh") and target.kind != "sequence":
        raise ServiceRequestError(f"{where}: {op!r} needs a sequence target")

    request = QueryRequest(
        op=op,
        target=target,
        request_id=str(doc.get("id", f"r{idx}")),
        strict=bool(doc.get("strict", True)),
        step=int(doc.get("step", 1)),
    )
    if op == "substring_query":
        if "i" not in doc or "j" not in doc:
            raise ServiceRequestError(f"{where}: 'substring_query' needs 'i' and 'j'")
        request.i, request.j = doc["i"], doc["j"]
    elif op == "rank_interval_query":
        if "x" not in doc or "y" not in doc:
            raise ServiceRequestError(f"{where}: 'rank_interval_query' needs 'x' and 'y'")
        request.x, request.y = doc["x"], doc["y"]
    elif op == "window_sweep":
        if "width" not in doc:
            raise ServiceRequestError(f"{where}: 'window_sweep' needs 'width'")
        request.width = int(doc["width"])
    elif op == "refresh":
        if "append" not in doc:
            raise ServiceRequestError(f"{where}: 'refresh' needs 'append' (the new symbols)")
        request.append = _as_tuple(doc["append"], f"{where}: 'append'")
    return request


def parse_target(doc: Mapping[str, Any], where: str = "target", default_seed: int = 0) -> TargetSpec:
    """Parse one target description (the workload/inline keys of a request).

    Public wrapper used by callers (the HTTP server's ``/builds`` and
    ``/sessions`` routes) that need a :class:`TargetSpec` without a full
    request envelope around it.
    """
    if not isinstance(doc, Mapping):
        raise ServiceRequestError(f"{where} must be an object")
    return _parse_target(doc, where, default_seed)


def _parse_envelope(
    document: Any, default_seed: Optional[int]
) -> Tuple[Dict[str, Any], list, int]:
    """Validate the batch envelope; returns ``(defaults, raw_requests, seed)``."""
    if not isinstance(document, Mapping):
        raise ServiceRequestError("the requests document must be a JSON object")
    schema = document.get("schema", REQUESTS_SCHEMA_ID)
    if schema != REQUESTS_SCHEMA_ID:
        raise ServiceRequestError(
            f"unknown requests schema {schema!r} (expected {REQUESTS_SCHEMA_ID!r})"
        )
    version = document.get("version", REQUESTS_SCHEMA_VERSION)
    if not isinstance(version, int) or version > REQUESTS_SCHEMA_VERSION:
        raise ServiceRequestError(
            f"requests document version {version!r} is newer than supported "
            f"version {REQUESTS_SCHEMA_VERSION}"
        )
    defaults = document.get("defaults", {})
    if not isinstance(defaults, Mapping):
        raise ServiceRequestError("'defaults' must be an object")
    raw = document.get("requests")
    if not isinstance(raw, list) or not raw:
        raise ServiceRequestError("'requests' must be a non-empty array")
    if default_seed is None:
        default_seed = int(defaults.get("seed", 0))
    return dict(defaults), raw, int(default_seed)


def parse_requests_document(
    document: Any,
    *,
    default_seed: Optional[int] = None,
) -> Tuple[Dict[str, Any], List[QueryRequest]]:
    """Validate a batch document; returns ``(defaults, requests)``.

    ``defaults`` are service-configuration hints (``mode`` / ``delta`` /
    ``backend`` / ``cache_bytes`` / ``spill_dir``) that the CLI merges under
    its own flags.  ``default_seed`` (the CLI ``--seed`` flag) applies to
    named-workload targets that omit an explicit ``seed``; the document's
    own ``defaults.seed`` takes precedence over the built-in 0 but not over
    the explicit argument.

    The first malformed request aborts the whole batch (strict mode — the
    CLI's file-in/artifact-out path wants all-or-nothing semantics).  Online
    callers that must answer the well-formed subset anyway should use
    :func:`parse_requests_lenient`.
    """
    defaults, raw, seed = _parse_envelope(document, default_seed)
    return defaults, [_parse_request(entry, idx, seed) for idx, entry in enumerate(raw)]


def parse_requests_lenient(
    document: Any,
    *,
    default_seed: Optional[int] = None,
) -> Tuple[Dict[str, Any], List[Tuple[int, QueryRequest]], List[Dict[str, Any]]]:
    """Like :func:`parse_requests_document`, but per-request errors don't abort.

    A malformed envelope (wrong schema, empty ``requests`` array, …) still
    raises — there is nothing sensible to salvage.  A malformed *entry*
    inside an otherwise-valid batch instead lands in the returned error
    list, so one bad op in a 100-request batch costs one error slot instead
    of the whole batch.  Returns ``(defaults, parsed, errors)`` where
    ``parsed`` is ``[(index, request)]`` (original batch positions) and each
    error is ``{"index", "id", "error"}``.
    """
    defaults, raw, seed = _parse_envelope(document, default_seed)
    parsed: List[Tuple[int, QueryRequest]] = []
    errors: List[Dict[str, Any]] = []
    for idx, entry in enumerate(raw):
        try:
            parsed.append((idx, _parse_request(entry, idx, seed)))
        except ServiceRequestError as exc:
            rid = entry.get("id", f"r{idx}") if isinstance(entry, Mapping) else f"r{idx}"
            errors.append({"index": idx, "id": str(rid), "error": str(exc)})
    return defaults, parsed, errors
