"""The sharded serving tier: consistent-hash routing across worker processes.

One :class:`~repro.service.serving.QueryService` process is a throughput
ceiling — every build and every vectorised pass runs on one core.  The
:class:`ShardRouter` removes that ceiling without changing a single answer:

1. every request is mapped to the **content fingerprint** of the index it
   needs (the same ``(target, kind, strict) → fingerprint`` identity the
   single-process service caches by),
2. a :class:`ConsistentHashRing` assigns each fingerprint to one of N
   **long-lived worker processes**, each owning a private
   :class:`~repro.service.cache.IndexCache` (own byte budget, own ``.npz``
   spill subdirectory — no cross-process file collisions),
3. a mixed batch is **split by owning shard**, the per-shard sub-batches are
   dispatched concurrently, and the answers are **demuxed back by position**
   — so ``router.submit(batch)`` is bit-identical to
   ``QueryService.submit(batch)`` (the test-suite and the ``shard_scaling``
   experiment assert exactly that).

Consistent hashing (not ``hash(fp) % N``) keeps cache locality under
resizing: adding a shard moves only ~1/(N+1) of the fingerprints, and every
moved fingerprint lands on the *new* shard — resident caches on the old
shards stay warm.

Worker lifecycle follows the prepare/submit/wait-with-retry fan-out shape of
the cluster-tools pattern: sub-batches are prepared per shard
(``n_jobs = min(len(sub_batches), shards)``), submitted over per-worker
pipes, and a worker that dies mid-call (detected by pipe EOF / liveness) is
restarted and its sub-batch retried a bounded number of times before the
error surfaces.  When processes cannot be spawned at all — a daemonic
experiment-runner worker, a sandbox without ``multiprocessing`` primitives,
or an explicit ``force_serial=True`` — the router degrades gracefully to
**in-process shards** with identical semantics (same ring, same per-shard
caches, same answers; only the parallelism is gone) and records the fallback
in its stats.

Worker processes resolve their :class:`~repro.core.plan.MultiplyPlan` once
at startup — ``plan="auto"`` therefore calibrates **once per worker
process**, never per request — and reuse the engine-layer conventions of
:mod:`repro.mpc.engine` (fork context, daemonic-process detection); MPC
builds inside a worker automatically run their execution backend inline,
so shard workers never spawn nested pools.

Observability: :meth:`ShardRouter.stats` reports per-shard service/cache
stats plus router-level counters — requests routed per shard, load
imbalance (max/mean), worker restarts, bounded retries, and the
queue-wait vs shard-execution timing split that makes imbalance diagnosable
from ``/stats`` alone.
"""

from __future__ import annotations

import bisect
import contextvars
import hashlib
import os
import random
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.plan import MultiplyPlan, resolve_plan
from ..mpc.engine import fork_context, in_daemonic_process
from ..obs.metrics import get_registry, relabel_snapshot
from ..obs.trace import span, span_event
from ..resilience.breaker import BREAKER_STATE_CODES, BreakerConfig, CircuitBreaker
from ..resilience.deadline import DeadlineExceeded, current_deadline, note_expiry
from ..resilience.faults import FaultPlan, active_plan, fault_point, install_plan
from ..resilience.retry import RetryBudget, RetryPolicy
from .cache import DEFAULT_CACHE_BYTES, IndexCache
from .index import INDEX_KINDS, lcs_index_fingerprint, lis_index_fingerprint
from .requests import OPS, QueryRequest, ServiceRequestError, TargetSpec
from .serving import QueryService, ServiceBatchResult

__all__ = [
    "ConsistentHashRing",
    "IndexInfo",
    "ShardConfig",
    "ShardRouter",
    "ShardRetriesExhausted",
    "ShardWorkerCrash",
    "ShardWorkerHang",
    "DEFAULT_RING_REPLICAS",
    "DEFAULT_WORKER_TIMEOUT",
]

#: Virtual nodes per shard on the hash ring.  More replicas smooth the key
#: distribution (the std-dev of per-shard load shrinks like 1/sqrt(R)).
DEFAULT_RING_REPLICAS = 96

#: How long the router waits on a worker pipe before declaring the worker
#: hung and killing it (seconds).  Generous by default — an index build can
#: legitimately take a while — and tightened per deployment via
#: ``--worker-timeout-ms``.  Request deadlines bound individual waits much
#: tighter; this is the *liveness* backstop that replaces the old
#: wait-forever ``conn.recv()``.
DEFAULT_WORKER_TIMEOUT = 120.0

#: Pipe poll granularity: small enough that kill decisions are prompt,
#: large enough that an idle wait costs ~20 wakeups/second at worst.
_POLL_STEP = 0.05


class ShardWorkerCrash(RuntimeError):
    """A worker process died mid-call (pipe EOF / dead process)."""


class ShardWorkerHang(ShardWorkerCrash):
    """A worker stayed alive but unresponsive past the worker timeout.

    Subclasses :class:`ShardWorkerCrash` deliberately: a hung worker is
    *killed* and then handled exactly like a crashed one (restart, bounded
    retry) — the taxonomy only matters for counters and span events.
    """


class ShardRetriesExhausted(RuntimeError):
    """A sub-batch failed through every allowed retry (crash loop / budget)."""


class ConsistentHashRing:
    """Deterministic consistent hashing of fingerprints onto shard ids.

    Each shard contributes ``replicas`` virtual nodes at SHA-256-derived
    positions on a 64-bit ring; a key is owned by the first virtual node at
    or after its own position (wrapping).  Adding shard N+1 only inserts new
    virtual nodes, so the only keys that move are those now preceded by one
    of them — ~1/(N+1) of the keyspace, all landing on the new shard.
    """

    def __init__(self, shards: int, replicas: int = DEFAULT_RING_REPLICAS) -> None:
        if shards < 1:
            raise ValueError(f"ring needs at least 1 shard, got {shards}")
        if replicas < 1:
            raise ValueError(f"ring needs at least 1 replica per shard, got {replicas}")
        self.shards = int(shards)
        self.replicas = int(replicas)
        points = sorted(
            (self._position(f"shard-{shard}#vnode-{replica}"), shard)
            for shard in range(self.shards)
            for replica in range(self.replicas)
        )
        self._positions = [position for position, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def _position(key: str) -> int:
        return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")

    def owner(self, key: str) -> int:
        """The shard id owning ``key`` (a fingerprint hex string)."""
        index = bisect.bisect_right(self._positions, self._position(key))
        if index == len(self._positions):
            index = 0
        return self._owners[index]


@dataclass(frozen=True)
class IndexInfo:
    """Lightweight view of a worker-resident index (what crosses the pipe).

    :meth:`ShardRouter.ensure_index` returns this instead of the full
    :class:`~repro.service.index.SemiLocalIndex` — shipping a built matrix
    back over the pipe would cost more than the build amortises.  It carries
    exactly what warm-up and build-polling callers need.
    """

    fingerprint: str
    kind: str
    length: int
    nbytes: int
    was_built: bool


@dataclass(frozen=True)
class ShardConfig:
    """Per-worker service configuration (picklable; shipped at spawn time).

    ``plan`` is deliberately the *unresolved* CLI-style spec (``None`` /
    ``"default"`` / ``"auto"`` / a concrete :class:`MultiplyPlan`): each
    worker resolves it once at startup, so ``"auto"`` calibration runs once
    per worker process on that worker's own core, never per request.
    """

    mode: str = "sequential"
    delta: float = 0.5
    backend: Optional[str] = None
    cache_bytes: int = DEFAULT_CACHE_BYTES
    spill_root: Optional[str] = None
    plan: Union[None, str, MultiplyPlan] = None
    fanin: Optional[int] = None
    base_size: Optional[int] = None
    #: Chaos-testing plan, installed by each worker at startup so the
    #: worker-side fault sites (dispatch, spill load, index build) fire in
    #: the worker process (plans are picklable; counters restart per pid).
    fault_plan: Optional[FaultPlan] = None


def _worker_spill_dir(config: ShardConfig, shard_id: int) -> Optional[str]:
    """The worker's private spill subdirectory (unique per shard *and* pid).

    Workers sharing one spill root would otherwise collide on
    ``<fingerprint>.npz`` names; the pid component additionally isolates two
    routers (or a restarted worker) pointed at the same root.
    """
    if not config.spill_root:
        return None
    return os.path.join(config.spill_root, f"shard{shard_id}-pid{os.getpid()}")


def _build_worker_service(config: ShardConfig, shard_id: int) -> Tuple[QueryService, Optional[str]]:
    plan = None
    if config.plan is not None or config.fanin is not None or config.base_size is not None:
        # Resolved exactly once per worker: "auto" times its candidate grid
        # here, at startup, and every later request reuses the winner.
        plan = resolve_plan(config.plan, fanin=config.fanin, base_size=config.base_size)
    spill_dir = _worker_spill_dir(config, shard_id)
    cache = IndexCache(max_bytes=config.cache_bytes, spill_dir=spill_dir)
    service = QueryService(
        cache=cache,
        mode=config.mode,
        delta=config.delta,
        backend=config.backend,
        plan=plan,
    )
    return service, spill_dir


def _normalise_ensure(target: TargetSpec, kind: Optional[str], strict: bool) -> Tuple[str, bool]:
    """The kind/strict normalisation of :meth:`QueryService.ensure_index`.

    Replicated router-side because the routing fingerprint must be computed
    *before* any worker is involved — and must reject bad kinds with the
    same :class:`ServiceRequestError` the single-process service raises.
    """
    if kind is None:
        kind = "lcs" if target.kind == "string_pair" else "lis:position"
    if kind not in INDEX_KINDS:
        raise ServiceRequestError(f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}")
    if (kind == "lcs") != (target.kind == "string_pair"):
        raise ServiceRequestError(f"index kind {kind!r} does not fit a {target.kind!r} target")
    return kind, (True if kind == "lcs" else bool(strict))


def _execute_command(
    service: QueryService, shard_id: int, spill_dir: Optional[str], cmd: str, payload: Any
) -> Any:
    """One worker command, shared verbatim by process and in-process shards."""
    if cmd == "ping":
        return {"shard": shard_id, "pid": os.getpid(), "spill_dir": spill_dir}
    if cmd == "submit":
        batch = service.submit(payload)
        return batch.outcomes, batch.indexes_built, batch.indexes_reused
    if cmd == "ensure":
        target, kind, strict = payload
        index, was_cached = service.ensure_index(target, kind, strict=strict)
        info = IndexInfo(
            fingerprint=index.fingerprint,
            kind=index.kind,
            length=int(index.length),
            nbytes=int(index.nbytes),
            was_built=not was_cached,
        )
        return info, was_cached
    if cmd == "prefetch":
        warmed = already = 0
        for target, kind, strict in payload:
            _, was_cached = service.ensure_index(target, kind, strict=strict)
            warmed += 1
            already += 1 if was_cached else 0
        return {"prefetched": warmed, "already_cached": already}
    if cmd == "stats":
        doc = service.stats()
        doc["shard"] = shard_id
        doc["pid"] = os.getpid()
        doc["spill_dir"] = spill_dir
        return doc
    if cmd == "metrics":
        # The worker process's whole registry snapshot (plain picklable
        # dicts); the router stamps it with a shard label and merges it into
        # the /metrics exposition.
        return get_registry().snapshot()
    raise RuntimeError(f"unknown shard worker command {cmd!r}")


def _shard_worker_main(conn, shard_id: int, config: ShardConfig) -> None:
    """Worker-process entry point: serve pipe commands until shutdown.

    Application errors travel back as structured envelopes (the router
    re-raises :class:`ServiceRequestError` for request-level problems) so a
    malformed request never kills the worker; only a genuine crash (signal,
    interpreter death) severs the pipe and triggers the restart path.
    """
    # Fork copies the parent's live registry (counters mid-flight, the
    # router's own collector): start this process's counts from zero or the
    # merged /metrics exposition double-counts after every worker restart.
    get_registry().reset()
    if config.fault_plan is not None:
        install_plan(config.fault_plan)
    service, spill_dir = _build_worker_service(config, shard_id)
    try:
        while True:
            try:
                cmd, payload = conn.recv()
            except (EOFError, OSError):
                break
            if cmd == "shutdown":
                try:
                    conn.send(("ok", None))
                except (OSError, BrokenPipeError):
                    pass
                break
            try:
                # The dispatch fault site runs inside the error envelope:
                # "error" faults travel back as structured internal errors,
                # while "crash"/"hang" behave like the real thing (pipe EOF
                # / unresponsive worker) and exercise the recovery paths.
                fault_point("worker.dispatch", shard=shard_id, cmd=cmd)
                result = _execute_command(service, shard_id, spill_dir, cmd, payload)
                conn.send(("ok", result))
            except ServiceRequestError as exc:
                conn.send(("error", ("request", str(exc))))
            except Exception as exc:  # noqa: BLE001 — workers must stay up
                conn.send(("error", ("internal", f"{type(exc).__name__}: {exc}")))
    finally:
        if spill_dir is not None:
            shutil.rmtree(spill_dir, ignore_errors=True)
        conn.close()


class _WorkerBase:
    """Common surface of the two worker flavours (process and inline)."""

    kind = "abstract"

    def __init__(self, shard_id: int, config: ShardConfig) -> None:
        self.shard_id = shard_id
        self.config = config
        #: Serialises calls onto this worker's pipe/service (one in-flight
        #: command per worker; the router's timing split measures the wait).
        self.lock = threading.Lock()
        self.requests_routed = 0
        self.sub_batches = 0
        self.restarts = 0
        self.hangs = 0
        self.spill_dir: Optional[str] = None

    def call(
        self,
        cmd: str,
        payload: Any,
        deadline_seconds: Optional[float] = None,
        hang_seconds: Optional[float] = None,
    ) -> Any:
        raise NotImplementedError

    def restart(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def _cleanup_spill(self) -> None:
        if self.spill_dir is not None:
            shutil.rmtree(self.spill_dir, ignore_errors=True)


class _ProcessWorker(_WorkerBase):
    """A long-lived worker process reached over a duplex pipe."""

    kind = "process"

    def __init__(self, shard_id: int, config: ShardConfig, ctx) -> None:
        super().__init__(shard_id, config)
        self._ctx = ctx
        self.process = None
        self.conn = None
        #: Answers owed to calls a deadline abandoned mid-wait.  The pipe is
        #: strictly request→response, so an abandoned call leaves one stale
        #: message in flight; the next call drains it first to stay in sync
        #: (this is what keeps a short deadline from costing a warm cache).
        self._stale = 0
        self._spawn()

    def _spawn(self) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child, self.shard_id, self.config),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        process.start()
        child.close()
        self.process = process
        self.conn = parent
        self._stale = 0
        # The worker derives its spill subdir from its own pid; mirror the
        # derivation here so leftover directories of *crashed* workers can
        # still be removed at router close.
        if self.config.spill_root:
            self.spill_dir = os.path.join(
                self.config.spill_root, f"shard{self.shard_id}-pid{process.pid}"
            )

    def call(
        self,
        cmd: str,
        payload: Any,
        deadline_seconds: Optional[float] = None,
        hang_seconds: Optional[float] = None,
    ) -> Any:
        """One pipe round-trip, waited with poll — never a blocking recv.

        ``hang_seconds`` is the liveness budget: a worker that produces no
        answer within it is declared hung, **killed** and reported as
        :class:`ShardWorkerHang` (the restart/retry path treats it exactly
        like a crash).  ``deadline_seconds`` is the *request's* remaining
        budget: when it runs out first the call is abandoned — the worker
        stays alive (its answer is drained by the next call) and the caller
        gets :class:`~repro.resilience.deadline.DeadlineExceeded`.
        """
        if self.process is None or not self.process.is_alive():
            raise ShardWorkerCrash(f"shard {self.shard_id} worker process is dead")
        now = time.monotonic()
        hang_at = now + hang_seconds if hang_seconds is not None else None
        deadline_at = now + deadline_seconds if deadline_seconds is not None else None
        try:
            self._drain_stale(hang_at)
            fault_point("pipe.send", shard=self.shard_id, cmd=cmd)
            self.conn.send((cmd, payload))
            fault_point("pipe.recv", shard=self.shard_id, cmd=cmd)
            self._await_answer(cmd, hang_at, deadline_at)
            status, result = self.conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise ShardWorkerCrash(
                f"shard {self.shard_id} worker died mid-call ({type(exc).__name__})"
            ) from None
        if status == "ok":
            return result
        category, message = result
        if category == "request":
            raise ServiceRequestError(message)
        raise RuntimeError(f"shard {self.shard_id} worker error: {message}")

    def _drain_stale(self, hang_at: Optional[float]) -> None:
        """Discard answers owed to deadline-abandoned calls (resync the pipe)."""
        while self._stale > 0:
            now = time.monotonic()
            if hang_at is not None and now >= hang_at:
                self.hangs += 1
                self._kill()
                raise ShardWorkerHang(
                    f"shard {self.shard_id} worker never delivered an abandoned "
                    f"call's answer; killed"
                )
            step = _POLL_STEP if hang_at is None else min(_POLL_STEP, hang_at - now)
            if self.conn.poll(max(step, 0.0)):
                self.conn.recv()
                self._stale -= 1
            elif self.process is None or not self.process.is_alive():
                raise ShardWorkerCrash(
                    f"shard {self.shard_id} worker died while draining stale answers"
                )

    def _await_answer(
        self, cmd: str, hang_at: Optional[float], deadline_at: Optional[float]
    ) -> None:
        """Poll until the answer is readable, a timeout fires, or the worker dies."""
        while True:
            now = time.monotonic()
            step = _POLL_STEP
            if hang_at is not None:
                if now >= hang_at:
                    self.hangs += 1
                    self._kill()
                    raise ShardWorkerHang(
                        f"shard {self.shard_id} worker unresponsive on {cmd!r}; killed"
                    )
                step = min(step, hang_at - now)
            if deadline_at is not None:
                if now >= deadline_at:
                    # Abandon, don't kill: the worker is (as far as we know)
                    # healthy mid-compute; its late answer is drained by the
                    # next call so the warm cache survives the tight budget.
                    self._stale += 1
                    note_expiry("worker", shard=self.shard_id, cmd=cmd)
                    raise DeadlineExceeded(
                        f"deadline expired waiting on shard {self.shard_id} ({cmd})",
                        stage="worker",
                    )
                step = min(step, deadline_at - now)
            if self.conn.poll(max(step, 0.0)):
                return
            if self.process is None or not self.process.is_alive():
                raise ShardWorkerCrash(
                    f"shard {self.shard_id} worker died mid-call (process exit)"
                )

    def _kill(self) -> None:
        """Terminate a hung-but-alive worker so restart() does not wait on it."""
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
        self._stale = 0

    def restart(self) -> None:
        self._teardown(graceful=False)
        self.restarts += 1
        self._spawn()

    def stop(self) -> None:
        self._teardown(graceful=True)
        self._cleanup_spill()

    def _teardown(self, graceful: bool) -> None:
        if self.conn is not None:
            if graceful and self.process is not None and self.process.is_alive():
                try:
                    self.conn.send(("shutdown", None))
                    # Wait for the ack so the worker's spill cleanup ran.
                    if self.conn.poll(5.0):
                        self.conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    pass
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None:
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=5.0)
            self.process = None


class _InlineWorker(_WorkerBase):
    """The graceful fallback: a shard served in-process.

    Same ring position, same private cache and spill subdirectory, same
    command surface — only the process boundary (and therefore the
    parallelism) is gone.  Used when the router runs inside a daemonic
    worker, when multiprocessing is unavailable, or on ``force_serial``.
    """

    kind = "inline"

    def __init__(self, shard_id: int, config: ShardConfig) -> None:
        super().__init__(shard_id, config)
        self._service, self.spill_dir = _build_worker_service(config, shard_id)

    def call(
        self,
        cmd: str,
        payload: Any,
        deadline_seconds: Optional[float] = None,
        hang_seconds: Optional[float] = None,
    ) -> Any:
        # Inline execution cannot hang on a pipe; the timeouts are accepted
        # for signature parity and ignored (deadlines are still enforced at
        # the router and edge checkpoints around this call).
        return _execute_command(self._service, self.shard_id, self.spill_dir, cmd, payload)

    def restart(self) -> None:  # pragma: no cover - inline workers cannot crash
        self.restarts += 1
        self._service, self.spill_dir = _build_worker_service(self.config, self.shard_id)

    def stop(self) -> None:
        self._cleanup_spill()


class _Aggregate:
    """Streaming (count / total / max) aggregate of one timing component."""

    __slots__ = ("count", "total", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def add(self, seconds: float, count: int = 1) -> None:
        self.count += int(count)
        self.total += float(seconds)
        self.max = max(self.max, float(seconds))

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.total / self.count if self.count else 0.0,
            "max_seconds": self.max,
        }


class ShardRouter:
    """Fan a mixed query batch out across N sharded worker processes.

    The router exposes the :class:`QueryService` serving surface —
    :meth:`submit`, :meth:`ensure_index`, :meth:`stats` — plus
    :meth:`prefetch` (warm-up) and :meth:`close` (worker teardown), and a
    ``concurrency`` attribute the HTTP front-end uses to size its executor.
    Answers are bit-identical to a single-process service; only wall-clock
    and cache placement change.

    Parameters
    ----------
    shards:
        Worker count (default: ``max(2, cpu_count)``, mirroring the engine
        backends).
    mode, delta, backend:
        Per-worker :class:`QueryService` build mechanics.
    plan, fanin, base_size:
        Multiply-plan spec, resolved **once per worker process** (so
        ``plan="auto"`` calibrates per worker, never per request).
    cache_bytes:
        Per-worker in-memory index budget.
    spill_dir:
        Spill root; every worker derives a private ``shardI-pidP``
        subdirectory under it and removes it at shutdown.
    replicas:
        Virtual nodes per shard on the hash ring.
    retry_limit:
        Bounded restart-and-retry attempts per sub-batch after a worker
        crash (the prepare/submit/wait-with-retry fan-out pattern).  The
        retries themselves are paced by ``retry_policy`` and capped by
        ``retry_budget``.
    retry_policy, retry_budget:
        Decorrelated-jitter backoff between retries and the process-wide
        retry token bucket (defaults: :class:`RetryPolicy()` /
        :class:`RetryBudget()`).
    breaker:
        :class:`~repro.resilience.breaker.BreakerConfig` shared by every
        shard's circuit breaker.  An open shard serves from the router's
        inline degraded fallback (outcomes flagged ``degraded=True``).
    worker_timeout:
        Liveness budget (seconds) for one worker pipe wait; a worker
        silent past it is killed and restarted like a crashed one.
    fault_plan:
        Chaos plan, installed process-wide *and* shipped to every worker.
    force_serial:
        Skip process workers and serve every shard in-process.
    """

    def __init__(
        self,
        shards: Optional[int] = None,
        *,
        mode: str = "sequential",
        delta: float = 0.5,
        backend: Optional[str] = None,
        plan: Union[None, str, MultiplyPlan] = None,
        fanin: Optional[int] = None,
        base_size: Optional[int] = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        spill_dir: Optional[str] = None,
        replicas: int = DEFAULT_RING_REPLICAS,
        retry_limit: int = 2,
        retry_policy: Optional[RetryPolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
        breaker: Optional[BreakerConfig] = None,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
        fault_plan: Optional[FaultPlan] = None,
        force_serial: bool = False,
    ) -> None:
        if shards is None:
            shards = max(2, os.cpu_count() or 1)
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if retry_limit < 0:
            raise ValueError(f"retry_limit must be non-negative, got {retry_limit}")
        if worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be positive, got {worker_timeout}")
        self.shards = int(shards)
        self.retry_limit = int(retry_limit)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.retry_budget = retry_budget if retry_budget is not None else RetryBudget()
        self.breaker_config = breaker if breaker is not None else BreakerConfig()
        self.worker_timeout = float(worker_timeout)
        if fault_plan is not None:
            # The router-side sites (pipe.send/recv, and cache/build sites
            # of the inline fallback) read the process-wide plan; workers
            # additionally install their shipped copy at startup.
            install_plan(fault_plan)
        self.config = ShardConfig(
            mode=mode,
            delta=float(delta),
            backend=backend,
            cache_bytes=int(cache_bytes),
            spill_root=spill_dir,
            plan=plan,
            fanin=fanin,
            base_size=base_size,
            fault_plan=fault_plan,
        )
        self.ring = ConsistentHashRing(self.shards, replicas=replicas)
        self.serial_fallback: Optional[str] = None
        self._workers: List[_WorkerBase] = []
        self._start_workers(force_serial)
        self._pool = ThreadPoolExecutor(
            max_workers=self.shards, thread_name_prefix="repro-shard-router"
        )
        self._fingerprints: Dict[Tuple[TargetSpec, str, bool], str] = {}
        self._metrics_lock = threading.Lock()
        self.queue_wait = _Aggregate()
        self.shard_exec = _Aggregate()
        self.batches_routed = 0
        self.requests_routed = 0
        self.retries = 0
        self.degraded_requests = 0
        self.closed = False
        #: Deterministic jitter source + injectable sleep (tests stub both).
        self._rng = random.Random(0x5EED ^ self.shards)
        self._sleep = time.sleep
        self._fallback_lock = threading.Lock()
        self._fallback_service: Optional[QueryService] = None
        registry = get_registry()
        self._pipe_seconds = registry.histogram(
            "repro_shard_pipe_seconds",
            "Router-side round-trip of one worker command (pipe + execution)",
            ("cmd",),
        )
        self._retries_metric = registry.counter(
            "repro_shard_retries_total", "Sub-batches retried after a worker crash"
        )
        self._breaker_transitions = registry.counter(
            "repro_breaker_transitions_total",
            "Circuit breaker state transitions per shard",
            ("shard", "from", "to"),
        )
        self._degraded_metric = registry.counter(
            "repro_degraded_requests_total",
            "Requests served by the inline degraded fallback (breaker open / "
            "retries exhausted)",
            ("shard",),
        )
        self._breakers = [
            CircuitBreaker(
                self.breaker_config,
                name=str(shard),
                on_transition=self._note_breaker_transition,
            )
            for shard in range(self.shards)
        ]
        # Per-shard routing counters are *collected* from the same
        # worker.requests_routed the /stats document reports, so the two
        # surfaces reconcile exactly instead of drifting in parallel counts.
        self._collector = self._collect_shard_series
        registry.register_collector(self._collector)

    # ------------------------------------------------------------- lifecycle
    @property
    def concurrency(self) -> int:
        """How many service calls may usefully run at once (shard count)."""
        return self.shards if self.serial_fallback is None else 1

    def _start_workers(self, force_serial: bool) -> None:
        if force_serial:
            self.serial_fallback = "forced"
        elif in_daemonic_process():
            # Daemonic pool workers (the experiment runner's --workers
            # fan-out) cannot spawn children; same rule as ProcessBackend.
            self.serial_fallback = "daemonic process"
        if self.serial_fallback is None:
            try:
                ctx = fork_context()
                self._workers = [
                    _ProcessWorker(shard, self.config, ctx) for shard in range(self.shards)
                ]
                return
            except Exception as exc:  # pragma: no cover - sandboxed hosts
                for worker in self._workers:
                    try:
                        worker.stop()
                    except Exception:
                        pass
                self._workers = []
                self.serial_fallback = f"multiprocessing unavailable: {type(exc).__name__}: {exc}"
        self._workers = [_InlineWorker(shard, self.config) for shard in range(self.shards)]

    def close(self) -> None:
        """Shut every worker down and remove their spill subdirectories."""
        if self.closed:
            return
        self.closed = True
        get_registry().unregister_collector(self._collector)
        self._pool.shutdown(wait=True)
        for worker in self._workers:
            with worker.lock:
                try:
                    worker.stop()
                except Exception:  # noqa: BLE001 — teardown is best-effort
                    pass

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- routing
    def routing_fingerprint(self, target: TargetSpec, kind: str, strict: bool) -> str:
        """The content fingerprint a request routes by (memoised per spec)."""
        key = (target, kind, strict)
        fingerprint = self._fingerprints.get(key)
        if fingerprint is None:
            realised = target.realise()
            if kind == "lcs":
                fingerprint = lcs_index_fingerprint(*realised)
            else:
                fingerprint = lis_index_fingerprint(realised, kind, strict)
            self._fingerprints[key] = fingerprint
        return fingerprint

    def shard_for(self, target: TargetSpec, kind: str, strict: bool) -> int:
        """The shard id owning the index a ``(target, kind, strict)`` needs."""
        return self.ring.owner(self.routing_fingerprint(target, kind, strict))

    def _shard_for_request(self, request: QueryRequest) -> int:
        kind = request.index_kind()
        strict = bool(request.strict) if kind != "lcs" else True
        # Refresh routes by the *original* target's value index — that is the
        # cached product it patches in place; the re-fingerprinted extended
        # index lands in the same worker's cache.
        return self.shard_for(request.target, kind, strict)

    def _note_breaker_transition(self, name: str, old: str, new: str) -> None:
        self._breaker_transitions.inc(shard=name, **{"from": old, "to": new})
        span_event("breaker_transition", shard=name, old_state=old, new_state=new)

    def _call(
        self,
        shard_id: int,
        cmd: str,
        payload: Any,
        request_count: int = 0,
        breaker: Optional[CircuitBreaker] = None,
    ) -> Any:
        """One worker command with crash/hang detection, backoff-paced retry.

        The wait on the pipe is bounded twice over: by ``worker_timeout``
        (liveness — a silent worker is killed and restarted) and by the
        ambient request deadline (the call is abandoned, the worker lives).
        Crashes retry up to ``retry_limit`` times, each retry paced by the
        decorrelated-jitter :class:`RetryPolicy` and paid for from the
        shared :class:`RetryBudget`; when ``breaker`` is given, every
        attempt's outcome feeds the shard's circuit breaker.
        """
        worker = self._workers[shard_id]
        deadline = current_deadline()
        waited_from = time.perf_counter()
        with worker.lock:
            waited = time.perf_counter() - waited_from
            last_crash: Optional[ShardWorkerCrash] = None
            attempt = 0
            delay = 0.0
            while True:
                if deadline is not None and deadline.expired:
                    note_expiry("router", shard=shard_id, cmd=cmd)
                    raise DeadlineExceeded(
                        f"deadline ({deadline.describe()}) expired before shard "
                        f"{shard_id} dispatch",
                        stage="router",
                    )
                executing_from = time.perf_counter()
                try:
                    result = worker.call(
                        cmd,
                        payload,
                        deadline_seconds=(
                            deadline.remaining() if deadline is not None else None
                        ),
                        hang_seconds=self.worker_timeout,
                    )
                except ShardWorkerCrash as crash:
                    last_crash = crash
                    attempt += 1
                    if breaker is not None:
                        breaker.record_failure()
                    if isinstance(crash, ShardWorkerHang):
                        span_event(
                            "shard_hang", shard=shard_id, cmd=cmd, attempt=attempt
                        )
                    span_event(
                        "shard_restart", shard=shard_id, attempt=attempt - 1, cmd=cmd
                    )
                    worker.restart()
                    if attempt > self.retry_limit:
                        break
                    if not self.retry_budget.try_spend():
                        raise ShardRetriesExhausted(
                            f"shard {shard_id} worker crashed and the retry budget "
                            f"is exhausted; failing fast ({last_crash})"
                        )
                    delay = self.retry_policy.backoff(delay, self._rng)
                    if deadline is not None:
                        remaining = deadline.remaining()
                        if remaining <= 0.0:
                            note_expiry("router", shard=shard_id, cmd=cmd)
                            raise DeadlineExceeded(
                                f"deadline expired backing off for shard {shard_id}",
                                stage="router",
                            )
                        delay = min(delay, remaining)
                    with self._metrics_lock:
                        self.retries += 1
                    self._retries_metric.inc()
                    span_event(
                        "shard_retry",
                        shard=shard_id,
                        attempt=attempt,
                        backoff_seconds=delay,
                    )
                    self._sleep(delay)
                    continue
                except DeadlineExceeded:
                    raise
                except ServiceRequestError:
                    # The worker answered; the *request* was bad.  Healthy.
                    if breaker is not None:
                        breaker.record_success()
                    self.retry_budget.credit()
                    raise
                except RuntimeError:
                    # Structured internal error (or an injected router-side
                    # fault): the worker is alive but failing — this is the
                    # error-rate signal the breaker's window threshold eats.
                    if breaker is not None:
                        breaker.record_failure()
                    raise
                if breaker is not None:
                    breaker.record_success()
                self.retry_budget.credit()
                self._pipe_seconds.observe(time.perf_counter() - executing_from, cmd=cmd)
                if request_count:
                    # The timing split covers request-bearing work only
                    # (submit / ensure), not stats polls — otherwise every
                    # /stats scrape would dilute the means it reports.
                    worker.requests_routed += request_count
                    worker.sub_batches += 1
                    with self._metrics_lock:
                        self.queue_wait.add(waited, request_count)
                        self.shard_exec.add(
                            time.perf_counter() - executing_from, request_count
                        )
                return result
        raise ShardRetriesExhausted(
            f"shard {shard_id} worker crashed {attempt} times on one "
            f"sub-batch; giving up ({last_crash})"
        )

    # ---------------------------------------------------------------- submit
    def submit(self, requests: Sequence[QueryRequest]) -> ServiceBatchResult:
        """Answer a mixed batch, bit-identically to ``QueryService.submit``.

        The batch is split by owning shard, the per-shard sub-batches are
        dispatched concurrently (each preserves its requests' relative
        order, which ``QueryService.submit`` echoes back), and the per-shard
        outcome lists are demuxed into the original batch positions.
        """
        if self.closed:
            raise RuntimeError("ShardRouter is closed")
        requests = list(requests)
        started = time.perf_counter()
        sub_batches: Dict[int, List[Tuple[int, QueryRequest]]] = {}
        for position, request in enumerate(requests):
            if request.op not in OPS:
                # Fail the whole batch before any shard spends build work —
                # the same early rejection the single-process service does.
                raise ServiceRequestError(
                    f"request {request.request_id!r}: unknown op {request.op!r}"
                )
            sub_batches.setdefault(self._shard_for_request(request), []).append(
                (position, request)
            )

        def run_shard(shard_id: int, members: List[Tuple[int, QueryRequest]]):
            sub_requests = [request for _, request in members]
            breaker = self._breakers[shard_id]
            if not breaker.allow():
                # Breaker open (or a probe already in flight): do not touch
                # the worker at all — serve stale-tolerant from the inline
                # fallback, flagged degraded.
                return self._serve_degraded(shard_id, sub_requests)
            with span("worker", shard=shard_id, requests=len(sub_requests)):
                try:
                    return self._call(
                        shard_id,
                        "submit",
                        sub_requests,
                        request_count=len(sub_requests),
                        breaker=breaker,
                    )
                except DeadlineExceeded:
                    # Says nothing about worker health — hand back the probe
                    # slot (no-op unless half-open) so the breaker can't wedge.
                    breaker.release_probe()
                    raise
                except ShardRetriesExhausted:
                    if breaker.state == "open":
                        # The crash loop tripped the breaker: this sub-batch
                        # still gets an answer, just a degraded one.
                        return self._serve_degraded(shard_id, sub_requests)
                    raise

        items = sorted(sub_batches.items())
        with span("route", sub_batches=len(items)):
            if len(items) == 1:
                shard_id, members = items[0]
                shard_results = [(members, run_shard(shard_id, members))]
            else:
                # The pool threads do not inherit the caller's contextvars, so
                # each dispatch carries a fresh context copy — worker spans
                # land under this route span even across the thread hop.
                futures = [
                    (
                        members,
                        self._pool.submit(
                            contextvars.copy_context().run, run_shard, shard_id, members
                        ),
                    )
                    for shard_id, members in items
                ]
                # Wait for every sub-batch before surfacing the first error, so
                # no dispatch is left running against torn-down state.
                shard_results, first_error = [], None
                for members, future in futures:
                    try:
                        shard_results.append((members, future.result()))
                    except Exception as exc:  # noqa: BLE001 — re-raised below
                        if first_error is None:
                            first_error = exc
                if first_error is not None:
                    raise first_error

        outcomes: List[Any] = [None] * len(requests)
        built = reused = 0
        for members, (sub_outcomes, sub_built, sub_reused) in shard_results:
            for (position, _), outcome in zip(members, sub_outcomes):
                outcomes[position] = outcome
            built += sub_built
            reused += sub_reused
        with self._metrics_lock:
            self.batches_routed += 1
            self.requests_routed += len(requests)
        return ServiceBatchResult(
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            seconds=time.perf_counter() - started,
            indexes_built=built,
            indexes_reused=reused,
        )

    def _serve_degraded(self, shard_id: int, sub_requests: List[QueryRequest]):
        """Answer one shard's sub-batch from the router-local fallback.

        Used while the shard's breaker is open: the requests are served by a
        lazily built in-process :class:`QueryService` (no spill directory, no
        fault plan — the fallback must stay boring) and every outcome is
        flagged ``degraded=True`` so callers can tell a possibly-stale answer
        from a worker-fresh one.  Returns the same ``(outcomes, built,
        reused)`` tuple the worker's ``submit`` command produces.
        """
        service = self._fallback_service
        if service is None:
            with self._fallback_lock:
                service = self._fallback_service
                if service is None:
                    fallback_config = replace(
                        self.config, spill_root=None, fault_plan=None
                    )
                    service, _ = _build_worker_service(fallback_config, -1)
                    self._fallback_service = service
        with span("degraded", shard=shard_id, requests=len(sub_requests)):
            result = service.submit(sub_requests)
        outcomes = [replace(outcome, degraded=True) for outcome in result.outcomes]
        with self._metrics_lock:
            self.degraded_requests += len(sub_requests)
        self._degraded_metric.inc(len(sub_requests), shard=str(shard_id))
        span_event(
            "degraded_serve", shard=shard_id, requests=len(sub_requests)
        )
        return outcomes, result.indexes_built, result.indexes_reused

    # --------------------------------------------------------------- warm-up
    def ensure_index(
        self, target: TargetSpec, kind: Optional[str] = None, *, strict: bool = True
    ) -> Tuple[IndexInfo, bool]:
        """Build (or fetch) ``target``'s index on its owning shard.

        Returns ``(info, was_cached)`` where ``info`` is an
        :class:`IndexInfo` view — the built matrix stays resident in the
        worker; only its identity crosses the pipe.
        """
        if self.closed:
            raise RuntimeError("ShardRouter is closed")
        kind, strict = _normalise_ensure(target, kind, strict)
        shard_id = self.shard_for(target, kind, strict)
        return self._call(shard_id, "ensure", (target, kind, strict), request_count=1)

    def prefetch(
        self,
        targets: Sequence[Union[TargetSpec, Tuple[TargetSpec, Optional[str]], Tuple[TargetSpec, Optional[str], bool]]],
    ) -> Dict[str, Any]:
        """Warm hot fingerprints: build each target's index on its owner.

        Accepts bare :class:`TargetSpec` items or ``(target, kind[, strict])``
        tuples; specs are grouped by owning shard and each shard warms its
        group in one command.  Returns per-shard and total warm-up counts.
        """
        if self.closed:
            raise RuntimeError("ShardRouter is closed")
        groups: Dict[int, List[Tuple[TargetSpec, str, bool]]] = {}
        for item in targets:
            if isinstance(item, TargetSpec):
                target, kind, strict = item, None, True
            elif len(item) == 2:
                (target, kind), strict = item, True
            else:
                target, kind, strict = item
            kind, strict = _normalise_ensure(target, kind, strict)
            shard_id = self.shard_for(target, kind, strict)
            groups.setdefault(shard_id, []).append((target, kind, strict))

        def run_shard(shard_id: int, specs: List[Tuple[TargetSpec, str, bool]]):
            return self._call(shard_id, "prefetch", specs, request_count=0)

        items = sorted(groups.items())
        if len(items) <= 1:
            results = [(shard_id, run_shard(shard_id, specs)) for shard_id, specs in items]
        else:
            futures = [
                (shard_id, self._pool.submit(run_shard, shard_id, specs))
                for shard_id, specs in items
            ]
            results = [(shard_id, future.result()) for shard_id, future in futures]
        per_shard = {shard_id: outcome for shard_id, outcome in results}
        return {
            "prefetched": sum(outcome["prefetched"] for outcome in per_shard.values()),
            "already_cached": sum(outcome["already_cached"] for outcome in per_shard.values()),
            "per_shard": per_shard,
        }

    # --------------------------------------------------------------- metrics
    def _collect_shard_series(self) -> Dict[str, Any]:
        """Per-shard router counters as a snapshot fragment (see __init__)."""
        requests = {"type": "counter",
                    "help": "Requests routed to each shard (router-side count)",
                    "samples": []}
        sub_batches = {"type": "counter",
                       "help": "Sub-batches dispatched to each shard",
                       "samples": []}
        restarts = {"type": "counter",
                    "help": "Worker restarts after a crash, per shard",
                    "samples": []}
        hangs = {"type": "counter",
                 "help": "Hung workers detected (and killed), per shard",
                 "samples": []}
        breaker_state = {"type": "gauge",
                         "help": "Per-shard breaker state (0=closed, 1=half_open, 2=open)",
                         "samples": []}
        for worker in self._workers:
            labels = [["shard", str(worker.shard_id)]]
            requests["samples"].append([labels, worker.requests_routed])
            sub_batches["samples"].append([labels, worker.sub_batches])
            restarts["samples"].append([labels, worker.restarts])
            hangs["samples"].append([labels, worker.hangs])
            breaker_state["samples"].append(
                [labels, BREAKER_STATE_CODES[self._breakers[worker.shard_id].state]]
            )
        return {
            "repro_shard_requests_total": requests,
            "repro_shard_sub_batches_total": sub_batches,
            "repro_shard_restarts_total": restarts,
            "repro_shard_hangs_total": hangs,
            "repro_breaker_state": breaker_state,
        }

    def extra_metric_snapshots(self) -> List[Dict[str, Any]]:
        """Shard-stamped registry snapshots fetched from each worker process.

        Inline (fallback) workers share this process's registry — their
        counts are already in the local snapshot — so only process workers
        are polled; a worker that cannot answer is skipped rather than
        failing the scrape.
        """
        snapshots: List[Dict[str, Any]] = []
        for worker in self._workers:
            if worker.kind != "process":
                continue
            try:
                snap = self._call(worker.shard_id, "metrics", None)
            except (RuntimeError, ShardWorkerCrash, ServiceRequestError):
                continue
            snapshots.append(relabel_snapshot(snap, {"shard": str(worker.shard_id)}))
        return snapshots

    # ----------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        """Router + per-shard statistics (JSON-safe; surfaces in ``/stats``).

        Includes the top-level keys the single-process service stats carry
        (``mode``/``delta``/``backend``/``cache``), with the cache counters
        *aggregated* across shards, so artifact writers and dashboards read
        one shape regardless of sharding.
        """
        per_shard: List[Dict[str, Any]] = []
        for worker in self._workers:
            try:
                doc = self._call(worker.shard_id, "stats", None)
            except (RuntimeError, ShardWorkerCrash) as exc:
                doc = {"shard": worker.shard_id, "error": str(exc)}
            doc["worker"] = worker.kind
            doc["requests_routed"] = worker.requests_routed
            doc["sub_batches"] = worker.sub_batches
            doc["restarts"] = worker.restarts
            per_shard.append(doc)

        routed = [worker.requests_routed for worker in self._workers]
        total_routed = sum(routed)
        mean_routed = total_routed / len(routed) if routed else 0.0
        imbalance = (max(routed) / mean_routed) if mean_routed > 0 else 0.0

        cache_keys = (
            "entries",
            "current_bytes",
            "hits",
            "misses",
            "evictions",
            "spill_saves",
            "spill_loads",
            "oversize_spills",
        )
        cache: Dict[str, Any] = {key: 0 for key in cache_keys}
        for doc in per_shard:
            counters = doc.get("cache") or {}
            for key in cache_keys:
                cache[key] += int(counters.get(key, 0))
        cache["max_bytes"] = int(self.config.cache_bytes) * self.shards
        cache["per_shard_max_bytes"] = int(self.config.cache_bytes)
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / lookups if lookups else 0.0

        # Aggregated single-process-shaped counters, so CLI summaries and
        # artifact writers read one stats shape regardless of sharding.
        service_totals: Dict[str, Any] = {
            "queries_evaluated": 0,
            "indexes_built": 0,
            "indexes_refreshed": 0,
            "build_seconds": 0.0,
            "query_seconds": 0.0,
            "refresh_seconds": 0.0,
        }
        for doc in per_shard:
            for key in service_totals:
                service_totals[key] += doc.get(key, 0)

        with self._metrics_lock:
            timings = {
                "queue_wait": self.queue_wait.summary(),
                "shard_exec": self.shard_exec.summary(),
            }
            batches, requests, retries = self.batches_routed, self.requests_routed, self.retries
            degraded = self.degraded_requests

        resilience: Dict[str, Any] = {
            "worker_timeout_seconds": self.worker_timeout,
            "retry_policy": {
                "base_seconds": self.retry_policy.base_seconds,
                "cap_seconds": self.retry_policy.cap_seconds,
                "multiplier": self.retry_policy.multiplier,
            },
            "retry_budget": self.retry_budget.stats(),
            "hangs": sum(worker.hangs for worker in self._workers),
            "degraded_requests": degraded,
            "breakers": {
                str(shard): self._breakers[shard].stats()
                for shard in range(self.shards)
            },
        }
        plan = active_plan()
        if plan is not None:
            resilience["fault_plan"] = plan.stats()
        return {
            "sharded": True,
            "shards": self.shards,
            "workers": self._workers[0].kind if self._workers else "none",
            "serial_fallback": self.serial_fallback,
            "ring_replicas": self.ring.replicas,
            "retry_limit": self.retry_limit,
            "mode": self.config.mode,
            "delta": self.config.delta,
            "backend": self.config.backend or "serial",
            "plan": self.config.plan.describe()
            if isinstance(self.config.plan, MultiplyPlan)
            else self.config.plan,
            "batches_served": batches,
            "requests_served": requests,
            **service_totals,
            "restarts": sum(worker.restarts for worker in self._workers),
            "retries": retries,
            "load": {
                "per_shard_requests": routed,
                "shards_exercised": sum(1 for count in routed if count > 0),
                "imbalance": imbalance,
            },
            "router_timings": timings,
            "resilience": resilience,
            "cache": cache,
            "per_shard": per_shard,
        }
