"""The cache layer: a byte-budgeted LRU over built semi-local indexes.

The whole premise of the serving subsystem is that one seaweed build answers
unboundedly many queries — so built indexes must be *kept*.  The
:class:`IndexCache` holds them in memory under a byte budget (sized through
each index's honest ``nbytes``, which includes the dominance-count
acceleration structures), evicts least-recently-used entries when over
budget, and can optionally **spill** evicted entries to compressed ``.npz``
files so a later request pays a disk load instead of a full rebuild.

Every interaction is counted (hits / misses / evictions / spill round-trips);
the counters surface in service stats and in the ``service_throughput``
artifact, because a cache without observable hit-rates cannot be tuned.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from .index import SemiLocalIndex
from ..obs.metrics import get_registry
from ..obs.trace import span_event
from ..resilience.faults import fault_point

__all__ = ["IndexCache", "DEFAULT_CACHE_BYTES"]

# Registry-level mirrors of the per-instance counters below: every cache in
# the process records into the same labelled series, so a /metrics scrape
# sees the cache behaviour of the whole process (and, merged over the shard
# pipe, of the whole fleet).
_LOOKUPS = get_registry().counter(
    "repro_cache_lookups_total", "Index cache lookups by outcome", ("result",)
)
_EVICTIONS = get_registry().counter(
    "repro_cache_evictions_total", "LRU evictions from the index cache"
)
_SPILLS = get_registry().counter(
    "repro_cache_spills_total", "Disk spill round-trips by direction", ("direction",)
)
_RESIDENT_BYTES = get_registry().gauge(
    "repro_cache_resident_bytes", "Bytes resident across this process's index caches"
)

#: Default in-memory budget: generous for laptop-scale experiments, small
#: enough that the eviction path is actually exercised by real workloads.
DEFAULT_CACHE_BYTES = 256 << 20


class IndexCache:
    """Byte-budgeted LRU cache of :class:`SemiLocalIndex` objects.

    Parameters
    ----------
    max_bytes:
        In-memory budget.  An index whose ``nbytes`` exceeds the *whole*
        budget can never share memory with other entries, so inserting it
        must not trigger a degenerate evict-everything loop: oversized
        indexes spill straight to disk when ``spill_dir`` is set (later
        lookups pay a disk load, not a rebuild) and otherwise are admitted
        only into an empty cache — one oversized index beats caching
        nothing, but never at the price of flushing every resident entry.
    spill_dir:
        When set, evicted indexes are written to ``<spill_dir>/<fp>.npz``
        and looked up there on a memory miss (``spill_loads`` counts the
        successful reloads).  ``None`` disables disk spill.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES, spill_dir: Optional[str] = None) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.spill_dir = spill_dir
        self._entries: "OrderedDict[str, SemiLocalIndex]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spill_saves = 0
        self.spill_loads = 0
        self.oversize_spills = 0

    # ----------------------------------------------------------------- spill
    def _spill_path(self, fingerprint: str) -> Optional[str]:
        if self.spill_dir is None:
            return None
        return os.path.join(self.spill_dir, f"{fingerprint}.npz")

    def _spill_save(self, index: SemiLocalIndex) -> None:
        path = self._spill_path(index.fingerprint)
        if path is None:
            return
        os.makedirs(self.spill_dir, exist_ok=True)
        # Write-then-rename so a crash mid-eviction never leaves a truncated
        # file under the final name (rename is atomic within a directory).
        # The temp name keeps the .npz suffix — np.savez would append one —
        # and embeds the pid so caches in different processes sharing a
        # spill directory never scribble over each other's half-written temp
        # file (shard workers get a private subdirectory on top of this, see
        # :mod:`repro.service.sharding`).
        tmp_path = f"{path}.{os.getpid()}.tmp.npz"
        index.save(tmp_path)
        os.replace(tmp_path, path)
        self.spill_saves += 1
        _SPILLS.inc(direction="save")
        span_event(
            "cache_spill_save", fingerprint=index.fingerprint, nbytes=index.nbytes
        )

    def _spill_load(self, fingerprint: str) -> Optional[SemiLocalIndex]:
        path = self._spill_path(fingerprint)
        if path is None or not os.path.exists(path):
            return None
        if fault_point("cache.spill_load", fingerprint=fingerprint) == "corrupt":
            # Chaos plans corrupt the file *for real* (truncate to garbage)
            # so the degrade-to-rebuild path below runs exactly as it would
            # for a torn write or a foreign file — no simulated shortcut.
            try:
                with open(path, "wb") as handle:
                    handle.write(b"corrupt")
            except OSError:
                pass
        try:
            index = SemiLocalIndex.load(path)
        except Exception:
            # A corrupt/foreign spill file must degrade to a rebuild, not
            # crash every future request for this fingerprint.  Drop it so
            # the next eviction can spill cleanly.
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.spill_loads += 1
        _SPILLS.inc(direction="load")
        span_event("cache_spill_load", fingerprint=fingerprint, nbytes=index.nbytes)
        return index

    # ------------------------------------------------------------------- api
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> Optional[SemiLocalIndex]:
        """Look up an index; memory first, then the spill directory.

        A memory hit refreshes recency.  A spill hit re-inserts the loaded
        index into memory (it is now hot again) and counts as a miss at the
        memory level plus one ``spill_loads``.
        """
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            _LOOKUPS.inc(result="hit")
            return entry
        self.misses += 1
        _LOOKUPS.inc(result="miss")
        loaded = self._spill_load(fingerprint)
        if loaded is not None and loaded.nbytes <= self.max_bytes:
            # Oversized spill entries keep serving from disk — re-admitting
            # one would flush every resident entry for a single loan.
            self._insert(loaded)
        return loaded

    def put(self, index: SemiLocalIndex) -> None:
        """Insert (or refresh) an index and evict down to the byte budget.

        An index larger than the whole budget bypasses memory entirely: it
        spills straight to disk when a spill directory is configured, and
        without one it is admitted only into an empty cache — either way the
        resident entries are never flushed wholesale for it.
        """
        if index.fingerprint in self._entries:
            self._remove(index.fingerprint)
        if index.nbytes > self.max_bytes and (self.spill_dir is not None or self._entries):
            if self.spill_dir is not None:
                self._spill_save(index)
                self.oversize_spills += 1
            return
        self._insert(index)

    def get_or_build(
        self, fingerprint: str, builder: Callable[[], SemiLocalIndex]
    ) -> Tuple[SemiLocalIndex, bool]:
        """The serving-layer entry point: ``(index, was_cached)``.

        ``was_cached`` is true for memory *and* spill hits — either way the
        expensive seaweed build was avoided.
        """
        cached = self.get(fingerprint)
        if cached is not None:
            return cached, True
        built = builder()
        if built.fingerprint != fingerprint:
            raise ValueError(
                "builder returned an index with a different fingerprint "
                f"({built.fingerprint[:12]}… != {fingerprint[:12]}…); the cache "
                "would silently serve wrong answers"
            )
        self.put(built)
        return built, False

    def clear(self) -> None:
        """Drop every in-memory entry (spill files are left in place)."""
        self._entries.clear()
        _RESIDENT_BYTES.add(-self.current_bytes)
        self.current_bytes = 0

    def counters(self) -> Dict[str, Any]:
        """The observable cache state (JSON-safe, used in artifacts)."""
        return {
            "entries": len(self._entries),
            "current_bytes": int(self.current_bytes),
            "max_bytes": int(self.max_bytes),
            "hits": int(self.hits),
            "misses": int(self.misses),
            "evictions": int(self.evictions),
            "spill_saves": int(self.spill_saves),
            "spill_loads": int(self.spill_loads),
            "oversize_spills": int(self.oversize_spills),
            "hit_rate": (
                self.hits / (self.hits + self.misses) if (self.hits + self.misses) else 0.0
            ),
        }

    # -------------------------------------------------------------- internals
    def _insert(self, index: SemiLocalIndex) -> None:
        self._entries[index.fingerprint] = index
        self._entries.move_to_end(index.fingerprint)
        self.current_bytes += index.nbytes
        _RESIDENT_BYTES.add(index.nbytes)
        # Evict LRU entries until back under budget, but never the entry just
        # inserted (len > 1): one oversized index beats caching nothing.
        while self.current_bytes > self.max_bytes and len(self._entries) > 1:
            victim_fp = next(iter(self._entries))
            victim = self._remove(victim_fp)
            self._spill_save(victim)
            self.evictions += 1
            _EVICTIONS.inc()

    def _remove(self, fingerprint: str) -> SemiLocalIndex:
        entry = self._entries.pop(fingerprint)
        self.current_bytes -= entry.nbytes
        _RESIDENT_BYTES.add(-entry.nbytes)
        return entry
