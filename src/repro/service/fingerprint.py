"""Content fingerprints for the query-serving layer.

An index is addressed by a digest of *what it answers queries about*: the
raw bytes of the input sequence(s), the index kind and the build parameters
that change query semantics (``strict``).  Build *mechanics* — sequential vs
MPC construction, ``delta``, the execution backend — are deliberately **not**
part of the identity: every build path produces the same (sub)permutation
matrix bit for bit (the test-suite enforces this), so a cache entry built on
one backend must serve requests issued against any other.

Build mechanics are instead recorded as *provenance* on the index handle —
including a digest of :meth:`repro.mpc.accounting.ClusterStats.fingerprint`
for MPC builds, which pins down the exact round/space/communication trace
that produced the matrix.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "array_fingerprint",
    "params_fingerprint",
    "index_fingerprint",
    "stats_provenance_digest",
]

_HASH = hashlib.sha256


def array_fingerprint(array: "np.ndarray | Sequence") -> str:
    """Digest of an array's dtype, shape and raw bytes."""
    arr = np.ascontiguousarray(np.asarray(array))
    digest = _HASH()
    digest.update(str(arr.dtype).encode("utf-8"))
    digest.update(str(arr.shape).encode("utf-8"))
    digest.update(arr.tobytes())
    return digest.hexdigest()


def params_fingerprint(params: Mapping[str, Any]) -> str:
    """Digest of a flat parameter mapping via canonical (sorted-key) JSON."""
    canonical = json.dumps(dict(params), sort_keys=True, separators=(",", ":"), default=str)
    return _HASH(canonical.encode("utf-8")).hexdigest()


def index_fingerprint(
    kind: str,
    arrays: Sequence["np.ndarray | Sequence"],
    params: Optional[Mapping[str, Any]] = None,
) -> str:
    """The cache key of an index: kind + input array digests + semantic params."""
    digest = _HASH()
    digest.update(kind.encode("utf-8"))
    for array in arrays:
        digest.update(array_fingerprint(array).encode("utf-8"))
    digest.update(params_fingerprint(params or {}).encode("utf-8"))
    return digest.hexdigest()


def stats_provenance_digest(stats) -> str:
    """Digest of a :class:`ClusterStats` fingerprint tuple (build provenance).

    Bit-identical across execution backends by the engine invariant, so two
    MPC builds of the same index always carry the same provenance digest.
    """
    return _HASH(repr(stats.fingerprint()).encode("utf-8")).hexdigest()
