"""The index layer: a uniform handle over semi-local build products.

A :class:`SemiLocalIndex` wraps the expensive part of the paper's framework —
the (sub)unit-Monge permutation matrix of Theorem 1.3 / Corollaries
1.3.1-1.3.3 — behind one object that

* is addressed by a content **fingerprint** (input bytes + kind + semantic
  build params, see :mod:`repro.service.fingerprint`),
* answers **batches** of queries in one vectorised pass over the
  dominance-count structure (:class:`repro.core.combine.ColoredPointSet`),
  never a Python-level per-query loop,
* knows its resident size (``nbytes``) so the cache layer can budget it, and
* round-trips through a single compressed ``.npz`` file (disk spill /
  warm-start), reusing :meth:`repro.core.permutation.SubPermutation.npz_payload`.

Three kinds exist:

========== ======================================= ==========================
kind       underlying object                        query surface
========== ======================================= ==========================
lis:position subsegment matrix (Cor. 1.3.2)        ``query_substrings(i, j)``
lis:value  value-interval matrix (Thm 1.3)         ``query_rank_intervals``
lcs        semi-local LCS (Cor. 1.3.3)             ``query_substrings(i, j)``
             of ``S`` vs ``T[i:j]``
========== ======================================= ==========================

All kinds support ``window_sweep`` (a strided sweep of fixed-width windows)
and the global ``full_length()`` (LIS resp. LCS of the whole input).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.permutation import SubPermutation
from ..core.plan import MultiplyPlan
from ..lcs.hunt_szymanski import match_pairs
from ..lcs.semilocal import SemiLocalLCS
from ..lis.mpc_lis import mpc_lis_matrix
from ..lis.semilocal import (
    SemiLocalLIS,
    subsegment_matrix,
    validate_intervals,
    value_interval_matrix,
)
from ..mpc.cluster import MPCCluster
from .fingerprint import index_fingerprint, stats_provenance_digest

__all__ = [
    "INDEX_KINDS",
    "SemiLocalIndex",
    "build_lis_index",
    "build_lcs_index",
    "lis_index_fingerprint",
    "lcs_index_fingerprint",
]

INDEX_KINDS = ("lis:position", "lis:value", "lcs")

#: Bump when the ``.npz`` layout changes.
_NPZ_FORMAT_VERSION = 1


@dataclass
class SemiLocalIndex:
    """One built semi-local object, ready to answer query batches."""

    #: Content fingerprint — the cache key (see :mod:`.fingerprint`).
    fingerprint: str
    #: One of :data:`INDEX_KINDS`.
    kind: str
    #: The wrapped semi-local LIS object (for ``lcs`` this is the match-
    #: sequence value-interval matrix of Corollary 1.3.3).
    semilocal: SemiLocalLIS
    #: Length of the query universe: ``n`` for LIS kinds, ``|T|`` for LCS.
    length: int
    #: Sorted T-positions of the match pairs (``lcs`` kind only).
    match_positions: Optional[np.ndarray] = None
    #: Build mechanics: mode, delta, backend, rounds, stats digest, seconds.
    provenance: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in INDEX_KINDS:
            raise ValueError(f"unknown index kind {self.kind!r}; expected one of {INDEX_KINDS}")
        if self.kind == "lcs":
            if self.match_positions is None:
                raise ValueError("lcs indexes need the sorted match positions")
            self._lcs = SemiLocalLCS(
                semilocal=self.semilocal,
                match_positions=np.asarray(self.match_positions, dtype=np.int64),
                t_length=self.length,
            )
        else:
            self._lcs = None

    # ---------------------------------------------------------------- queries
    def query_substrings(self, i, j) -> np.ndarray:
        """Batched ``LIS(A[i:j])`` (``lis:position``) / ``LCS(S, T[i:j])`` (``lcs``).

        One vectorised dominance-count evaluation for the whole batch.
        """
        if self.kind == "lis:position":
            return self.semilocal.query_substrings(i, j)
        if self.kind == "lcs":
            return self._lcs.query_batch(i, j)
        raise ValueError(
            f"kind {self.kind!r} does not answer substring queries "
            "(build a 'lis:position' or 'lcs' index)"
        )

    def query_rank_intervals(self, x, y) -> np.ndarray:
        """Batched LIS over rank windows ``[x, y)`` (``lis:value`` kind)."""
        if self.kind != "lis:value":
            raise ValueError(
                f"kind {self.kind!r} does not answer rank-interval queries "
                "(build a 'lis:value' index)"
            )
        return self.semilocal.query_rank_intervals(x, y)

    def sweep_intervals(self, width: int, step: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(starts, ends)`` interval arrays of a strided window sweep.

        The single source of sweep geometry and its validation — consumed by
        :meth:`window_sweep` and by the serving layer's request flattening,
        so the two paths can never diverge.
        """
        width = int(width)
        step = int(step)
        if width < 1 or width > self.length:
            raise ValueError(f"window width must satisfy 1 <= width <= {self.length}, got {width}")
        if step < 1:
            raise ValueError(f"window step must be >= 1, got {step}")
        starts = np.arange(0, self.length - width + 1, step, dtype=np.int64)
        return starts, starts + width

    def window_sweep(self, width: int, step: int = 1) -> np.ndarray:
        """Scores of every ``width``-wide window, strided by ``step``.

        Substring windows for ``lis:position``/``lcs``, rank windows for
        ``lis:value``.  Answers all windows in one vectorised batch.
        """
        starts, ends = self.sweep_intervals(width, step)
        if self.kind == "lis:value":
            return self.query_rank_intervals(starts, ends)
        return self.query_substrings(starts, ends)

    def full_length(self) -> int:
        """The global answer: LIS of the whole sequence / LCS of ``S, T``."""
        if self.kind == "lcs":
            return self._lcs.lcs_length()
        return self.semilocal.lis_length()

    # ----------------------------------------------------------------- sizing
    @property
    def nbytes(self) -> int:
        """Resident bytes of the build product (what the cache budgets)."""
        total = self.semilocal.nbytes
        if self.match_positions is not None:
            total += int(np.asarray(self.match_positions).nbytes)
        return int(total)

    # ------------------------------------------------------------ persistence
    def save(self, path: str) -> None:
        """Spill the index to one compressed ``.npz`` file."""
        meta = {
            "format_version": _NPZ_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "length": int(self.length),
            "semilocal_kind": self.semilocal.kind,
            "semilocal_length": int(self.semilocal.length),
            "provenance": self.provenance,
        }
        payload = self.semilocal.matrix.npz_payload(prefix="matrix_")
        payload["meta_json"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        if self.match_positions is not None:
            payload["match_positions"] = np.asarray(self.match_positions, dtype=np.int64)
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str) -> "SemiLocalIndex":
        """Rebuild an index from :meth:`save` output (validates the matrix)."""
        with np.load(path) as payload:
            try:
                meta = json.loads(bytes(payload["meta_json"]).decode("utf-8"))
            except KeyError:
                raise ValueError(f"{path} is not a serialized SemiLocalIndex") from None
            if meta.get("format_version", 0) > _NPZ_FORMAT_VERSION:
                raise ValueError(
                    f"{path} uses npz format {meta['format_version']}, newer than "
                    f"supported {_NPZ_FORMAT_VERSION}"
                )
            matrix = SubPermutation.from_npz_payload(payload, prefix="matrix_")
            match_positions = (
                np.asarray(payload["match_positions"], dtype=np.int64)
                if "match_positions" in payload
                else None
            )
        semilocal = SemiLocalLIS(
            matrix=matrix, kind=meta["semilocal_kind"], length=int(meta["semilocal_length"])
        )
        return cls(
            fingerprint=meta["fingerprint"],
            kind=meta["kind"],
            semilocal=semilocal,
            length=int(meta["length"]),
            match_positions=match_positions,
            provenance=meta.get("provenance", {}),
        )


# ------------------------------------------------------------------ builders
def lis_index_fingerprint(sequence, kind: str, strict: bool) -> str:
    """Cache key of a LIS index over ``sequence`` (build mechanics excluded)."""
    return index_fingerprint(kind, [np.asarray(sequence)], {"strict": bool(strict)})


def lcs_index_fingerprint(s, t) -> str:
    """Cache key of the semi-local LCS index of ``S`` vs ``T``."""
    return index_fingerprint("lcs", [np.asarray(s), np.asarray(t)], {})


def _provenance(
    mode: str,
    delta: float,
    backend: Optional[str],
    cluster: Optional[MPCCluster],
    seconds: float,
    plan: Optional[MultiplyPlan] = None,
) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "mode": mode,
        "build_seconds": float(seconds),
    }
    if plan is not None:
        doc["plan"] = plan.describe()
    if cluster is not None:
        doc.update(
            {
                "delta": float(delta),
                "backend": backend or "serial",
                "rounds": cluster.stats.num_rounds,
                "peak_machine_load": cluster.stats.peak_machine_load,
                "stats_digest": stats_provenance_digest(cluster.stats),
            }
        )
    return doc


def build_lis_index(
    sequence: Union[Sequence, np.ndarray],
    *,
    kind: str = "lis:position",
    strict: bool = True,
    mode: str = "sequential",
    delta: float = 0.5,
    backend: Optional[str] = None,
    plan: Optional[MultiplyPlan] = None,
) -> SemiLocalIndex:
    """Build a semi-local LIS index (sequentially or on the MPC simulator).

    ``mode='mpc'`` runs the O(log n)-round pipeline of Theorem 1.3 /
    Corollary 1.3.2 on an :class:`MPCCluster` with the selected execution
    backend; ``mode='sequential'`` runs the in-process seaweed engine, tuned
    by ``plan`` when one is given.  Both produce bit-identical matrices — the
    fingerprint therefore covers only the input and query semantics, while
    the build path (including the plan) is recorded in ``provenance``.
    """
    if kind not in ("lis:position", "lis:value"):
        raise ValueError(f"LIS index kind must be 'lis:position' or 'lis:value', got {kind!r}")
    sequence = np.asarray(sequence)
    fingerprint = lis_index_fingerprint(sequence, kind, strict)
    matrix_kind = "position" if kind == "lis:position" else "value"
    started = time.perf_counter()
    cluster: Optional[MPCCluster] = None
    if mode == "mpc":
        cluster = MPCCluster(max(1, len(sequence)), delta=delta, backend=backend)
        semilocal = mpc_lis_matrix(cluster, sequence, strict=strict, kind=matrix_kind).semilocal
    elif mode == "sequential":
        build = subsegment_matrix if matrix_kind == "position" else value_interval_matrix
        semilocal = build(sequence, strict=strict, plan=plan)
    else:
        raise ValueError(f"build mode must be 'sequential' or 'mpc', got {mode!r}")
    seconds = time.perf_counter() - started
    return SemiLocalIndex(
        fingerprint=fingerprint,
        kind=kind,
        semilocal=semilocal,
        length=len(sequence),
        provenance=_provenance(mode, delta, backend, cluster, seconds, plan),
    )


def build_lcs_index(
    s: Union[Sequence, np.ndarray],
    t: Union[Sequence, np.ndarray],
    *,
    mode: str = "sequential",
    delta: float = 0.5,
    backend: Optional[str] = None,
    plan: Optional[MultiplyPlan] = None,
) -> SemiLocalIndex:
    """Build the semi-local LCS index of ``S`` vs all subsegments of ``T``.

    The Corollary 1.3.3 reduction: the Hunt–Szymanski match sequence's
    value-interval matrix answers every ``LCS(S, T[i:j])``.
    """
    s = np.asarray(s)
    t = np.asarray(t)
    fingerprint = lcs_index_fingerprint(s, t)
    pairs = match_pairs(s, t)
    matches = pairs[:, 1] if len(pairs) else np.empty(0, dtype=np.int64)
    started = time.perf_counter()
    cluster: Optional[MPCCluster] = None
    if mode == "mpc":
        from ..lcs.mpc_lcs import lcs_cluster_for

        cluster = lcs_cluster_for(len(s), len(t), len(matches), delta=delta, backend=backend)
        semilocal = mpc_lis_matrix(cluster, matches, strict=True, kind="value").semilocal
    elif mode == "sequential":
        semilocal = value_interval_matrix(matches, strict=True, plan=plan)
    else:
        raise ValueError(f"build mode must be 'sequential' or 'mpc', got {mode!r}")
    seconds = time.perf_counter() - started
    return SemiLocalIndex(
        fingerprint=fingerprint,
        kind="lcs",
        semilocal=semilocal,
        length=len(t),
        match_positions=np.sort(matches),
        provenance=_provenance(mode, delta, backend, cluster, seconds, plan),
    )
