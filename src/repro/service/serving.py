"""The serving layer: batched, cache-amortised query execution.

:class:`QueryService` is the front door of the subsystem.  It accepts a batch
of mixed :class:`~repro.service.requests.QueryRequest` objects and

1. **groups** them by the index they need (same target + index kind + LIS
   strictness ⇒ same fingerprint ⇒ same build),
2. **builds** each missing index exactly once — sequentially or on the MPC
   simulator with the execution backend selected at construction (the PR-2
   engine: ``serial`` / ``thread`` / ``process``) — and parks it in the
   :class:`~repro.service.cache.IndexCache`,
3. **flattens** every request of a group into half-open interval queries
   (the global length, explicit substring windows, strided sweeps and rank
   intervals are all corner evaluations of the same distribution matrix) and
   answers the whole group in **one vectorised dominance-count pass**, then
4. splits the answers back out per request, with per-request timing and
   cache attribution.

This is exactly the workload shape Theorem 1.3 / Corollary 1.3.1 build for:
one expensive (sub)unit-Monge product, unboundedly many O(batch) queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.serialize import weighted_checksum
from ..core.plan import MultiplyPlan
from ..lis.semilocal import validate_intervals
from ..streaming.recompose import extend_value_matrix
from .cache import IndexCache
from .index import (
    INDEX_KINDS,
    SemiLocalIndex,
    build_lcs_index,
    build_lis_index,
    lcs_index_fingerprint,
    lis_index_fingerprint,
)
from .requests import OPS, QueryRequest, ServiceRequestError, TargetSpec
from ..obs.metrics import get_registry
from ..obs.trace import span
from ..resilience.faults import fault_point

__all__ = ["RequestOutcome", "ServiceBatchResult", "QueryService"]

_REQUESTS = get_registry().counter(
    "repro_service_requests_total", "Requests answered by QueryService.submit"
)
_BATCHES = get_registry().counter(
    "repro_service_batches_total", "Batches answered by QueryService.submit"
)
_QUERIES = get_registry().counter(
    "repro_service_queries_total", "Interval evaluations run by the vectorised pass"
)
_BUILDS = get_registry().counter(
    "repro_index_builds_total", "Index builds by kind (cache misses that built)", ("kind",)
)
_BUILD_SECONDS = get_registry().histogram(
    "repro_index_build_seconds", "Wall-clock of index builds"
)
_QUERY_SECONDS = get_registry().histogram(
    "repro_query_pass_seconds", "Wall-clock of vectorised query passes"
)


@dataclass
class RequestOutcome:
    """The answer to one request, with serving attribution."""

    request_id: str
    op: str
    target: str
    index_kind: str
    index_fingerprint: str
    #: True when the index came from the cache (memory or spill) rather than
    #: being built for this batch.
    cache_hit: bool
    #: ``int`` for the scalar ops, ``list`` for batch windows/sweeps.
    result: Any
    #: Number of interval evaluations this request contributed.
    num_queries: int
    seconds: float
    #: True when the answer came from a degraded path (the shard router's
    #: inline fallback while the owning shard's breaker was open).  Flows
    #: verbatim into the HTTP response entry and ``/stats``.
    degraded: bool = False

    def result_summary(self) -> Dict[str, Any]:
        """Compact JSON-safe view (artifacts truncate long result arrays)."""
        if isinstance(self.result, int):
            return {"value": self.result}
        values = np.asarray(self.result, dtype=np.int64)
        if values.size == 0:
            # An empty window batch is served, not an error (e.g. a sweep
            # whose caller computed zero windows); min/max have no value.
            return {"count": 0, "min": None, "max": None, "checksum": 0}
        return {
            "count": int(values.size),
            "min": int(values.min()),
            "max": int(values.max()),
            "checksum": weighted_checksum(values),
        }


@dataclass
class ServiceBatchResult:
    """Everything one :meth:`QueryService.submit` call produced."""

    outcomes: List[RequestOutcome]
    seconds: float
    indexes_built: int
    indexes_reused: int

    def by_id(self) -> Dict[str, RequestOutcome]:
        return {outcome.request_id: outcome for outcome in self.outcomes}


class QueryService:
    """Batched semi-local query serving over an index cache.

    Parameters
    ----------
    cache:
        The :class:`IndexCache` to serve from (a private default-budget cache
        is created when omitted).  Sharing one cache across services shares
        the built indexes.
    mode:
        ``'sequential'`` (in-process seaweed recursion) or ``'mpc'`` (the
        Theorem 1.3 pipeline on the simulated cluster).
    delta, backend:
        MPC build mechanics (ignored for sequential builds): the scalability
        parameter and the execution backend (``serial``/``thread``/
        ``process``).  Backends change build wall-clock only — the built
        index, and therefore every answer, is bit-identical across them.
    plan:
        A :class:`~repro.core.plan.MultiplyPlan` tuning the sequential build
        engine (mechanics only; indexes and answers are bit-identical across
        plans, so the plan does not enter fingerprints).
    """

    def __init__(
        self,
        *,
        cache: Optional[IndexCache] = None,
        mode: str = "sequential",
        delta: float = 0.5,
        backend: Optional[str] = None,
        plan: Optional[MultiplyPlan] = None,
    ) -> None:
        if mode not in ("sequential", "mpc"):
            raise ValueError(f"mode must be 'sequential' or 'mpc', got {mode!r}")
        self.cache = cache if cache is not None else IndexCache()
        self.mode = mode
        self.delta = float(delta)
        self.backend = backend
        self.plan = plan
        #: ``(target, kind, strict) -> fingerprint`` memo: TargetSpec fully
        #: determines the input content, so warm submits skip both the O(n)
        #: target realisation and the SHA-256 over its bytes.
        self._fingerprints: Dict[Tuple[TargetSpec, str, bool], str] = {}
        self.requests_served = 0
        self.batches_served = 0
        self.queries_evaluated = 0
        self.indexes_built = 0
        self.indexes_refreshed = 0
        self.build_seconds = 0.0
        self.query_seconds = 0.0
        self.refresh_seconds = 0.0

    # ------------------------------------------------------------------ index
    def _build_index(
        self, target: TargetSpec, kind: str, strict: bool, realised=None
    ) -> SemiLocalIndex:
        realised = target.realise() if realised is None else realised
        if kind == "lcs":
            s, t = realised
            return build_lcs_index(
                s, t, mode=self.mode, delta=self.delta, backend=self.backend, plan=self.plan
            )
        return build_lis_index(
            realised,
            kind=kind,
            strict=strict,
            mode=self.mode,
            delta=self.delta,
            backend=self.backend,
            plan=self.plan,
        )

    def _get_index(
        self, target: TargetSpec, kind: str, strict: bool
    ) -> Tuple[SemiLocalIndex, bool]:
        key = (target, kind, strict)
        fingerprint = self._fingerprints.get(key)
        realised = None
        if fingerprint is None:
            # First sighting: realise the target once to fingerprint it.
            # TargetSpec fully determines the content, so the memo makes every
            # later submit skip both the realisation and the hashing.
            realised = target.realise()
            if kind == "lcs":
                fingerprint = lcs_index_fingerprint(*realised)
            else:
                fingerprint = lis_index_fingerprint(realised, kind, strict)
            self._fingerprints[key] = fingerprint
        def _traced_build() -> SemiLocalIndex:
            fault_point("index.build", kind=kind)
            with span("build", kind=kind, fingerprint=fingerprint[:12]):
                return self._build_index(target, kind, strict, realised)

        index, was_cached = self.cache.get_or_build(fingerprint, _traced_build)
        if not was_cached:
            self.indexes_built += 1
            seconds = float(index.provenance.get("build_seconds", 0.0))
            self.build_seconds += seconds
            _BUILDS.inc(kind=kind)
            _BUILD_SECONDS.observe(seconds)
        return index, was_cached

    def ensure_index(
        self, target: TargetSpec, kind: Optional[str] = None, *, strict: bool = True
    ) -> Tuple[SemiLocalIndex, bool]:
        """Build (or fetch) the index for ``target``; returns ``(index, was_cached)``.

        The public warm-up entry point: background build routes call this to
        pay the build cost ahead of queries.  ``kind`` defaults to the only
        sensible kind for the target (``'lcs'`` for string pairs,
        ``'lis:position'`` for sequences).
        """
        if kind is None:
            kind = "lcs" if target.kind == "string_pair" else "lis:position"
        if kind not in INDEX_KINDS:
            raise ServiceRequestError(
                f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}"
            )
        if (kind == "lcs") != (target.kind == "string_pair"):
            raise ServiceRequestError(
                f"index kind {kind!r} does not fit a {target.kind!r} target"
            )
        strict = True if kind == "lcs" else bool(strict)
        return self._get_index(target, kind, strict)

    # ----------------------------------------------------------------- refresh
    def refresh(
        self, target: TargetSpec, append, *, strict: bool = True
    ) -> Tuple[SemiLocalIndex, bool]:
        """Patch the target's cached value-interval index with new symbols.

        Instead of discarding the cached build product when the input grows,
        the old matrix becomes the left ⊡ operand: one suffix block build
        plus one multiplication yields the extended index *bit-identically*
        to a from-scratch rebuild
        (:func:`repro.streaming.recompose.extend_value_matrix`).  The patched
        index is re-fingerprinted over the extended sequence and re-inserted
        into the cache, so follow-up queries against the extended target
        (inline, ``float64``-canonical) hit it directly.

        Returns ``(patched_index, old_was_cached)``.
        """
        if target.kind != "sequence":
            raise ServiceRequestError("refresh needs a sequence target")
        append = np.asarray(append, dtype=np.float64).ravel()
        if append.size == 0:
            raise ServiceRequestError("refresh needs at least one appended symbol")
        index, was_cached = self._get_index(target, "lis:value", strict)
        old_values = np.asarray(target.realise(), dtype=np.float64)
        extended = np.concatenate([old_values, append])
        fingerprint = lis_index_fingerprint(extended, "lis:value", strict)
        started = time.perf_counter()
        patched = extend_value_matrix(index.semilocal, old_values, append, strict=strict)
        seconds = time.perf_counter() - started
        refreshed = SemiLocalIndex(
            fingerprint=fingerprint,
            kind="lis:value",
            semilocal=patched,
            length=len(extended),
            provenance={
                "mode": "refresh",
                "refreshed_from": index.fingerprint,
                "appended": int(append.size),
                "build_seconds": float(seconds),
            },
        )
        self.cache.put(refreshed)
        self.indexes_refreshed += 1
        self.refresh_seconds += seconds
        return refreshed, was_cached

    # -------------------------------------------------------------- intervals
    @staticmethod
    def _intervals_for(
        request: QueryRequest, index: SemiLocalIndex
    ) -> Tuple[np.ndarray, np.ndarray, bool]:
        """Flatten one request into ``(lo, hi, scalar_result)`` interval arrays."""
        what = f"request {request.request_id!r} ({request.op})"
        try:
            if request.op in ("lis_length", "lcs_length"):
                return (
                    np.zeros(1, dtype=np.int64),
                    np.full(1, index.length, dtype=np.int64),
                    True,
                )
            if request.op == "substring_query":
                scalar = np.ndim(request.i) == 0 and np.ndim(request.j) == 0
                lo, hi = validate_intervals(
                    request.i, request.j, index.length, what="substring window"
                )
                return lo, hi, scalar
            if request.op == "rank_interval_query":
                scalar = np.ndim(request.x) == 0 and np.ndim(request.y) == 0
                lo, hi = validate_intervals(
                    request.x, request.y, index.length, what="rank interval"
                )
                return lo, hi, scalar
            if request.op == "window_sweep":
                starts, ends = index.sweep_intervals(request.width, request.step)
                return starts, ends, False
        except ValueError as exc:
            raise ServiceRequestError(f"{what}: {exc}") from None
        raise ServiceRequestError(f"{what}: unsupported op")

    # ----------------------------------------------------------------- submit
    def submit(self, requests: Sequence[QueryRequest]) -> ServiceBatchResult:
        """Answer a batch of mixed requests (see the module docstring).

        Unknown ops fail the batch before any build work is spent; window
        bounds are validated against each group's index (they need its
        length), so a bounds error in one group can surface after another
        group's build already ran.  Either way the whole batch fails with a
        :class:`ServiceRequestError` naming the offending request.
        """
        requests = list(requests)
        started = time.perf_counter()
        queries_before = self.queries_evaluated
        # Group by required index identity, preserving first-seen order.
        # Refresh requests mutate the cache, so they execute individually (in
        # batch order) rather than joining a query group.
        groups: Dict[Tuple[TargetSpec, str, bool], List[Tuple[int, QueryRequest]]] = {}
        refreshes: List[Tuple[int, QueryRequest]] = []
        for position, request in enumerate(requests):
            if request.op not in OPS:
                raise ServiceRequestError(
                    f"request {request.request_id!r}: unknown op {request.op!r}"
                )
            kind = request.index_kind()
            strict = bool(request.strict) if kind != "lcs" else True
            if request.op == "refresh":
                refreshes.append((position, request))
                continue
            groups.setdefault((request.target, kind, strict), []).append((position, request))

        outcomes: List[Optional[RequestOutcome]] = [None] * len(requests)
        built = reused = 0
        for position, request in refreshes:
            refresh_started = time.perf_counter()
            refreshed, was_cached = self.refresh(
                request.target, request.append, strict=bool(request.strict)
            )
            built += 0 if was_cached else 1
            reused += 1 if was_cached else 0
            self.queries_evaluated += 1
            outcomes[position] = RequestOutcome(
                request_id=request.request_id,
                op=request.op,
                target=request.target.describe(),
                index_kind="lis:value",
                index_fingerprint=refreshed.fingerprint,
                cache_hit=was_cached,
                result=int(refreshed.full_length()),
                num_queries=1,
                seconds=time.perf_counter() - refresh_started,
            )
        for (target, kind, strict), members in groups.items():
            index, was_cached = self._get_index(target, kind, strict)
            built += 0 if was_cached else 1
            reused += 1 if was_cached else 0

            flat = [(pos, req) + self._intervals_for(req, index) for pos, req in members]
            lo_cat = np.concatenate([lo for _, _, lo, _, _ in flat])
            hi_cat = np.concatenate([hi for _, _, _, hi, _ in flat])
            query_started = time.perf_counter()
            with span("query", kind=kind, intervals=int(lo_cat.size)):
                if kind == "lis:value":
                    answers = index.query_rank_intervals(lo_cat, hi_cat)
                else:
                    answers = index.query_substrings(lo_cat, hi_cat)
            group_seconds = time.perf_counter() - query_started
            self.query_seconds += group_seconds
            self.queries_evaluated += int(lo_cat.size)
            _QUERY_SECONDS.observe(group_seconds)

            offset = 0
            for pos, request, lo, _, scalar in flat:
                count = int(lo.size)
                values = answers[offset : offset + count]
                offset += count
                outcomes[pos] = RequestOutcome(
                    request_id=request.request_id,
                    op=request.op,
                    target=target.describe(),
                    index_kind=kind,
                    index_fingerprint=index.fingerprint,
                    cache_hit=was_cached,
                    result=int(values[0]) if scalar else values.tolist(),
                    num_queries=count,
                    seconds=group_seconds * (count / max(1, lo_cat.size)),
                )

        self.requests_served += len(requests)
        self.batches_served += 1
        _REQUESTS.inc(len(requests))
        _BATCHES.inc()
        _QUERIES.inc(self.queries_evaluated - queries_before)
        return ServiceBatchResult(
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            seconds=time.perf_counter() - started,
            indexes_built=built,
            indexes_reused=reused,
        )

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, Any]:
        """Cumulative service statistics plus the cache counters (JSON-safe)."""
        return {
            "mode": self.mode,
            "delta": self.delta,
            "backend": self.backend or "serial",
            "plan": self.plan.describe() if self.plan is not None else None,
            "batches_served": self.batches_served,
            "requests_served": self.requests_served,
            "queries_evaluated": self.queries_evaluated,
            "indexes_built": self.indexes_built,
            "indexes_refreshed": self.indexes_refreshed,
            "build_seconds": self.build_seconds,
            "query_seconds": self.query_seconds,
            "refresh_seconds": self.refresh_seconds,
            "cache": self.cache.counters(),
        }
