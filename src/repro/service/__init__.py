"""The query-serving subsystem: amortise one seaweed build over many queries.

The semi-local framework's defining property (Theorem 1.3 and its
corollaries) is that *one* precomputed distribution matrix answers **every**
substring / window / rank-interval query about its input.  This package
turns that property into a serving stack:

* :mod:`~repro.service.index` — :class:`SemiLocalIndex`, a fingerprinted
  handle over a build product with vectorised batch query methods and an
  ``.npz`` round-trip;
* :mod:`~repro.service.cache` — :class:`IndexCache`, a byte-budgeted LRU
  with hit/miss/eviction counters and optional disk spill;
* :mod:`~repro.service.requests` — the request model and the JSON batch
  document behind ``python -m repro serve``;
* :mod:`~repro.service.serving` — :class:`QueryService`, which groups mixed
  request batches by index, builds what is missing on the configured MPC
  execution backend, and answers each group in one vectorised pass;
* :mod:`~repro.service.sharding` — :class:`ShardRouter`, which
  consistent-hashes index fingerprints across N long-lived worker
  processes (each with a private cache and spill directory) and answers
  mixed batches bit-identically to a single :class:`QueryService`.

Throughput versus rebuild-per-query is measured by the registered
``service_throughput`` experiment (``benchmarks/bench_service_throughput.py``).
"""

from .cache import DEFAULT_CACHE_BYTES, IndexCache
from .fingerprint import (
    array_fingerprint,
    index_fingerprint,
    params_fingerprint,
    stats_provenance_digest,
)
from .index import (
    INDEX_KINDS,
    SemiLocalIndex,
    build_lcs_index,
    build_lis_index,
    lcs_index_fingerprint,
    lis_index_fingerprint,
)
from .requests import (
    OPS,
    REQUESTS_SCHEMA_ID,
    REQUESTS_SCHEMA_VERSION,
    QueryRequest,
    ServiceRequestError,
    TargetSpec,
    parse_requests_document,
    parse_requests_lenient,
    parse_target,
)
from .serving import QueryService, RequestOutcome, ServiceBatchResult
from .sharding import (
    ConsistentHashRing,
    IndexInfo,
    ShardConfig,
    ShardRouter,
    ShardWorkerCrash,
)

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "IndexCache",
    "array_fingerprint",
    "index_fingerprint",
    "params_fingerprint",
    "stats_provenance_digest",
    "INDEX_KINDS",
    "SemiLocalIndex",
    "build_lis_index",
    "build_lcs_index",
    "lis_index_fingerprint",
    "lcs_index_fingerprint",
    "OPS",
    "REQUESTS_SCHEMA_ID",
    "REQUESTS_SCHEMA_VERSION",
    "QueryRequest",
    "ServiceRequestError",
    "TargetSpec",
    "parse_requests_document",
    "parse_requests_lenient",
    "parse_target",
    "QueryService",
    "RequestOutcome",
    "ServiceBatchResult",
    "ConsistentHashRing",
    "IndexInfo",
    "ShardConfig",
    "ShardRouter",
    "ShardWorkerCrash",
]
