"""Plain-text table / series formatting used by the benchmarks and examples."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_summary", "format_block", "format_cell"]


def format_cell(value: object) -> str:
    """Render one table cell: ``None`` as '-', floats with two decimals."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_block(title: str, body: str) -> str:
    """The harness's titled report block (used by `emit` and the CLI)."""
    return f"\n=== {title} ===\n{body}\n"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple aligned text table (no external dependencies)."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render one x/y series as the paper-style 'figure data' block."""
    pairs = ", ".join(f"({x}, {y})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def format_summary(summary: Mapping[str, object]) -> str:
    """Render a cluster-stats summary dictionary."""
    return "\n".join(f"  {key:24s} = {value}" for key, value in summary.items())
