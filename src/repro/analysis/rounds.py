"""Theoretical round-complexity predictions (the right-hand side of Table 1).

These formulas express the asymptotic round counts of the algorithms compared
in Table 1 of the paper as functions of ``n`` and ``δ``; the benchmarks plot
the measured simulator rounds against them to confirm the growth shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["AlgorithmProfile", "TABLE1_PROFILES", "predicted_rounds", "recursion_depth"]


def _log2(n: int) -> float:
    return math.log2(max(n, 2))


def recursion_depth(n: int, fanin: int, local_threshold: int) -> int:
    """Depth of the split-recurse-combine tree until subproblems fit locally."""
    depth = 0
    size = n
    while size > max(2, local_threshold):
        size = math.ceil(size / max(2, fanin))
        depth += 1
    return depth


@dataclass
class AlgorithmProfile:
    """One row of Table 1."""

    name: str
    reference: str
    rounds_formula: str
    scalability: str
    exact: bool
    #: Asymptotic round count as a function of (n, delta).
    rounds: Callable[[int, float], float]
    #: Admissible range of delta (None = fully scalable).
    delta_limit: Optional[float] = None


TABLE1_PROFILES: Dict[str, AlgorithmProfile] = {
    "kt10": AlgorithmProfile(
        name="KT10",
        reference="[KT10a]",
        rounds_formula="O(log^2 n)",
        scalability="delta < 1/3",
        exact=True,
        rounds=lambda n, delta: _log2(n) ** 2,
        delta_limit=1.0 / 3.0,
    ),
    "ims17_logn": AlgorithmProfile(
        name="IMS17 (log n rounds)",
        reference="[IMS17]",
        rounds_formula="O(log n)",
        scalability="fully scalable",
        exact=False,
        rounds=lambda n, delta: _log2(n),
    ),
    "ims17_const": AlgorithmProfile(
        name="IMS17 (O(1) rounds)",
        reference="[IMS17]",
        rounds_formula="O(1)",
        scalability="delta < 1/4",
        exact=False,
        rounds=lambda n, delta: 1.0,
        delta_limit=0.25,
    ),
    "chs23": AlgorithmProfile(
        name="CHS23",
        reference="[CHS23]",
        rounds_formula="O(log^4 n)",
        scalability="fully scalable",
        exact=True,
        rounds=lambda n, delta: _log2(n) ** 4,
    ),
    "this_paper": AlgorithmProfile(
        name="This paper",
        reference="[Koo24]",
        rounds_formula="O(log n)",
        scalability="fully scalable",
        exact=True,
        rounds=lambda n, delta: _log2(n),
    ),
}


def predicted_rounds(algorithm: str, n: int, delta: float) -> float:
    """Asymptotic predicted round count for one of the Table 1 rows."""
    profile = TABLE1_PROFILES[algorithm]
    return profile.rounds(n, delta)
