"""Round-complexity predictions, report formatting and JSON serialization."""

from .report import format_block, format_cell, format_series, format_summary, format_table
from .rounds import TABLE1_PROFILES, AlgorithmProfile, predicted_rounds, recursion_depth
from .serialize import stats_summary, stats_to_dict, to_jsonable, weighted_checksum

__all__ = [
    "format_block",
    "format_cell",
    "format_series",
    "format_summary",
    "format_table",
    "TABLE1_PROFILES",
    "AlgorithmProfile",
    "predicted_rounds",
    "recursion_depth",
    "stats_summary",
    "stats_to_dict",
    "to_jsonable",
    "weighted_checksum",
]
