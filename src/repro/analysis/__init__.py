"""Round-complexity predictions and report formatting."""

from .report import format_series, format_summary, format_table
from .rounds import TABLE1_PROFILES, AlgorithmProfile, predicted_rounds, recursion_depth

__all__ = [
    "format_series",
    "format_summary",
    "format_table",
    "TABLE1_PROFILES",
    "AlgorithmProfile",
    "predicted_rounds",
    "recursion_depth",
]
