"""JSON-safe serialization of cluster statistics and metric values.

The experiment runner stores every grid point's metrics in a JSON artifact
(see :mod:`repro.experiments.artifacts`).  Metric values come straight out of
NumPy-heavy code, so they routinely carry ``np.int64`` / ``np.float64`` /
``np.bool_`` scalars that the stdlib :mod:`json` encoder rejects; this module
normalises everything to plain Python containers first.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..mpc.accounting import ClusterStats

__all__ = ["to_jsonable", "stats_summary", "stats_to_dict", "weighted_checksum"]


def weighted_checksum(values) -> int:
    """Order-sensitive digest of an integer array: ``Σ v[k]·(k+1) mod 2^61-1``.

    Cheap enough to compute inline, order-sensitive so permuted results do
    not collide, and shared by every artifact that compares result identity
    (backend invariance checks) — the three call sites must stay comparable,
    so the formula lives here exactly once.
    """
    arr = np.asarray(values, dtype=np.int64)
    if arr.size == 0:
        return 0
    return int((arr * (np.arange(arr.size, dtype=np.int64) + 1)).sum() % (2**61 - 1))


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-encodable plain Python types."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def stats_summary(stats: ClusterStats) -> Dict[str, Any]:
    """The :meth:`ClusterStats.summary` dictionary with JSON-safe values."""
    return to_jsonable(stats.summary())


def stats_to_dict(stats: ClusterStats, include_rounds: bool = False) -> Dict[str, Any]:
    """A full JSON-safe dump of a :class:`ClusterStats`.

    ``include_rounds`` adds the per-round trace (label, words, load, phase) —
    useful for debugging one execution, too verbose for sweep artifacts.
    """
    doc = stats_summary(stats)
    doc["local_operations"] = int(stats.local_operations)
    doc["rounds_by_phase"] = to_jsonable(stats.rounds_by_phase())
    if include_rounds:
        doc["round_trace"] = [
            {
                "index": record.index,
                "label": record.label,
                "words_communicated": int(record.words_communicated),
                "max_machine_load": int(record.max_machine_load),
                "phase": record.phase,
            }
            for record in stats.rounds
        ]
    return doc
