"""Micro-benchmarks of the core hot paths (``python -m repro perf``).

One perf run times a fixed, seeded case grid over the layers that bottom out
in ``core.seaweed.multiply``:

========== =============================================================
group      what is timed
========== =============================================================
multiply   full-permutation ``P_A ⊡ P_B`` (iterative engine) at
           ``n ∈ {256 .. 16384}`` per fan-in
reference  the retained recursive oracle at the headline size, asserted
           bit-identical to the iterative engine (the speedup denominator)
semilocal  a from-scratch ``value_interval_matrix`` build (Theorem 1.3)
streaming  the amortised sliding-window tick of the PR-4 aggregator
service    a warm cached query batch through the PR-3 serving layer
========== =============================================================

Wall-clock is useless across machines, so every timing is also recorded
*cpu-normalised*: a fixed NumPy calibration kernel is timed first and every
case reports ``normalized = seconds / calibration_seconds`` (dimensionless
multiples of the calibration kernel).  The regression gate
(:mod:`repro.perf.regression`) compares normalized values between runs, which
cancels machine speed to first order.

The run lands in the standard schema-v1 experiment artifact (an ad-hoc
``perf_core`` spec) with an additive ``perf`` section carrying the
calibration, the plan and the headline iterative-vs-reference speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..core.permutation import random_permutation
from ..core.plan import MultiplyPlan
from ..core.seaweed import (
    multiply_permutations,
    multiply_permutations_iterative,
    multiply_permutations_reference,
)
from ..experiments.runner import ExperimentResult
from ..experiments.spec import ExperimentSpec, PointResult
from ..experiments.artifacts import result_to_artifact
from ..lis.semilocal import value_interval_matrix
from ..service import IndexCache, QueryRequest, QueryService, TargetSpec
from ..streaming import StreamingLIS
from ..workloads import make_sequence

__all__ = [
    "PerfCase",
    "perf_cases",
    "calibrate_cpu",
    "run_perf",
    "HEADLINE_MULTIPLY_N",
]

#: The headline size: the ≥3x multiply speedup claim is pinned at this n.
HEADLINE_MULTIPLY_N = 4096

#: Seed convention of every perf workload (fixed: artifacts must reproduce).
_SEED = 2024


@dataclass(frozen=True)
class PerfCase:
    """One timed case: identifying params plus a kernel factory."""

    name: str
    group: str
    params: Dict[str, Any]
    #: Included in ``--quick`` runs (the full grid is a superset, so a full
    #: baseline can gate quick CI runs).
    quick: bool
    #: ``make(plan) -> kernel``; the zero-argument kernel is what is timed.
    make: Callable[[MultiplyPlan], Callable[[], Any]] = field(compare=False)
    #: Operations per kernel call; recorded seconds are divided by this
    #: (e.g. the streaming case runs ``ticks`` slides per call and reports
    #: the amortised per-tick cost).
    ops: int = 1

    def identity(self) -> Dict[str, Any]:
        """The point-matching key used by the regression gate."""
        merged = {"case": self.name, "group": self.group}
        merged.update(self.params)
        return merged


def _permutation_pair(n: int):
    rng = np.random.default_rng(_SEED + n)
    return random_permutation(n, rng), random_permutation(n, rng)


def _make_multiply(n: int, fanin: int) -> Callable[[MultiplyPlan], Callable[[], Any]]:
    def factory(plan: MultiplyPlan) -> Callable[[], Any]:
        pa, pb = _permutation_pair(n)
        tuned = plan.with_overrides(fanin=fanin)

        def kernel():
            result = multiply_permutations_iterative(pa, pb, tuned)
            assert result.size == n
            return result

        return kernel

    return factory


def _make_reference(n: int) -> Callable[[MultiplyPlan], Callable[[], Any]]:
    def factory(plan: MultiplyPlan) -> Callable[[], Any]:
        pa, pb = _permutation_pair(n)
        expected = multiply_permutations_iterative(pa, pb, plan)

        def kernel():
            result = multiply_permutations_reference(pa, pb)
            # The acceptance identity: reference and iterative engines are
            # bit-identical on the headline workload.
            assert result == expected, "reference and iterative engines diverge"
            return result

        return kernel

    return factory


def _make_semilocal(n: int) -> Callable[[MultiplyPlan], Callable[[], Any]]:
    def factory(plan: MultiplyPlan) -> Callable[[], Any]:
        sequence = make_sequence("random", n, seed=_SEED)

        def kernel():
            return value_interval_matrix(sequence, plan=plan)

        return kernel

    return factory


def _make_streaming(n: int, ticks: int, slide: int) -> Callable[[MultiplyPlan], Callable[[], Any]]:
    def factory(plan: MultiplyPlan) -> Callable[[], Any]:
        stream = make_sequence("random", n + ticks * slide, seed=_SEED).astype(np.float64)
        # Warm build outside the timed region: the case measures the
        # amortised incremental slide, not the one-off O(n log n) build the
        # streaming subsystem exists to avoid.  One kernel call = `ticks`
        # slides (wrapping through the stream, like the spec timer does).
        session = StreamingLIS(window=n, plan=plan)
        session.push(stream[:n])
        session.lis_length()
        state = {"offset": n}

        def kernel():
            for _ in range(ticks):
                if state["offset"] + slide > len(stream):
                    state["offset"] = n
                session.push(stream[state["offset"] : state["offset"] + slide])
                state["offset"] += slide
                session.lis_length()

        return kernel

    return factory


def _make_service(n: int, batch: int) -> Callable[[MultiplyPlan], Callable[[], Any]]:
    def factory(plan: MultiplyPlan) -> Callable[[], Any]:
        rng = np.random.default_rng(_SEED)
        i = rng.integers(0, max(1, n - 1), size=batch)
        j = np.minimum(i + rng.integers(1, max(2, n // 4), size=batch), n)
        target = TargetSpec(kind="sequence", workload="random", n=n, seed=_SEED)
        requests = [
            QueryRequest(op="substring_query", target=target, request_id="perf", i=i, j=j)
        ]
        service = QueryService(cache=IndexCache(), mode="sequential", plan=plan)
        service.submit(requests)  # cold build outside the timed region

        def kernel():
            outcome = service.submit(requests)
            assert outcome.outcomes[0].cache_hit
            return outcome

        return kernel

    return factory


def perf_cases() -> List[PerfCase]:
    """The registered case grid (full runs take all, quick runs the subset)."""
    cases: List[PerfCase] = []
    for n in (256, 1024, HEADLINE_MULTIPLY_N, 16384):
        for fanin in (2, 4):
            cases.append(
                PerfCase(
                    name=f"multiply_n{n}_h{fanin}",
                    group="multiply",
                    params={"n": n, "fanin": fanin},
                    quick=(n <= 1024 and fanin == 2),
                    make=_make_multiply(n, fanin),
                )
            )
    cases.append(
        PerfCase(
            name=f"multiply_reference_n{HEADLINE_MULTIPLY_N}",
            group="reference",
            params={"n": HEADLINE_MULTIPLY_N, "fanin": 2},
            quick=False,
            make=_make_reference(HEADLINE_MULTIPLY_N),
        )
    )
    cases.append(
        PerfCase(
            name="multiply_reference_n1024",
            group="reference",
            params={"n": 1024, "fanin": 2},
            quick=True,
            make=_make_reference(1024),
        )
    )
    for n, quick in ((1024, True), (4096, False)):
        cases.append(
            PerfCase(
                name=f"semilocal_build_n{n}",
                group="semilocal",
                params={"n": n},
                quick=quick,
                make=_make_semilocal(n),
            )
        )
    for n, ticks, slide, quick in ((512, 4, 32, True), (4096, 8, 64, False)):
        cases.append(
            PerfCase(
                name=f"streaming_tick_n{n}",
                group="streaming",
                params={"n": n, "ticks": ticks, "slide": slide},
                quick=quick,
                make=_make_streaming(n, ticks, slide),
                ops=ticks,
            )
        )
    for n, batch, quick in ((512, 32, True), (4096, 256, False)):
        cases.append(
            PerfCase(
                name=f"service_batch_n{n}",
                group="service",
                params={"n": n, "batch": batch},
                quick=quick,
                make=_make_service(n, batch),
            )
        )
    return cases


def calibrate_cpu(repeats: int = 5) -> float:
    """Seconds of the fixed calibration kernel (min over ``repeats``).

    The kernel — an argsort plus a searchsorted over a fixed seeded array —
    exercises the same NumPy machinery the engine leans on, so its timing
    tracks effective machine speed for these workloads.
    """
    rng = np.random.default_rng(_SEED)
    values = rng.integers(0, 1 << 30, size=1 << 16).astype(np.int64)
    best = float("inf")
    for _ in range(max(1, int(repeats))):
        started = time.perf_counter()
        order = np.argsort(values, kind="stable")
        np.searchsorted(values[order], values)
        best = min(best, time.perf_counter() - started)
    return best


def _time_kernel(kernel: Callable[[], Any], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, int(repeats))):
        started = time.perf_counter()
        kernel()
        best = min(best, time.perf_counter() - started)
    return best


def run_perf(
    *,
    quick: bool = False,
    plan: Optional[MultiplyPlan] = None,
    repeats: int = 2,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the case grid and return the schema-v1 artifact document.

    The additive ``perf`` section records the calibration, the plan and the
    headline iterative-vs-reference multiply speedup (both engines timed in
    the same process on the same operands).
    """
    plan = plan if plan is not None else MultiplyPlan()
    calibration = calibrate_cpu()
    selected = [case for case in perf_cases() if (case.quick or not quick)]

    wall_started = time.perf_counter()
    points: List[PointResult] = []
    by_name: Dict[str, float] = {}
    for case in selected:
        if progress is not None:
            progress(f"perf: {case.name}")
        kernel = case.make(plan)
        seconds = _time_kernel(kernel, repeats) / max(1, int(case.ops))
        by_name[case.name] = seconds
        points.append(
            PointResult(
                params=case.identity(),
                metrics={
                    "seconds": float(seconds),
                    "normalized": float(seconds / calibration),
                },
                seconds=float(seconds),
            )
        )
    wall_seconds = time.perf_counter() - wall_started

    headline_n = 1024 if quick else HEADLINE_MULTIPLY_N
    iterative_key = f"multiply_n{headline_n}_h2"
    reference_key = f"multiply_reference_n{headline_n}"
    speedup = None
    if iterative_key in by_name and reference_key in by_name and by_name[iterative_key] > 0:
        speedup = by_name[reference_key] / by_name[iterative_key]

    spec = ExperimentSpec(
        name="perf_core",
        title="Core hot-path micro-benchmarks (python -m repro perf)",
        claim="allocation-lean iterative multiply engine (>= 3x vs the recursive reference)",
        grid={},
        point=dict,
        columns=["case", "group", "seconds", "normalized"],
    )
    result = ExperimentResult(
        spec=spec,
        points=points,
        grid={},
        fixed={"quick": bool(quick), "repeats": int(repeats), "plan": plan.describe()},
        quick=bool(quick),
        workers=1,
        wall_clock_seconds=wall_seconds,
    )
    document = result_to_artifact(result)
    document["perf"] = {
        "calibration_seconds": float(calibration),
        "plan": plan.describe(),
        "headline_n": int(headline_n),
        "multiply_speedup_vs_reference": (
            float(speedup) if speedup is not None else None
        ),
        "cases": len(points),
    }
    return document
