"""The perf regression gate: compare a run against the recorded baseline.

The comparison is tolerance-based over the *cpu-normalised* timings (seconds
divided by the run's own calibration-kernel seconds, see
:func:`repro.perf.bench.calibrate_cpu`), so a faster or slower machine does
not trip the gate — only a genuinely slower code path does.  Points are
matched by their identifying params (``case``/``group``/sizes); cases present
in only one document are reported but never fail the check, so the grid can
grow without invalidating old baselines.

The headline speedup claim (iterative engine ≥ ``floor`` times the retained
recursive reference) is checked separately from the artifact's ``perf``
section via :func:`check_speedup`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_SPEEDUP_FLOOR",
    "compare_documents",
    "check_speedup",
    "format_report",
]

#: A case regresses when its normalized timing exceeds the baseline's by
#: more than this factor.  Generous on purpose: CI machines are noisy and
#: the normalisation only cancels speed differences to first order.
DEFAULT_TOLERANCE = 2.5

#: The tentpole claim: iterative multiply vs the recursive reference.
DEFAULT_SPEEDUP_FLOOR = 3.0


def _point_key(point: Dict[str, Any]) -> Tuple:
    params = point.get("params", {})
    return tuple(sorted((str(k), repr(v)) for k, v in params.items()))


def _normalized_points(document: Dict[str, Any]) -> Dict[Tuple, Dict[str, Any]]:
    out: Dict[Tuple, Dict[str, Any]] = {}
    for point in document.get("points", []):
        metrics = point.get("metrics", {})
        if "normalized" in metrics:
            out[_point_key(point)] = point
    return out


def compare_documents(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Any]:
    """Compare two perf artifacts; returns a JSON-safe report.

    ``report['ok']`` is false iff at least one matched case regressed beyond
    ``tolerance``.  Cases missing on either side are listed informationally.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    current_points = _normalized_points(current)
    baseline_points = _normalized_points(baseline)

    regressions: List[Dict[str, Any]] = []
    improvements: List[Dict[str, Any]] = []
    checked = 0
    for key, point in current_points.items():
        base = baseline_points.get(key)
        if base is None:
            continue
        checked += 1
        now = float(point["metrics"]["normalized"])
        then = float(base["metrics"]["normalized"])
        if then <= 0:
            continue
        ratio = now / then
        entry = {
            "case": point["params"].get("case"),
            "params": point["params"],
            "normalized_now": now,
            "normalized_baseline": then,
            "ratio": ratio,
        }
        if ratio > tolerance:
            regressions.append(entry)
        elif ratio < 1.0 / tolerance:
            improvements.append(entry)

    only_current = sorted(
        str(current_points[key]["params"].get("case"))
        for key in current_points.keys() - baseline_points.keys()
    )
    only_baseline = sorted(
        str(baseline_points[key]["params"].get("case"))
        for key in baseline_points.keys() - current_points.keys()
    )
    return {
        "ok": not regressions,
        "tolerance": float(tolerance),
        "checked": checked,
        "regressions": regressions,
        "improvements": improvements,
        "only_in_current": only_current,
        "only_in_baseline": only_baseline,
    }


def check_speedup(
    document: Dict[str, Any], *, floor: float = DEFAULT_SPEEDUP_FLOOR
) -> Optional[str]:
    """``None`` when the recorded headline speedup clears ``floor``.

    Returns a human-readable failure message otherwise (also when the
    document carries no speedup — a perf artifact must prove the claim).
    """
    perf = document.get("perf", {})
    speedup = perf.get("multiply_speedup_vs_reference")
    if speedup is None:
        return "artifact records no multiply_speedup_vs_reference"
    if float(speedup) < float(floor):
        return (
            f"iterative multiply speedup {float(speedup):.2f}x is below the "
            f"required {float(floor):.2f}x floor (headline n={perf.get('headline_n')})"
        )
    return None


def format_report(report: Dict[str, Any]) -> str:
    """One-paragraph text rendering of a :func:`compare_documents` report."""
    lines = [
        f"perf regression check: {report['checked']} cases compared "
        f"(tolerance {report['tolerance']:.2f}x) -> "
        + ("OK" if report["ok"] else f"{len(report['regressions'])} REGRESSION(S)")
    ]
    for entry in report["regressions"]:
        lines.append(
            f"  REGRESSED {entry['case']}: {entry['normalized_now']:.3f} vs "
            f"baseline {entry['normalized_baseline']:.3f} "
            f"({entry['ratio']:.2f}x, normalized units)"
        )
    for entry in report["improvements"]:
        lines.append(
            f"  improved {entry['case']}: {entry['ratio']:.2f}x of baseline"
        )
    if report["only_in_current"]:
        lines.append(f"  new cases (not in baseline): {', '.join(report['only_in_current'])}")
    if report["only_in_baseline"]:
        lines.append(f"  baseline-only cases: {', '.join(report['only_in_baseline'])}")
    return "\n".join(lines)
