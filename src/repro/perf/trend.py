"""Perf-over-commits trend rows (``results/perf_trend.jsonl``).

``repro perf --record-trend`` appends one JSON line per run so the BENCH
trajectory becomes plottable: each row carries the commit, a timestamp, and
the *normalized* (CPU-calibrated) per-case timings from the perf document —
normalized so rows recorded on different hosts stay comparable, the same
reason the regression gate compares normalized values.

``repro report`` renders these rows as the perf-over-commits table, and
smoke.sh validates the file with :func:`load_trend`.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Any, Dict, List, Optional

__all__ = ["TREND_SCHEMA_ID", "current_commit", "trend_row", "record_trend", "load_trend"]

TREND_SCHEMA_ID = "repro.perf.trend"
TREND_SCHEMA_VERSION = 1


def current_commit(cwd: Optional[str] = None) -> str:
    """The short git commit hash, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    text = out.stdout.strip()
    return text if out.returncode == 0 and text else "unknown"


def trend_row(document: Dict[str, Any], *, commit: Optional[str] = None) -> Dict[str, Any]:
    """One trend row distilled from a ``run_perf`` schema-v1 document."""
    perf = document.get("perf", {})
    normalized = {}
    for point in document.get("points", []):
        case = point.get("params", {}).get("case")
        value = point.get("metrics", {}).get("normalized")
        if case is not None and isinstance(value, (int, float)):
            normalized[str(case)] = float(value)
    return {
        "schema": TREND_SCHEMA_ID,
        "schema_version": TREND_SCHEMA_VERSION,
        "commit": commit if commit is not None else current_commit(),
        "timestamp": time.time(),
        "package_version": document.get("package_version"),
        "quick": bool(document.get("quick", False)),
        "calibration_seconds": perf.get("calibration_seconds"),
        "multiply_speedup_vs_reference": perf.get("multiply_speedup_vs_reference"),
        "normalized": normalized,
    }


def record_trend(
    document: Dict[str, Any],
    path: str = os.path.join("results", "perf_trend.jsonl"),
    *,
    commit: Optional[str] = None,
) -> Dict[str, Any]:
    """Append a trend row for ``document`` to ``path``; returns the row."""
    row = trend_row(document, commit=commit)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def load_trend(path: str, *, strict: bool = True) -> List[Dict[str, Any]]:
    """Parse + validate a trend file; raises ``ValueError`` on bad rows.

    With ``strict=False``, malformed rows are dropped instead (the report
    tool still renders whatever it can).
    """
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                _validate_row(row)
            except (json.JSONDecodeError, ValueError) as exc:
                if strict:
                    raise ValueError(f"{path}:{lineno}: {exc}") from exc
                continue
            rows.append(row)
    return rows


def _validate_row(row: Any) -> None:
    if not isinstance(row, dict):
        raise ValueError("trend row must be a JSON object")
    if row.get("schema") != TREND_SCHEMA_ID:
        raise ValueError(f"bad schema id {row.get('schema')!r}")
    if not isinstance(row.get("schema_version"), int):
        raise ValueError("missing integer schema_version")
    if row["schema_version"] > TREND_SCHEMA_VERSION:
        raise ValueError(f"schema_version {row['schema_version']} is newer than understood")
    for field, kind in (("commit", str), ("timestamp", (int, float)), ("normalized", dict)):
        if not isinstance(row.get(field), kind):
            raise ValueError(f"field {field!r} missing or wrong type")
    for case, value in row["normalized"].items():
        if not isinstance(value, (int, float)):
            raise ValueError(f"normalized[{case!r}] is not a number")
