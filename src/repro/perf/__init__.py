"""The perf subsystem: core-hot-path micro-benchmarks plus a regression gate.

``python -m repro perf`` runs the fixed case grid of :mod:`repro.perf.bench`
(multiply at several sizes and fan-ins, the retained recursive reference, a
semi-local build, a streaming tick, a warm service batch), writes the
schema-v1 ``results/perf_core.json`` artifact, and checks it against the
recorded baseline with the tolerance rules of :mod:`repro.perf.regression`.
"""

from .bench import (
    HEADLINE_MULTIPLY_N,
    PerfCase,
    calibrate_cpu,
    perf_cases,
    run_perf,
)
from .regression import (
    DEFAULT_SPEEDUP_FLOOR,
    DEFAULT_TOLERANCE,
    check_speedup,
    compare_documents,
    format_report,
)

__all__ = [
    "HEADLINE_MULTIPLY_N",
    "PerfCase",
    "calibrate_cpu",
    "perf_cases",
    "run_perf",
    "DEFAULT_SPEEDUP_FLOOR",
    "DEFAULT_TOLERANCE",
    "check_speedup",
    "compare_documents",
    "format_report",
]
