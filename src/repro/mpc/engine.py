"""Pluggable execution backends for the MPC simulator.

The cluster in :mod:`repro.mpc.cluster` is split into two layers:

* an **accounting layer** (:class:`~repro.mpc.accounting.ClusterStats`, the
  space checks) that records rounds, words and per-machine loads, and
* an **execution layer** — one of the backends below — that actually runs the
  per-machine local work and the independent ``fork()`` sub-cluster
  recursions.

The contract that keeps the two layers independent (and that the test-suite
enforces) is:

1. **Backends never touch accounting.**  Rounds and loads are charged by the
   driver from deterministic quantities (chunk sizes, word counts), never
   from anything that depends on scheduling, thread timing or process
   placement.
2. **Backends are order-preserving.**  ``map_local`` returns results in
   machine order and ``run_group_tasks`` returns results in task order, so
   every backend produces bit-identical data placement and bit-identical
   :class:`ClusterStats` — the parallel backends only change *wall-clock*
   behaviour.
3. **Backends are process-local.**  A pickled :class:`MPCCluster` always
   deserialises with the serial backend: worker processes of the
   :class:`ProcessBackend` (and of the experiment runner's ``--workers``
   fan-out) must not recursively spawn pools of their own.

``SerialBackend`` reproduces the historical eager driver-side execution.
``ThreadBackend`` runs local work and fork-groups on a thread pool (NumPy
releases the GIL for the heavy kernels).  ``ProcessBackend`` ships whole
fork-group tasks to worker processes and merges the child cluster statistics
back into the parent — tasks must be picklable (module-level functions with
picklable arguments); unpicklable tasks transparently fall back to in-process
execution so exotic callers (e.g. closure-based multipliers) keep working.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "GroupTask",
    "resolve_backend",
    "backend_names",
    "fork_context",
    "in_daemonic_process",
    "DEFAULT_BACKEND",
]

#: One unit of forked work: ``fn(child_cluster, *args, **kwargs)``.
GroupTask = Tuple[Callable[..., Any], tuple, dict]


def _default_workers() -> int:
    """Worker count used when a backend is built without an explicit one.

    At least 2, so the parallel machinery genuinely engages (and is tested)
    even on single-core containers; on real hardware it follows the core
    count.
    """
    return max(2, os.cpu_count() or 1)


def normalize_tasks(tasks: Sequence[Union[GroupTask, Tuple[Callable[..., Any], tuple]]]) -> List[GroupTask]:
    """Accept ``(fn, args)`` or ``(fn, args, kwargs)`` tuples."""
    normalized: List[GroupTask] = []
    for task in tasks:
        if len(task) == 2:
            fn, args = task  # type: ignore[misc]
            normalized.append((fn, tuple(args), {}))
        else:
            fn, args, kwargs = task  # type: ignore[misc]
            normalized.append((fn, tuple(args), dict(kwargs)))
    return normalized


class ExecutionBackend:
    """Protocol/base class of the execution layer.

    ``name``
        Stable identifier (``"serial"``, ``"thread"``, ``"process"``); this is
        what spec parameters, artifacts and the CLI ``--backend`` flag carry.
    ``map_local(fn, items)``
        Per-machine local computation: ``[fn(item, index) for index, item]``,
        results in machine order.  No accounting happens here — the caller
        charges rounds/loads from the inputs and outputs.
    ``run_group_tasks(children, tasks)``
        Execute one task per forked sub-cluster; after the call every child's
        ``stats`` reflects the work its task charged, and the returned results
        are in task order.
    """

    name: str = "abstract"

    def map_local(self, fn: Callable[[Any, int], Any], items: Sequence[Any]) -> List[Any]:
        raise NotImplementedError

    def run_group_tasks(self, children: Sequence[Any], tasks: Sequence[GroupTask]) -> List[Any]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _run_tasks_inline(children: Sequence[Any], tasks: Sequence[GroupTask]) -> List[Any]:
    return [fn(child, *args, **kwargs) for child, (fn, args, kwargs) in zip(children, tasks)]


class SerialBackend(ExecutionBackend):
    """The historical semantics: everything runs eagerly on the driver."""

    name = "serial"

    def map_local(self, fn: Callable[[Any, int], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item, index) for index, item in enumerate(items)]

    def run_group_tasks(self, children: Sequence[Any], tasks: Sequence[GroupTask]) -> List[Any]:
        return _run_tasks_inline(children, normalize_tasks(tasks))


def _item_weight(items: Sequence[Any]) -> int:
    """Rough element count of a map_local input (chunk arrays or tuples of them)."""
    total = 0
    for item in items:
        try:
            total += len(item[0]) if isinstance(item, tuple) else len(item)
        except TypeError:
            total += 1
    return total


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution of local work and fork-group tasks.

    Each call builds its own short-lived executor, so nested fork-groups (the
    §3 recursion forks inside forked subtrees) cannot deadlock on a shared
    pool.  ``min_parallel_items`` keeps tiny local maps inline — threading a
    handful of 100-element chunks costs more than it saves.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None, min_parallel_items: int = 4096) -> None:
        self.max_workers = int(max_workers) if max_workers is not None else _default_workers()
        self.min_parallel_items = int(min_parallel_items)

    def map_local(self, fn: Callable[[Any, int], Any], items: Sequence[Any]) -> List[Any]:
        workers = min(self.max_workers, len(items))
        if workers <= 1 or _item_weight(items) < self.min_parallel_items:
            return [fn(item, index) for index, item in enumerate(items)]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as executor:
            futures = [executor.submit(fn, item, index) for index, item in enumerate(items)]
            return [future.result() for future in futures]

    def run_group_tasks(self, children: Sequence[Any], tasks: Sequence[GroupTask]) -> List[Any]:
        tasks = normalize_tasks(tasks)
        workers = min(self.max_workers, len(tasks))
        if workers <= 1:
            return _run_tasks_inline(children, tasks)
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as executor:
            futures = [
                executor.submit(fn, child, *args, **kwargs)
                for child, (fn, args, kwargs) in zip(children, tasks)
            ]
            return [future.result() for future in futures]


def _run_pickled_group_task(payload: bytes) -> Tuple[Any, Any]:
    """Worker-side entry point: run one fork-group task, return (result, stats).

    The child cluster arrives with the serial backend (pickling downgrades
    backends, see :meth:`MPCCluster.__getstate__`), so nested fork-groups
    inside the task run inline — worker processes never spawn pools.
    """
    child, fn, args, kwargs = pickle.loads(payload)
    result = fn(child, *args, **kwargs)
    return result, child.stats


def in_daemonic_process() -> bool:
    """Whether we are inside a daemonic worker (which cannot spawn children).

    This happens when a process backend ends up executing *inside* a worker —
    e.g. the experiment runner's ``--workers`` fan-out constructs clusters
    with ``backend="process"`` from the shipped fixed params, or an algorithm
    re-applies ``MongeMPCConfig.backend`` on a worker-side cluster.  Pool
    workers are daemonic, so spawning a nested pool would raise; these cases
    must run inline instead (correctness and accounting are unaffected).
    The shard router (:mod:`repro.service.sharding`) uses the same check to
    fall back to in-process shards.
    """
    import multiprocessing

    return bool(multiprocessing.current_process().daemon)


def fork_context():
    """The preferred multiprocessing context (``fork`` where available).

    Fork is cheap and inherits the loaded NumPy/module state; platforms
    without it (non-POSIX) get the default context.  Shared by the
    :class:`ProcessBackend` pool and the shard router's long-lived workers.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ProcessBackend(ExecutionBackend):
    """Process-pool execution of fork-group tasks.

    Whole sub-cluster tasks (e.g. one branch of the §3 recursion, one
    merge-tree pair of Theorem 1.3) are pickled to worker processes; the
    mutated child :class:`ClusterStats` travels back with the result and
    replaces the parent-side child stats, so ``join()`` sees exactly what a
    serial run would have seen.  Fork-group tasks are the coarse-grained unit
    where process parallelism pays for its serialization; per-machine
    ``map_local`` work runs inline — shipping per-chunk NumPy inputs (and
    broadcast data like the sorted array of a rank search) across process
    boundaries costs more than the vectorised local work itself.  Use the
    thread backend for concurrent local phases.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = int(max_workers) if max_workers is not None else _default_workers()

    def _context(self):
        return fork_context()

    def map_local(self, fn: Callable[[Any, int], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item, index) for index, item in enumerate(items)]

    def run_group_tasks(self, children: Sequence[Any], tasks: Sequence[GroupTask]) -> List[Any]:
        tasks = normalize_tasks(tasks)
        workers = min(self.max_workers, len(tasks))
        if workers <= 1 or in_daemonic_process():
            return _run_tasks_inline(children, tasks)
        try:
            payloads = [
                pickle.dumps((child, fn, args, kwargs))
                for child, (fn, args, kwargs) in zip(children, tasks)
            ]
        except Exception:
            # Unpicklable task (closure-based multiply_fn, ad-hoc lambdas):
            # run in-process — correctness and accounting are unaffected.
            return _run_tasks_inline(children, tasks)
        with self._context().Pool(processes=workers) as pool:
            outcomes = pool.map(_run_pickled_group_task, payloads, chunksize=1)
        results: List[Any] = []
        for child, (result, stats) in zip(children, outcomes):
            child.stats = stats
            results.append(result)
        return results


#: Name of the backend used when none is requested.
DEFAULT_BACKEND = "serial"

_BACKEND_FACTORIES: Dict[str, Callable[[], ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def backend_names() -> List[str]:
    """The selectable backend names (CLI ``--backend`` choices)."""
    return sorted(_BACKEND_FACTORIES)


def resolve_backend(backend: Union[None, str, ExecutionBackend]) -> ExecutionBackend:
    """Turn ``None`` / a name / an instance into an :class:`ExecutionBackend`."""
    if backend is None:
        return _BACKEND_FACTORIES[DEFAULT_BACKEND]()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        try:
            return _BACKEND_FACTORIES[backend]()
        except KeyError:
            raise ValueError(
                f"unknown execution backend {backend!r}; available: {backend_names()}"
            ) from None
    raise TypeError(f"backend must be None, a name or an ExecutionBackend, got {type(backend).__name__}")
