"""Standalone wrappers around the cluster's O(1)-round primitives.

These correspond one-to-one to the paper's basic tools (Section 2.2):

* Lemma 2.3 — :func:`inverse_permutation`
* Lemma 2.4 — :func:`prefix_sum`
* Lemma 2.5 — :func:`mpc_sort`
* Lemma 2.6 — :func:`offline_rank_search`

They exist mostly to make algorithm code read like the paper; each simply
delegates to the corresponding :class:`~repro.mpc.cluster.MPCCluster` method
(which performs the actual accounting).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .cluster import DistributedArray, MPCCluster

__all__ = [
    "mpc_sort",
    "prefix_sum",
    "inverse_permutation",
    "offline_rank_search",
    "broadcast",
]

ArrayLike = Union[Sequence, np.ndarray]


def _ensure_distributed(cluster: MPCCluster, data: Union[ArrayLike, DistributedArray]) -> DistributedArray:
    if isinstance(data, DistributedArray):
        return data
    return cluster.distribute(np.asarray(data))


def mpc_sort(
    cluster: MPCCluster,
    data: Union[ArrayLike, DistributedArray],
    key: Optional[np.ndarray] = None,
    label: str = "sort",
) -> DistributedArray:
    """Deterministic O(1)-round sorting (Lemma 2.5)."""
    return cluster.sort(_ensure_distributed(cluster, data), label=label, key=key)


def prefix_sum(
    cluster: MPCCluster,
    data: Union[ArrayLike, DistributedArray],
    exclusive: bool = True,
    label: str = "prefix_sum",
) -> DistributedArray:
    """Deterministic O(1)-round prefix sums (Lemma 2.4)."""
    return cluster.prefix_sum(_ensure_distributed(cluster, data), label=label, exclusive=exclusive)


def inverse_permutation(
    cluster: MPCCluster,
    permutation: Union[ArrayLike, DistributedArray],
    label: str = "inverse",
) -> DistributedArray:
    """Invert a permutation in O(1) rounds (Lemma 2.3)."""
    return cluster.inverse_permutation(_ensure_distributed(cluster, permutation), label=label)


def offline_rank_search(
    cluster: MPCCluster,
    data: Union[ArrayLike, DistributedArray],
    queries: Union[ArrayLike, DistributedArray],
    label: str = "rank_search",
) -> DistributedArray:
    """Offline rank searching in O(1) rounds (Lemma 2.6)."""
    return cluster.rank_search(
        _ensure_distributed(cluster, data), _ensure_distributed(cluster, queries), label=label
    )


def broadcast(cluster: MPCCluster, values: ArrayLike, label: str = "broadcast") -> np.ndarray:
    """Broadcast an O(s)-sized message to every machine."""
    return cluster.broadcast(values, label=label)
