"""A deterministic MPC cluster simulator with faithful cost accounting.

The simulator models the MPC regime of the paper (Section 1.1): ``m = O(n^δ)``
machines with ``s = Õ(n^{1-δ})`` words of memory each.  Data lives in
:class:`DistributedArray` objects that are partitioned across machines; every
cluster operation

* charges the number of **rounds** the corresponding MPC primitive needs,
* charges the **words communicated** in each of those rounds,
* checks that no machine ever holds more than its **space budget** and raises
  :class:`~repro.mpc.errors.SpaceExceededError` otherwise,
* records the peak per-machine load for the scalability experiments.

The cluster is split into two layers (see :mod:`repro.mpc.engine`):

* **accounting** — :class:`~repro.mpc.accounting.ClusterStats` plus the space
  checks below.  Rounds and loads are always derived from deterministic
  quantities (chunk sizes, word counts), so every backend feeds this layer
  identically.
* **execution** — a pluggable :class:`~repro.mpc.engine.ExecutionBackend`.
  Primitives are phrased as *local phases* (per-machine chunk work, run
  through ``backend.map_local`` and therefore parallelisable) stitched
  together by *explicit exchange steps* (the communication the round charges
  pay for).  The simulated data placement is the real data placement: no
  primitive materialises the global array as an intermediate.
  ``fork()``/``join()`` machine groups execute truly in parallel under the
  thread/process backends via :meth:`MPCCluster.run_forked`.

The paper's results are statements about rounds and space; the backends only
change wall-clock behaviour, never any simulated quantity.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .accounting import ClusterStats
from .engine import ExecutionBackend, GroupTask, resolve_backend
from .errors import MachineCountError, SpaceExceededError

__all__ = ["DistributedArray", "MPCCluster"]


# Round costs of the basic deterministic primitives (GSZ11); exposed as module
# constants so that tests and the analysis module can reason about them.
SORT_ROUNDS = 3
ROUTE_ROUNDS = 1
BROADCAST_ROUNDS_PER_LEVEL = 1
PREFIX_SUM_ROUNDS_PER_LEVEL = 2
RANK_SEARCH_ROUNDS = SORT_ROUNDS + PREFIX_SUM_ROUNDS_PER_LEVEL + ROUTE_ROUNDS


# --------------------------------------------------------------------------
# Local phases of the primitives.  Module-level (picklable) functions of one
# machine's data, executed through ``backend.map_local`` — the execution
# backend may run them concurrently, so they must not touch shared state.
# --------------------------------------------------------------------------


def _split_like(array: np.ndarray, sizes: Sequence[int]) -> List[np.ndarray]:
    """Slice a flat array into consecutive chunks of the given sizes."""
    bounds = np.cumsum([0] + list(sizes))
    return [array[bounds[i] : bounds[i + 1]] for i in range(len(sizes))]


def _local_sort_run(item: Tuple[np.ndarray, np.ndarray], index: int) -> Tuple[np.ndarray, np.ndarray]:
    """Stable-sort one machine's (values, keys) chunk by key."""
    values, keys = item
    order = np.argsort(keys, kind="stable")
    return values[order], keys[order]


def _local_bucket_by_destination(
    item: Tuple[np.ndarray, np.ndarray, int], index: int
) -> List[np.ndarray]:
    """Split one machine's payload into per-destination segments (stable)."""
    payload, destinations, num_machines = item
    order = np.argsort(destinations, kind="stable")
    sorted_payload = payload[order]
    sorted_dest = destinations[order]
    boundaries = np.searchsorted(sorted_dest, np.arange(num_machines + 1))
    return [sorted_payload[boundaries[p] : boundaries[p + 1]] for p in range(num_machines)]


def _local_bucket_pairs_by_destination(
    item: Tuple[np.ndarray, np.ndarray, np.ndarray, int], index: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split one machine's (value, companion) pairs into per-destination
    segments with a single stable bucketing pass."""
    values, companions, destinations, num_machines = item
    order = np.argsort(destinations, kind="stable")
    sorted_values = values[order]
    sorted_companions = companions[order]
    sorted_dest = destinations[order]
    boundaries = np.searchsorted(sorted_dest, np.arange(num_machines + 1))
    return [
        (
            sorted_values[boundaries[p] : boundaries[p + 1]],
            sorted_companions[boundaries[p] : boundaries[p + 1]],
        )
        for p in range(num_machines)
    ]


def _local_prefix_state(chunk: np.ndarray, index: int) -> Tuple[int, np.ndarray]:
    """One machine's contribution to a prefix sum: (chunk total, local scan)."""
    values = np.asarray(chunk, dtype=np.int64)
    local = np.cumsum(values)
    total = int(local[-1]) if len(local) else 0
    return total, local


def _local_prefix_finish(
    item: Tuple[np.ndarray, np.ndarray, int, bool], index: int
) -> np.ndarray:
    """Apply the machine's global offset to its local scan."""
    values, local_inclusive, offset, exclusive = item
    inclusive = local_inclusive + offset
    return inclusive - np.asarray(values, dtype=np.int64) if exclusive else inclusive


def _local_scatter_inverse(
    item: Tuple[int, int, np.ndarray, np.ndarray], index: int
) -> np.ndarray:
    """Place received (value, source-index) pairs of an inversion locally."""
    size, base, values, sources = item
    chunk = np.empty(size, dtype=np.int64)
    chunk[values - base] = sources
    return chunk


def _local_rank_queries(item: Tuple[np.ndarray, np.ndarray], index: int) -> np.ndarray:
    """Answer one machine's rank queries against the (broadcast) sorted data."""
    sorted_data, queries = item
    return np.searchsorted(sorted_data, queries, side="left")


class DistributedArray:
    """A one-dimensional array partitioned across the machines of a cluster.

    ``chunks[p]`` is the slice held by machine ``p``.  The concatenation of
    the chunks (in machine order) is the logical array content.
    """

    def __init__(self, cluster: "MPCCluster", chunks: List[np.ndarray], label: str = "") -> None:
        self.cluster = cluster
        self.chunks = [np.asarray(chunk) for chunk in chunks]
        self.label = label
        cluster._check_chunks(self.chunks, context=label)

    # ------------------------------------------------------------------ views
    @property
    def total_size(self) -> int:
        return int(sum(len(chunk) for chunk in self.chunks))

    @property
    def chunk_sizes(self) -> List[int]:
        return [len(chunk) for chunk in self.chunks]

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def to_array(self) -> np.ndarray:
        """Materialise the logical array (driver-side view, free of charge).

        This is a *read-only debugging/verification view*; the primitives
        operate chunk-resident and never call it.
        """
        if not self.chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.chunks)

    def map_chunks(self, fn: Callable[[np.ndarray, int], np.ndarray], label: str = "map") -> "DistributedArray":
        """Apply a local (per-machine) function to every chunk; no round cost.

        The chunks are mapped through the cluster's execution backend, so
        thread/process backends run the per-machine work concurrently.
        """
        new_chunks = self.cluster.backend.map_local(fn, self.chunks)
        self.cluster.stats.local_operations += self.total_size
        return DistributedArray(self.cluster, new_chunks, label=label)

    def __len__(self) -> int:
        return self.total_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedArray(label={self.label!r}, total={self.total_size}, "
            f"machines={self.num_chunks})"
        )


class MPCCluster:
    """A simulated MPC cluster (machines, space budget, accounting).

    Parameters
    ----------
    n:
        Problem size used to derive the default machine count and space.
    delta:
        The scalability parameter ``δ`` with ``0 < δ < 1``: ``m = Θ(n^δ)``
        machines and ``s = Õ(n^{1-δ})`` words each.
    num_machines, space_per_machine:
        Explicit overrides (used by :meth:`fork` and by tests).
    space_slack:
        Constant factor in front of ``n^{1-δ}``.
    polylog_exponent:
        Exponent of the ``log₂ n`` factor hidden in ``Õ`` (default 1).
    strict_space:
        When false, space violations are recorded (peak load) but do not
        raise; used by the space-overhead ablation benchmark.
    backend:
        Execution backend: ``None``/``"serial"`` (default), ``"thread"``,
        ``"process"`` or an :class:`~repro.mpc.engine.ExecutionBackend`
        instance.  Backends change wall-clock behaviour only — accounting is
        bit-identical across all of them.
    """

    def __init__(
        self,
        n: int,
        delta: float = 0.5,
        *,
        num_machines: Optional[int] = None,
        space_per_machine: Optional[int] = None,
        space_slack: float = 2.0,
        polylog_exponent: float = 1.0,
        strict_space: bool = True,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> None:
        if not (0.0 < delta < 1.0):
            raise ValueError("delta must lie strictly between 0 and 1")
        if n < 1:
            raise ValueError("n must be positive")
        self.n = int(n)
        self.delta = float(delta)
        self.space_slack = float(space_slack)
        self.polylog_exponent = float(polylog_exponent)
        self.strict_space = bool(strict_space)
        self.backend = resolve_backend(backend)

        if num_machines is None:
            num_machines = max(1, math.ceil(n ** delta))
        if space_per_machine is None:
            polylog = max(1.0, math.log2(max(n, 2))) ** polylog_exponent
            # The MPC model assumes s = Ω(polylog n); the floor of 64 words
            # keeps degenerate toy instances (n of a few dozen) solvable on a
            # single machine without affecting any asymptotic accounting.
            space_per_machine = max(64, math.ceil(space_slack * (n ** (1.0 - delta)) * polylog))
        self.num_machines = int(num_machines)
        self.space_per_machine = int(space_per_machine)
        self.stats = ClusterStats(
            num_machines=self.num_machines, space_per_machine=self.space_per_machine
        )

    # -------------------------------------------------------------- pickling
    # Backends are process-local (pools, executors); a pickled cluster always
    # deserialises with the serial backend so worker processes never spawn
    # nested pools.  Accounting state travels unchanged.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["backend"] = "serial"
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.backend = resolve_backend(state.get("backend"))

    # ------------------------------------------------------------------ misc
    @property
    def total_space(self) -> int:
        """Aggregate memory of the cluster (``m * s``)."""
        return self.num_machines * self.space_per_machine

    def _check_load(self, load: int, machine: int = -1, context: str = "") -> None:
        self.stats.record_load(load)
        if load > self.space_per_machine and self.strict_space:
            raise SpaceExceededError(machine, load, self.space_per_machine, context)

    def _check_chunks(self, chunks: Sequence[np.ndarray], context: str = "") -> None:
        if len(chunks) > self.num_machines:
            raise MachineCountError(
                f"{len(chunks)} chunks but only {self.num_machines} machines ({context})"
            )
        for index, chunk in enumerate(chunks):
            self._check_load(len(chunk), machine=index, context=context)

    def charge_round(
        self, label: str, words: int, max_load: Optional[int] = None, phase: str = ""
    ) -> None:
        """Explicitly charge one communication round (for composite steps).

        ``max_load`` should be the true peak per-machine load of the round.
        The default assumes the worst case — all words on one machine — so
        call sites that know the real distribution must pass it explicitly;
        an optimistic default clamped to the space budget would silently
        under-report peak loads in the space ablations.
        """
        if max_load is None:
            max_load = words
        self._check_load(max_load, context=label)
        self.stats.record_round(label, words, max_load, phase=phase)

    def charge_rounds(
        self, count: int, label: str, words_per_round: int, max_load: Optional[int] = None, phase: str = ""
    ) -> None:
        for _ in range(max(0, int(count))):
            self.charge_round(label, words_per_round, max_load, phase=phase)

    def tree_depth(self) -> int:
        """Depth of an ``s``-ary aggregation tree over the machines (O(1))."""
        if self.num_machines <= 1:
            return 1
        return max(1, math.ceil(math.log(self.num_machines, max(2, self.space_per_machine))))

    # ----------------------------------------------------------- distribution
    def partition_bounds(self, total: int, parts: Optional[int] = None) -> np.ndarray:
        parts = parts if parts is not None else self.num_machines
        return np.linspace(0, total, parts + 1).round().astype(np.int64)

    def distribute(self, array: Union[Sequence, np.ndarray], label: str = "input") -> DistributedArray:
        """Place an input array across the machines in contiguous blocks.

        Input placement is part of the MPC model's starting state and costs no
        rounds, but the per-machine block size must respect the space budget.
        """
        array = np.asarray(array)
        bounds = self.partition_bounds(len(array))
        chunks = [array[bounds[p] : bounds[p + 1]] for p in range(self.num_machines)]
        return DistributedArray(self, chunks, label=label)

    def distributed_from_chunks(self, chunks: List[np.ndarray], label: str = "") -> DistributedArray:
        return DistributedArray(self, chunks, label=label)

    # ------------------------------------------------------------- primitives
    def broadcast(self, array: Union[Sequence, np.ndarray], label: str = "broadcast") -> np.ndarray:
        """Broadcast a small array to every machine (tree of arity ``s``)."""
        array = np.asarray(array)
        self._check_load(len(array), context=label)
        depth = self.tree_depth()
        for _ in range(depth * BROADCAST_ROUNDS_PER_LEVEL):
            self.charge_round(label, words=len(array) * self.num_machines, max_load=len(array))
        return array

    def route(
        self,
        darr: DistributedArray,
        destinations: np.ndarray,
        label: str = "route",
        payload: Optional[np.ndarray] = None,
    ) -> DistributedArray:
        """All-to-all: send element ``i`` to machine ``destinations[i]``.

        One round; the received chunks are ordered by source machine (stable).
        Returns the distributed array of payloads after routing (payload
        defaults to the array content itself).

        Local phase: every machine buckets its own chunk by destination.
        Exchange: destination ``p`` concatenates the segments addressed to it,
        in source-machine order.
        """
        destinations = np.asarray(destinations, dtype=np.int64)
        if len(destinations) != darr.total_size:
            raise ValueError("destinations must match the array length")
        if destinations.size and (
            destinations.min() < 0 or destinations.max() >= self.num_machines
        ):
            raise MachineCountError("destination machine index out of range")
        if payload is not None:
            payload = np.asarray(payload)
            if len(payload) != darr.total_size:
                raise ValueError("payload must match the array length")
            payload_chunks = _split_like(payload, darr.chunk_sizes)
        else:
            payload_chunks = darr.chunks
        dest_chunks = _split_like(destinations, darr.chunk_sizes)

        # Local phase: per-machine bucketing (stable within each machine).
        buckets = self.backend.map_local(
            _local_bucket_by_destination,
            [
                (payload_chunks[q], dest_chunks[q], self.num_machines)
                for q in range(len(payload_chunks))
            ],
        )
        # Exchange: one all-to-all round.
        chunks = [
            np.concatenate([bucket[p] for bucket in buckets])
            if buckets
            else np.empty(0, dtype=np.int64)
            for p in range(self.num_machines)
        ]
        max_load = max((len(c) for c in chunks), default=0)
        self.charge_round(label, words=len(destinations), max_load=max_load)
        return DistributedArray(self, chunks, label=label)

    def sort(
        self,
        darr: DistributedArray,
        label: str = "sort",
        key: Optional[np.ndarray] = None,
    ) -> DistributedArray:
        """Deterministic O(1)-round sort (Lemma 2.5, [GSZ11]).

        Simulated as sample sort with regular sampling: one round to collect
        the per-machine regular samples, one to broadcast the splitters and
        one to route the data; the output is range-partitioned across the
        machines.

        Local phase: every machine stable-sorts its own chunk.  Exchange: the
        locally sorted runs are merged (this is the sample/splitter/route
        communication the three rounds pay for) and the result is
        range-partitioned into equal-size output chunks.
        """
        if key is None:
            key_chunks = darr.chunks
        else:
            keys = np.asarray(key)
            if len(keys) != darr.total_size:
                raise ValueError("key must match the array length")
            key_chunks = _split_like(keys, darr.chunk_sizes)

        # Local phase: per-machine stable sorts.
        runs = self.backend.map_local(
            _local_sort_run, list(zip(darr.chunks, key_chunks))
        )
        # Exchange: merge the sorted runs.  Stable-sorting the concatenation
        # of locally-stable runs breaks ties by (machine, original position),
        # i.e. exactly the global stable order.
        if runs:
            run_values = np.concatenate([values for values, _ in runs])
            run_keys = np.concatenate([keys_ for _, keys_ in runs])
        else:
            run_values = run_keys = np.empty(0, dtype=np.int64)
        order = np.argsort(run_keys, kind="stable")
        sorted_values = run_values[order]
        total = len(sorted_values)
        bounds = self.partition_bounds(total)
        chunks = [sorted_values[bounds[p] : bounds[p + 1]] for p in range(self.num_machines)]
        max_load = max((len(c) for c in chunks), default=0)
        # Round 1: every machine sends m regular samples; they are aggregated
        # over the s-ary machine tree, so no machine ever holds more than its
        # budget of samples (the tree fans in before the next level sends).
        sample_words = min(total, self.num_machines * self.num_machines)
        self.charge_round(f"{label}:sample", words=sample_words, max_load=min(sample_words, self.space_per_machine))
        # Round 2: the coordinator broadcasts the m-1 splitters.
        self.charge_round(f"{label}:splitters", words=self.num_machines * self.num_machines, max_load=self.num_machines)
        # Round 3: data is routed to its destination bucket.
        self.charge_round(f"{label}:route", words=total, max_load=max_load)
        return DistributedArray(self, chunks, label=label)

    def prefix_sum(
        self, darr: DistributedArray, label: str = "prefix_sum", exclusive: bool = True
    ) -> DistributedArray:
        """Deterministic O(1)-round prefix sums (Lemma 2.4, [GSZ11]).

        Local phase 1: every machine scans its own chunk and reports one
        total.  Exchange: the ``m`` chunk totals are scanned over the machine
        tree (O(m) words — the only data that moves).  Local phase 2: every
        machine offsets its local scan by its global prefix.
        """
        # Local phase 1: per-machine totals and local scans.
        states = self.backend.map_local(_local_prefix_state, darr.chunks)
        totals = np.array([total for total, _ in states], dtype=np.int64)
        # Exchange: exclusive scan of the m chunk totals over the machine tree.
        offsets = np.cumsum(totals) - totals
        # Local phase 2: apply the offsets.
        chunks = self.backend.map_local(
            _local_prefix_finish,
            [
                (darr.chunks[p], states[p][1], int(offsets[p]), exclusive)
                for p in range(len(darr.chunks))
            ],
        )
        depth = self.tree_depth()
        for _ in range(depth * PREFIX_SUM_ROUNDS_PER_LEVEL):
            self.charge_round(
                label,
                words=self.num_machines,
                max_load=max(darr.chunk_sizes, default=0),
            )
        return DistributedArray(self, chunks, label=label)

    def inverse_permutation(self, darr: DistributedArray, label: str = "inverse") -> DistributedArray:
        """Invert a distributed permutation in one round (Lemma 2.3).

        Local phase: every machine addresses each of its entries ``(i, π(i))``
        to the machine owning position ``π(i)`` of the output.  Exchange: one
        all-to-all round.  Local phase 2: each machine scatters the received
        pairs into its output chunk.
        """
        n = darr.total_size
        bounds = self.partition_bounds(n)
        chunk_starts = np.cumsum([0] + darr.chunk_sizes)

        # Local phase: bucket (value, source index) pairs by target machine
        # in one pass per chunk.
        buckets = self.backend.map_local(
            _local_bucket_pairs_by_destination,
            [
                (
                    darr.chunks[q],
                    np.arange(chunk_starts[q], chunk_starts[q + 1], dtype=np.int64),
                    np.searchsorted(bounds, darr.chunks[q], side="right") - 1,
                    self.num_machines,
                )
                for q in range(len(darr.chunks))
            ],
        )
        # Exchange + local scatter.
        received = [
            (
                int(bounds[p + 1] - bounds[p]),
                int(bounds[p]),
                np.concatenate([bucket[p][0] for bucket in buckets])
                if buckets
                else np.empty(0, dtype=np.int64),
                np.concatenate([bucket[p][1] for bucket in buckets])
                if buckets
                else np.empty(0, dtype=np.int64),
            )
            for p in range(self.num_machines)
        ]
        chunks = self.backend.map_local(_local_scatter_inverse, received)
        max_load = max((len(c) for c in chunks), default=0)
        self.charge_round(label, words=n, max_load=max_load)
        return DistributedArray(self, chunks, label=label)

    def rank_search(
        self,
        data: DistributedArray,
        queries: DistributedArray,
        label: str = "rank_search",
    ) -> DistributedArray:
        """Offline rank searching (Lemma 2.6): ``r_i = #{a in data : a < q_i}``.

        Sort data and queries together, prefix-sum the indicator of data
        elements, and route the answers back to the queries' home machines.

        Exchange: the per-machine data chunks are merged into the sorted
        order (the simulator performs the sample-sort merge as one driver
        sort of the concatenated chunks — ranks only need the sorted
        multiset, so a per-machine pre-sort would be redundant work).  Local
        phase: every machine answers its own queries against that order.
        """
        sorted_data = (
            np.sort(np.concatenate(data.chunks))
            if data.chunks
            else np.empty(0, dtype=np.int64)
        )
        # Local phase: each machine answers its own query chunk.
        chunks = self.backend.map_local(
            _local_rank_queries, [(sorted_data, chunk) for chunk in queries.chunks]
        )
        total = data.total_size + queries.total_size
        max_load = max(
            max(data.chunk_sizes, default=0) + max(queries.chunk_sizes, default=0),
            math.ceil(total / self.num_machines),
        )
        for _ in range(SORT_ROUNDS):
            self.charge_round(f"{label}:sort", words=total, max_load=max_load)
        for _ in range(PREFIX_SUM_ROUNDS_PER_LEVEL * self.tree_depth()):
            self.charge_round(f"{label}:prefix", words=self.num_machines, max_load=max_load)
        self.charge_round(f"{label}:return", words=queries.total_size, max_load=max_load)
        return DistributedArray(self, chunks, label=label)

    # ------------------------------------------------------------------- fork
    def fork(self, groups: int, label: str = "fork") -> List["MPCCluster"]:
        """Split the cluster into ``groups`` sub-clusters that run in parallel.

        Machines are divided as evenly as possible (at least one machine per
        group); the sub-clusters keep the same per-machine space budget and
        inherit the parent's execution backend.  Use :meth:`join` afterwards
        to absorb their statistics with max-round (parallel composition)
        semantics — or :meth:`run_forked`, which forks, executes the group
        tasks on the backend (concurrently for thread/process) and joins.
        """
        groups = max(1, int(groups))
        per_group = [
            max(1, self.num_machines // groups + (1 if g < self.num_machines % groups else 0))
            for g in range(groups)
        ]
        children = []
        for g in range(groups):
            child = MPCCluster(
                self.n,
                self.delta,
                num_machines=per_group[g],
                space_per_machine=self.space_per_machine,
                space_slack=self.space_slack,
                polylog_exponent=self.polylog_exponent,
                strict_space=self.strict_space,
                backend=self.backend,
            )
            children.append(child)
        return children

    def join(self, children: List["MPCCluster"], label: str = "parallel") -> None:
        """Absorb the statistics of sub-clusters created by :meth:`fork`."""
        self.stats.absorb_parallel([child.stats for child in children], label=label)

    def run_forked(self, tasks: Sequence[GroupTask], label: str = "fork") -> List[Any]:
        """Fork one sub-cluster per task, run the tasks, join the statistics.

        ``tasks`` is a sequence of ``(fn, args)`` or ``(fn, args, kwargs)``
        tuples; each is invoked as ``fn(child_cluster, *args, **kwargs)``.
        The execution backend runs the tasks (concurrently under the
        thread/process backends; for the process backend ``fn`` and its
        arguments must be picklable — unpicklable tasks fall back to
        in-process execution).  Results are returned in task order and the
        children's statistics are absorbed with parallel-composition
        semantics, so accounting is identical across backends.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        children = self.fork(len(tasks), label=label)
        results = self.backend.run_group_tasks(children, tasks)
        self.join(children, label=label)
        return results
