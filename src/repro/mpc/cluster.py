"""A deterministic MPC cluster simulator with faithful cost accounting.

The simulator models the MPC regime of the paper (Section 1.1): ``m = O(n^δ)``
machines with ``s = Õ(n^{1-δ})`` words of memory each.  Data lives in
:class:`DistributedArray` objects that are partitioned across machines; every
cluster operation

* charges the number of **rounds** the corresponding MPC primitive needs,
* charges the **words communicated** in each of those rounds,
* checks that no machine ever holds more than its **space budget** and raises
  :class:`~repro.mpc.errors.SpaceExceededError` otherwise,
* records the peak per-machine load for the scalability experiments.

Local per-machine computation is executed with ordinary vectorised NumPy for
speed — the simulator is *accounting-faithful* (rounds, communication, space
and data placement follow the real algorithms) rather than a multi-process
runtime, which is exactly what is needed to reproduce the paper's claims (the
paper's results are statements about rounds and space, not wall-clock time of
a particular cluster).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .accounting import ClusterStats
from .errors import MachineCountError, SpaceExceededError

__all__ = ["DistributedArray", "MPCCluster"]


# Round costs of the basic deterministic primitives (GSZ11); exposed as module
# constants so that tests and the analysis module can reason about them.
SORT_ROUNDS = 3
ROUTE_ROUNDS = 1
BROADCAST_ROUNDS_PER_LEVEL = 1
PREFIX_SUM_ROUNDS_PER_LEVEL = 2
RANK_SEARCH_ROUNDS = SORT_ROUNDS + PREFIX_SUM_ROUNDS_PER_LEVEL + ROUTE_ROUNDS


class DistributedArray:
    """A one-dimensional array partitioned across the machines of a cluster.

    ``chunks[p]`` is the slice held by machine ``p``.  The concatenation of
    the chunks (in machine order) is the logical array content.
    """

    def __init__(self, cluster: "MPCCluster", chunks: List[np.ndarray], label: str = "") -> None:
        self.cluster = cluster
        self.chunks = [np.asarray(chunk) for chunk in chunks]
        self.label = label
        cluster._check_chunks(self.chunks, context=label)

    # ------------------------------------------------------------------ views
    @property
    def total_size(self) -> int:
        return int(sum(len(chunk) for chunk in self.chunks))

    @property
    def chunk_sizes(self) -> List[int]:
        return [len(chunk) for chunk in self.chunks]

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def to_array(self) -> np.ndarray:
        """Materialise the logical array (driver-side view, free of charge)."""
        if not self.chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.chunks)

    def map_chunks(self, fn: Callable[[np.ndarray, int], np.ndarray], label: str = "map") -> "DistributedArray":
        """Apply a local (per-machine) function to every chunk; no round cost."""
        new_chunks = [fn(chunk, index) for index, chunk in enumerate(self.chunks)]
        self.cluster.stats.local_operations += self.total_size
        return DistributedArray(self.cluster, new_chunks, label=label)

    def __len__(self) -> int:
        return self.total_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedArray(label={self.label!r}, total={self.total_size}, "
            f"machines={self.num_chunks})"
        )


class MPCCluster:
    """A simulated MPC cluster (machines, space budget, accounting).

    Parameters
    ----------
    n:
        Problem size used to derive the default machine count and space.
    delta:
        The scalability parameter ``δ`` with ``0 < δ < 1``: ``m = Θ(n^δ)``
        machines and ``s = Õ(n^{1-δ})`` words each.
    num_machines, space_per_machine:
        Explicit overrides (used by :meth:`fork` and by tests).
    space_slack:
        Constant factor in front of ``n^{1-δ}``.
    polylog_exponent:
        Exponent of the ``log₂ n`` factor hidden in ``Õ`` (default 1).
    strict_space:
        When false, space violations are recorded (peak load) but do not
        raise; used by the space-overhead ablation benchmark.
    """

    def __init__(
        self,
        n: int,
        delta: float = 0.5,
        *,
        num_machines: Optional[int] = None,
        space_per_machine: Optional[int] = None,
        space_slack: float = 2.0,
        polylog_exponent: float = 1.0,
        strict_space: bool = True,
    ) -> None:
        if not (0.0 < delta < 1.0):
            raise ValueError("delta must lie strictly between 0 and 1")
        if n < 1:
            raise ValueError("n must be positive")
        self.n = int(n)
        self.delta = float(delta)
        self.space_slack = float(space_slack)
        self.polylog_exponent = float(polylog_exponent)
        self.strict_space = bool(strict_space)

        if num_machines is None:
            num_machines = max(1, math.ceil(n ** delta))
        if space_per_machine is None:
            polylog = max(1.0, math.log2(max(n, 2))) ** polylog_exponent
            # The MPC model assumes s = Ω(polylog n); the floor of 64 words
            # keeps degenerate toy instances (n of a few dozen) solvable on a
            # single machine without affecting any asymptotic accounting.
            space_per_machine = max(64, math.ceil(space_slack * (n ** (1.0 - delta)) * polylog))
        self.num_machines = int(num_machines)
        self.space_per_machine = int(space_per_machine)
        self.stats = ClusterStats(
            num_machines=self.num_machines, space_per_machine=self.space_per_machine
        )

    # ------------------------------------------------------------------ misc
    @property
    def total_space(self) -> int:
        """Aggregate memory of the cluster (``m * s``)."""
        return self.num_machines * self.space_per_machine

    def _check_load(self, load: int, machine: int = -1, context: str = "") -> None:
        self.stats.record_load(load)
        if load > self.space_per_machine and self.strict_space:
            raise SpaceExceededError(machine, load, self.space_per_machine, context)

    def _check_chunks(self, chunks: Sequence[np.ndarray], context: str = "") -> None:
        if len(chunks) > self.num_machines:
            raise MachineCountError(
                f"{len(chunks)} chunks but only {self.num_machines} machines ({context})"
            )
        for index, chunk in enumerate(chunks):
            self._check_load(len(chunk), machine=index, context=context)

    def charge_round(
        self, label: str, words: int, max_load: Optional[int] = None, phase: str = ""
    ) -> None:
        """Explicitly charge one communication round (for composite steps)."""
        if max_load is None:
            max_load = min(words, self.space_per_machine)
        self._check_load(max_load, context=label)
        self.stats.record_round(label, words, max_load, phase=phase)

    def charge_rounds(
        self, count: int, label: str, words_per_round: int, max_load: Optional[int] = None, phase: str = ""
    ) -> None:
        for _ in range(max(0, int(count))):
            self.charge_round(label, words_per_round, max_load, phase=phase)

    def tree_depth(self) -> int:
        """Depth of an ``s``-ary aggregation tree over the machines (O(1))."""
        if self.num_machines <= 1:
            return 1
        return max(1, math.ceil(math.log(self.num_machines, max(2, self.space_per_machine))))

    # ----------------------------------------------------------- distribution
    def partition_bounds(self, total: int, parts: Optional[int] = None) -> np.ndarray:
        parts = parts if parts is not None else self.num_machines
        return np.linspace(0, total, parts + 1).round().astype(np.int64)

    def distribute(self, array: Union[Sequence, np.ndarray], label: str = "input") -> DistributedArray:
        """Place an input array across the machines in contiguous blocks.

        Input placement is part of the MPC model's starting state and costs no
        rounds, but the per-machine block size must respect the space budget.
        """
        array = np.asarray(array)
        bounds = self.partition_bounds(len(array))
        chunks = [array[bounds[p] : bounds[p + 1]] for p in range(self.num_machines)]
        return DistributedArray(self, chunks, label=label)

    def distributed_from_chunks(self, chunks: List[np.ndarray], label: str = "") -> DistributedArray:
        return DistributedArray(self, chunks, label=label)

    # ------------------------------------------------------------- primitives
    def broadcast(self, array: Union[Sequence, np.ndarray], label: str = "broadcast") -> np.ndarray:
        """Broadcast a small array to every machine (tree of arity ``s``)."""
        array = np.asarray(array)
        self._check_load(len(array), context=label)
        depth = self.tree_depth()
        for _ in range(depth * BROADCAST_ROUNDS_PER_LEVEL):
            self.charge_round(label, words=len(array) * self.num_machines, max_load=len(array))
        return array

    def route(
        self,
        darr: DistributedArray,
        destinations: np.ndarray,
        label: str = "route",
        payload: Optional[np.ndarray] = None,
    ) -> DistributedArray:
        """All-to-all: send element ``i`` to machine ``destinations[i]``.

        One round; the received chunks are ordered by source machine (stable).
        Returns the distributed array of payloads after routing (payload
        defaults to the array content itself).
        """
        values = payload if payload is not None else darr.to_array()
        destinations = np.asarray(destinations, dtype=np.int64)
        if len(destinations) != len(values):
            raise ValueError("destinations must match the array length")
        if destinations.size and (
            destinations.min() < 0 or destinations.max() >= self.num_machines
        ):
            raise MachineCountError("destination machine index out of range")
        order = np.argsort(destinations, kind="stable")
        sorted_vals = values[order]
        sorted_dest = destinations[order]
        boundaries = np.searchsorted(sorted_dest, np.arange(self.num_machines + 1))
        chunks = [
            sorted_vals[boundaries[p] : boundaries[p + 1]] for p in range(self.num_machines)
        ]
        max_load = max((len(c) for c in chunks), default=0)
        self.charge_round(label, words=len(values), max_load=max_load)
        return DistributedArray(self, chunks, label=label)

    def sort(
        self,
        darr: DistributedArray,
        label: str = "sort",
        key: Optional[np.ndarray] = None,
    ) -> DistributedArray:
        """Deterministic O(1)-round sort (Lemma 2.5, [GSZ11]).

        Simulated as sample sort with regular sampling: one round to collect
        the per-machine regular samples, one to broadcast the splitters and
        one to route the data; the output is range-partitioned across the
        machines.
        """
        values = darr.to_array()
        keys = values if key is None else np.asarray(key)
        if len(keys) != len(values):
            raise ValueError("key must match the array length")
        order = np.argsort(keys, kind="stable")
        sorted_vals = values[order]
        total = len(sorted_vals)
        bounds = self.partition_bounds(total)
        chunks = [sorted_vals[bounds[p] : bounds[p + 1]] for p in range(self.num_machines)]
        max_load = max((len(c) for c in chunks), default=0)
        # Round 1: every machine sends m regular samples to the coordinator.
        sample_words = min(total, self.num_machines * self.num_machines)
        self.charge_round(f"{label}:sample", words=sample_words, max_load=min(sample_words, self.space_per_machine))
        # Round 2: the coordinator broadcasts the m-1 splitters.
        self.charge_round(f"{label}:splitters", words=self.num_machines * self.num_machines, max_load=self.num_machines)
        # Round 3: data is routed to its destination bucket.
        self.charge_round(f"{label}:route", words=total, max_load=max_load)
        return DistributedArray(self, chunks, label=label)

    def prefix_sum(
        self, darr: DistributedArray, label: str = "prefix_sum", exclusive: bool = True
    ) -> DistributedArray:
        """Deterministic O(1)-round prefix sums (Lemma 2.4, [GSZ11])."""
        values = darr.to_array().astype(np.int64)
        totals = np.cumsum(values)
        result = totals - values if exclusive else totals
        bounds = np.cumsum([0] + darr.chunk_sizes)
        chunks = [result[bounds[p] : bounds[p + 1]] for p in range(len(darr.chunks))]
        depth = self.tree_depth()
        for _ in range(depth * PREFIX_SUM_ROUNDS_PER_LEVEL):
            self.charge_round(
                label,
                words=self.num_machines,
                max_load=max(darr.chunk_sizes, default=0),
            )
        return DistributedArray(self, chunks, label=label)

    def inverse_permutation(self, darr: DistributedArray, label: str = "inverse") -> DistributedArray:
        """Invert a distributed permutation in one round (Lemma 2.3)."""
        perm = darr.to_array()
        n = len(perm)
        inverse = np.empty(n, dtype=np.int64)
        inverse[perm] = np.arange(n, dtype=np.int64)
        bounds = self.partition_bounds(n)
        chunks = [inverse[bounds[p] : bounds[p + 1]] for p in range(self.num_machines)]
        max_load = max((len(c) for c in chunks), default=0)
        self.charge_round(label, words=n, max_load=max_load)
        return DistributedArray(self, chunks, label=label)

    def rank_search(
        self,
        data: DistributedArray,
        queries: DistributedArray,
        label: str = "rank_search",
    ) -> DistributedArray:
        """Offline rank searching (Lemma 2.6): ``r_i = #{a in data : a < q_i}``.

        Sort data and queries together, prefix-sum the indicator of data
        elements, and route the answers back to the queries' home machines.
        """
        data_values = data.to_array()
        query_values = queries.to_array()
        answers = np.searchsorted(np.sort(data_values), query_values, side="left")
        bounds = np.cumsum([0] + queries.chunk_sizes)
        chunks = [answers[bounds[p] : bounds[p + 1]] for p in range(len(queries.chunks))]
        total = len(data_values) + len(query_values)
        max_load = max(
            max(data.chunk_sizes, default=0) + max(queries.chunk_sizes, default=0),
            math.ceil(total / self.num_machines),
        )
        for _ in range(SORT_ROUNDS):
            self.charge_round(f"{label}:sort", words=total, max_load=max_load)
        for _ in range(PREFIX_SUM_ROUNDS_PER_LEVEL * self.tree_depth()):
            self.charge_round(f"{label}:prefix", words=self.num_machines, max_load=max_load)
        self.charge_round(f"{label}:return", words=len(query_values), max_load=max_load)
        return DistributedArray(self, chunks, label=label)

    # ------------------------------------------------------------------- fork
    def fork(self, groups: int, label: str = "fork") -> List["MPCCluster"]:
        """Split the cluster into ``groups`` sub-clusters that run in parallel.

        Machines are divided as evenly as possible (at least one machine per
        group); the sub-clusters keep the same per-machine space budget.  Use
        :meth:`join` afterwards to absorb their statistics with max-round
        (parallel composition) semantics.
        """
        groups = max(1, int(groups))
        per_group = [
            max(1, self.num_machines // groups + (1 if g < self.num_machines % groups else 0))
            for g in range(groups)
        ]
        children = []
        for g in range(groups):
            child = MPCCluster(
                self.n,
                self.delta,
                num_machines=per_group[g],
                space_per_machine=self.space_per_machine,
                space_slack=self.space_slack,
                polylog_exponent=self.polylog_exponent,
                strict_space=self.strict_space,
            )
            children.append(child)
        return children

    def join(self, children: List["MPCCluster"], label: str = "parallel") -> None:
        """Absorb the statistics of sub-clusters created by :meth:`fork`."""
        self.stats.absorb_parallel([child.stats for child in children], label=label)
