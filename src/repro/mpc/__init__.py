"""The MPC model simulator: machines, rounds, space and communication."""

from .accounting import ClusterStats, RoundRecord
from .cluster import DistributedArray, MPCCluster
from .errors import MachineCountError, MPCError, ScalabilityError, SpaceExceededError
from .primitives import (
    broadcast,
    inverse_permutation,
    mpc_sort,
    offline_rank_search,
    prefix_sum,
)

__all__ = [
    "ClusterStats",
    "RoundRecord",
    "DistributedArray",
    "MPCCluster",
    "MPCError",
    "SpaceExceededError",
    "ScalabilityError",
    "MachineCountError",
    "broadcast",
    "inverse_permutation",
    "mpc_sort",
    "offline_rank_search",
    "prefix_sum",
]
