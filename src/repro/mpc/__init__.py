"""The MPC model simulator: machines, rounds, space and communication."""

from .accounting import ClusterStats, RoundRecord
from .cluster import DistributedArray, MPCCluster
from .engine import (
    DEFAULT_BACKEND,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    resolve_backend,
)
from .errors import MachineCountError, MPCError, ScalabilityError, SpaceExceededError
from .primitives import (
    broadcast,
    inverse_permutation,
    mpc_sort,
    offline_rank_search,
    prefix_sum,
)

__all__ = [
    "ClusterStats",
    "RoundRecord",
    "DistributedArray",
    "MPCCluster",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "backend_names",
    "resolve_backend",
    "MPCError",
    "SpaceExceededError",
    "ScalabilityError",
    "MachineCountError",
    "broadcast",
    "inverse_permutation",
    "mpc_sort",
    "offline_rank_search",
    "prefix_sum",
]
