"""Exceptions raised by the MPC simulator."""

from __future__ import annotations

__all__ = [
    "MPCError",
    "SpaceExceededError",
    "ScalabilityError",
    "MachineCountError",
]


class MPCError(RuntimeError):
    """Base class for all MPC simulation errors."""


class SpaceExceededError(MPCError):
    """A machine would need to hold more than its space budget ``s``."""

    def __init__(self, machine: int, required: int, budget: int, context: str = "") -> None:
        self.machine = machine
        self.required = required
        self.budget = budget
        self.context = context
        message = (
            f"machine {machine} needs {required} words but only has {budget}"
        )
        if context:
            message += f" ({context})"
        super().__init__(message)


class ScalabilityError(MPCError):
    """An algorithm was invoked outside its admissible range of ``delta``."""


class MachineCountError(MPCError):
    """A computation requires more machines than the cluster provides."""
