"""Round, space and communication accounting for the MPC simulator.

The primary complexity measure of the MPC model is the number of rounds; the
secondary measures are the maximum number of words a machine holds (its space
``s``) and the total communication per round.  Every primitive and every
algorithm in :mod:`repro.mpc_monge`, :mod:`repro.lis.mpc_lis` and
:mod:`repro.lcs.mpc_lcs` records what it does through the classes below, and
the benchmark harness reads the totals from :class:`ClusterStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RoundRecord", "ClusterStats"]


@dataclass
class RoundRecord:
    """One communication round of the simulated cluster."""

    index: int
    label: str
    words_communicated: int = 0
    max_machine_load: int = 0
    phase: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"round {self.index:3d} [{self.label}] "
            f"words={self.words_communicated} max_load={self.max_machine_load}"
        )


@dataclass
class ClusterStats:
    """Aggregated statistics of a simulated MPC execution."""

    num_machines: int
    space_per_machine: int
    rounds: List[RoundRecord] = field(default_factory=list)
    peak_machine_load: int = 0
    local_operations: int = 0

    # ----------------------------------------------------------------- update
    def record_round(
        self,
        label: str,
        words_communicated: int,
        max_machine_load: int,
        phase: str = "",
    ) -> RoundRecord:
        record = RoundRecord(
            index=len(self.rounds),
            label=label,
            words_communicated=int(words_communicated),
            max_machine_load=int(max_machine_load),
            phase=phase,
        )
        self.rounds.append(record)
        self.peak_machine_load = max(self.peak_machine_load, record.max_machine_load)
        return record

    def record_load(self, load: int) -> None:
        """Record a per-machine memory load that occurs outside a round."""
        self.peak_machine_load = max(self.peak_machine_load, int(load))

    def absorb_parallel(self, children: List["ClusterStats"], label: str = "parallel") -> None:
        """Join statistics of sub-clusters that ran in parallel.

        The parallel groups execute their rounds simultaneously, so the parent
        is charged the *maximum* round count of the children, while
        communication adds up and the peak load is the maximum.
        """
        if not children:
            return
        max_rounds = max(len(child.rounds) for child in children)
        for i in range(max_rounds):
            words = sum(
                child.rounds[i].words_communicated
                for child in children
                if i < len(child.rounds)
            )
            load = max(
                child.rounds[i].max_machine_load
                for child in children
                if i < len(child.rounds)
            )
            self.record_round(f"{label}[{i}]", words, load, phase=label)
        self.peak_machine_load = max(
            [self.peak_machine_load] + [child.peak_machine_load for child in children]
        )
        self.local_operations += sum(child.local_operations for child in children)

    # ---------------------------------------------------------------- queries
    def fingerprint(self) -> tuple:
        """A hashable digest of everything the accounting layer records.

        Two executions of the same algorithm must produce equal fingerprints
        regardless of the execution backend (serial/thread/process) — the
        test-suite compares these to enforce that backends feed the
        accounting layer identically, round by round.
        """
        return (
            self.num_machines,
            self.space_per_machine,
            self.peak_machine_load,
            self.local_operations,
            tuple(
                (record.label, record.words_communicated, record.max_machine_load, record.phase)
                for record in self.rounds
            ),
        )

    @property
    def num_rounds(self) -> int:
        """Total number of communication rounds."""
        return len(self.rounds)

    @property
    def total_communication(self) -> int:
        """Total number of words sent across all rounds."""
        return sum(record.words_communicated for record in self.rounds)

    @property
    def max_round_communication(self) -> int:
        return max((r.words_communicated for r in self.rounds), default=0)

    def rounds_by_phase(self) -> Dict[str, int]:
        """Number of rounds charged to each labelled phase."""
        phases: Dict[str, int] = {}
        for record in self.rounds:
            key = record.phase or record.label
            phases[key] = phases.get(key, 0) + 1
        return phases

    def summary(self) -> Dict[str, float]:
        """A flat dictionary used by the benchmark harness and reports."""
        return {
            "machines": self.num_machines,
            "space_per_machine": self.space_per_machine,
            "rounds": self.num_rounds,
            "total_communication": self.total_communication,
            "max_round_communication": self.max_round_communication,
            "peak_machine_load": self.peak_machine_load,
            "space_utilisation": (
                self.peak_machine_load / self.space_per_machine
                if self.space_per_machine
                else 0.0
            ),
        }

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [
            f"MPC execution: {self.num_machines} machines x {self.space_per_machine} words",
            f"  rounds              = {self.num_rounds}",
            f"  total communication = {self.total_communication}",
            f"  peak machine load   = {self.peak_machine_load}",
        ]
        return "\n".join(lines)
