"""Corollary 1.3.3: semi-local LCS via the seaweed framework.

``LCS(S, T[i:j])`` equals the strict LIS of the Hunt–Szymanski match sequence
restricted to the pairs whose ``T``-position lies in ``[i, j)``.  The match
pairs are ordered by ``(i, -j)``, so that restriction is precisely a
*value-interval* query on the semi-local LIS matrix of the match sequence —
the object built by :func:`repro.lis.semilocal.value_interval_matrix` (or its
MPC counterpart).  This module wraps that correspondence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.plan import MultiplyPlan
from ..lis.semilocal import SemiLocalLIS, validate_intervals, value_interval_matrix
from ..lis.mpc_lis import mpc_lis_matrix
from ..mpc.cluster import MPCCluster
from ..mpc_monge.constant_round import MongeMPCConfig
from .hunt_szymanski import match_pairs

__all__ = ["SemiLocalLCS", "semilocal_lcs", "mpc_semilocal_lcs"]


@dataclass
class SemiLocalLCS:
    """Answers ``LCS(S, T[i:j])`` for every subsegment of ``T``."""

    semilocal: SemiLocalLIS
    #: Sorted (by the match order) T-positions of the match pairs.
    match_positions: np.ndarray
    t_length: int

    def query_batch(self, i, j) -> np.ndarray:
        """Vectorised ``LCS(S, T[i:j])`` over batches of subsegment windows.

        Bounds are checked for the whole batch at once (invalid windows raise
        :class:`ValueError` rather than wrapping through negative indexing).
        Match pairs whose T-position lies in ``[i, j)`` occupy a contiguous
        rank range of the value universe (values are the positions themselves,
        ranked by the strict-LIS tie-break), so the batch reduces to one
        vectorised rank-interval evaluation over the dominance-count
        structure.
        """
        i, j = validate_intervals(i, j, self.t_length, what="subsegment")
        lo = np.searchsorted(self.match_positions, i, side="left")
        hi = np.searchsorted(self.match_positions, j, side="left")
        return self.semilocal.score(lo, hi)

    def query(self, i: int, j: int) -> int:
        """``LCS(S, T[i:j])``."""
        return int(self.query_batch(i, j)[0])

    def lcs_length(self) -> int:
        """``LCS(S, T)`` (the full-string query)."""
        return self.query(0, self.t_length)

    @property
    def nbytes(self) -> int:
        """Resident bytes (semi-local matrix + match positions; cache sizing)."""
        return int(self.semilocal.nbytes) + int(self.match_positions.nbytes)


def _build(matches: np.ndarray, t_length: int, semilocal: SemiLocalLIS) -> SemiLocalLCS:
    return SemiLocalLCS(
        semilocal=semilocal,
        match_positions=np.sort(matches),
        t_length=t_length,
    )


def semilocal_lcs(
    s: Sequence, t: Sequence, *, plan: Optional[MultiplyPlan] = None
) -> SemiLocalLCS:
    """Sequential semi-local LCS of ``S`` versus all subsegments of ``T``.

    ``plan`` tunes the multiply engine of the underlying value-interval
    build (mechanics only; the matrix is bit-identical across plans).
    """
    pairs = match_pairs(s, t)
    matches = pairs[:, 1] if len(pairs) else np.empty(0, dtype=np.int64)
    semilocal = value_interval_matrix(matches, strict=True, plan=plan)
    return _build(matches, len(t), semilocal)


def mpc_semilocal_lcs(
    cluster: MPCCluster,
    s: Sequence,
    t: Sequence,
    config: Optional[MongeMPCConfig] = None,
) -> SemiLocalLCS:
    """Semi-local LCS in O(log n) MPC rounds (Corollary 1.3.3)."""
    pairs = match_pairs(s, t)
    matches = pairs[:, 1] if len(pairs) else np.empty(0, dtype=np.int64)
    result = mpc_lis_matrix(cluster, matches, config, strict=True, kind="value")
    return _build(matches, len(t), result.semilocal)
