"""Corollary 1.3.1: exact LCS in O(log n) MPC rounds (Õ(n²) total space).

The reduction is Hunt–Szymanski: every machine generates the matching pairs of
its block of ``S`` against the whole of ``T`` (this is where the corollary
needs ``m = n^{1+δ}`` machines / quadratic total space), the pairs are sorted
by ``(i, -j)`` in O(1) rounds, and the strict LIS of the ``j``-sequence is
computed with the O(log n)-round algorithm of Theorem 1.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..lis.mpc_lis import mpc_lis_length
from ..mpc.cluster import MPCCluster, SORT_ROUNDS
from ..mpc.errors import SpaceExceededError
from ..mpc_monge.constant_round import MongeMPCConfig
from .hunt_szymanski import match_sequence

__all__ = ["MPCLCSResult", "mpc_lcs_length", "lcs_cluster_for"]


@dataclass
class MPCLCSResult:
    """Result of the MPC LCS computation."""

    length: int
    num_matches: int
    match_cluster: MPCCluster


def lcs_cluster_for(
    s_length: int,
    t_length: int,
    num_matches: int,
    delta: float = 0.5,
    backend: Optional[str] = None,
) -> MPCCluster:
    """A cluster sized for the Hunt–Szymanski instance (Õ(n²) total space).

    Corollary 1.3.1 assumes ``n^{1+δ}`` machines of ``Õ(n^{1-δ})`` space; this
    helper provisions a cluster whose total space fits all matching pairs
    while keeping the per-machine space at ``Õ(n^{1-δ})`` for ``n = |S|+|T|``.
    ``backend`` selects the execution backend (wall-clock only).
    """
    n = max(1, s_length + t_length)
    space = max(32, math.ceil(2 * (n ** (1.0 - delta)) * max(1.0, math.log2(max(n, 2)))))
    # The merge phase holds, per machine group, the expanded colored union of a
    # pair of blocks plus the sort/tree working state (a small constant factor
    # over the raw match count).
    machines = max(1, math.ceil(6 * max(num_matches, n) / space) + 1)
    return MPCCluster(n, delta, num_machines=machines, space_per_machine=space, backend=backend)


def mpc_lcs_length(
    cluster: MPCCluster,
    s: Sequence,
    t: Sequence,
    config: Optional[MongeMPCConfig] = None,
) -> MPCLCSResult:
    """Exact LCS length in O(log n) rounds, given enough total space.

    ``cluster`` must have total space Ω(#matches); use :func:`lcs_cluster_for`
    to provision one.  Raises :class:`~repro.mpc.errors.SpaceExceededError`
    when the matching pairs do not fit.
    """
    matches = match_sequence(s, t)
    num_matches = len(matches)
    if num_matches and num_matches * 2 > cluster.total_space and cluster.strict_space:
        raise SpaceExceededError(
            -1, num_matches * 2, cluster.total_space,
            "Hunt-Szymanski matches exceed the cluster's total space "
            "(Corollary 1.3.1 needs ~n^{1+delta} machines)",
        )
    # Generating and sorting the pairs: each machine scans its block of S
    # against the (broadcast) alphabet index of T — O(1) rounds.  The load is
    # the true per-machine pair count (2 words per pair), *not* clamped to the
    # space budget: under strict_space=False ablations a clamp would silently
    # under-report the peak load, and under strict accounting a genuine
    # overflow must raise rather than hide.
    per_machine = math.ceil(max(num_matches, 1) / cluster.num_machines) + 1
    cluster.charge_rounds(
        SORT_ROUNDS,
        "lcs:generate+sort",
        words_per_round=2 * max(num_matches, 1),
        max_load=per_machine * 2,
        phase="lcs",
    )
    if num_matches == 0:
        return MPCLCSResult(length=0, num_matches=0, match_cluster=cluster)
    length = mpc_lis_length(cluster, matches, config, strict=True)
    return MPCLCSResult(length=length, num_matches=num_matches, match_cluster=cluster)
