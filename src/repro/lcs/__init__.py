"""Longest common subsequence via the Hunt–Szymanski reduction (Cor. 1.3.1/1.3.3)."""

from .dp_baseline import lcs_length_dp, lcs_of_all_suffixes, lcs_table
from .hunt_szymanski import count_matches, lcs_length_via_lis, match_pairs, match_sequence
from .mpc_lcs import MPCLCSResult, lcs_cluster_for, mpc_lcs_length
from .semilocal import SemiLocalLCS, mpc_semilocal_lcs, semilocal_lcs

__all__ = [
    "lcs_length_dp",
    "lcs_of_all_suffixes",
    "lcs_table",
    "count_matches",
    "lcs_length_via_lis",
    "match_pairs",
    "match_sequence",
    "MPCLCSResult",
    "lcs_cluster_for",
    "mpc_lcs_length",
    "SemiLocalLCS",
    "mpc_semilocal_lcs",
    "semilocal_lcs",
]
