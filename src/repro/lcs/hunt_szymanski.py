"""The Hunt–Szymanski reduction from LCS to LIS (paper §1.2 / Cor. 1.3.1).

For strings ``S`` and ``T``, list every matching pair ``(i, j)`` with
``S[i] == T[j]`` in lexicographic order of ``(i, -j)``; a strictly increasing
subsequence (in ``j``) of that pair list corresponds exactly to a common
subsequence of ``S`` and ``T``, so ``LCS(S, T)`` equals the strict LIS of the
``j``-sequence.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..lis.patience import lis_length

__all__ = ["match_pairs", "match_sequence", "lcs_length_via_lis", "count_matches"]


def match_pairs(s: Sequence, t: Sequence) -> np.ndarray:
    """All pairs ``(i, j)`` with ``s[i] == t[j]``, ordered by ``(i, -j)``.

    Returns an array of shape ``(num_matches, 2)``.  The number of matches can
    be as large as ``|s| * |t|`` (this is the Õ(n²) total space the paper's
    Corollary 1.3.1 requires).
    """
    positions: Dict[object, List[int]] = defaultdict(list)
    for j, symbol in enumerate(t):
        positions[symbol].append(j)
    rows: List[Tuple[int, int]] = []
    for i, symbol in enumerate(s):
        js = positions.get(symbol)
        if js:
            rows.extend((i, j) for j in reversed(js))
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def match_sequence(s: Sequence, t: Sequence) -> np.ndarray:
    """The ``j``-sequence of :func:`match_pairs` (the LIS input)."""
    pairs = match_pairs(s, t)
    return pairs[:, 1] if len(pairs) else np.empty(0, dtype=np.int64)


def count_matches(s: Sequence, t: Sequence) -> int:
    """Number of matching pairs (the size of the LIS instance)."""
    from collections import Counter

    counts_s = Counter(s)
    counts_t = Counter(t)
    return sum(counts_s[symbol] * counts_t.get(symbol, 0) for symbol in counts_s)


def lcs_length_via_lis(s: Sequence, t: Sequence) -> int:
    """Sequential LCS through the Hunt–Szymanski reduction."""
    seq = match_sequence(s, t)
    return lis_length(seq, strict=True)
