"""Classic quadratic dynamic-programming LCS (testing oracle and baseline)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["lcs_length_dp", "lcs_table", "lcs_of_all_suffixes"]


def lcs_table(s: Sequence, t: Sequence) -> np.ndarray:
    """The full ``(|s|+1) x (|t|+1)`` LCS DP table."""
    m, n = len(s), len(t)
    table = np.zeros((m + 1, n + 1), dtype=np.int64)
    for i in range(1, m + 1):
        row = table[i]
        prev = table[i - 1]
        for j in range(1, n + 1):
            if s[i - 1] == t[j - 1]:
                row[j] = prev[j - 1] + 1
            else:
                row[j] = max(prev[j], row[j - 1])
    return table


def lcs_length_dp(s: Sequence, t: Sequence) -> int:
    """``O(|s| |t|)`` textbook LCS length."""
    return int(lcs_table(s, t)[-1, -1])


def lcs_of_all_suffixes(s: Sequence, t: Sequence) -> np.ndarray:
    """``out[i, j] = LCS(s, t[i:j])`` for all ``0 <= i <= j <= |t|`` (oracle).

    Cubic time; used only to validate the semi-local LCS of Corollary 1.3.3 on
    small instances.
    """
    n = len(t)
    out = np.zeros((n + 1, n + 1), dtype=np.int64)
    for i in range(n + 1):
        for j in range(i, n + 1):
            out[i, j] = lcs_length_dp(s, t[i:j])
    return out
