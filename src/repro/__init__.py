"""repro — reproduction of "An Optimal MPC Algorithm for Subunit-Monge Matrix
Multiplication, with Applications to LIS" (Koo, SPAA 2024).

Public API highlights
---------------------
* :mod:`repro.core` — permutation / sub-permutation matrices and sequential
  (sub)unit-Monge multiplication (``repro.core.multiply``): the
  allocation-lean iterative engine, the retained recursive reference oracle
  and the :class:`~repro.core.plan.MultiplyPlan` tuning knobs.
* :mod:`repro.mpc` — a deterministic MPC simulator with round, space and
  communication accounting, plus the standard O(1)-round primitives.
* :mod:`repro.mpc_monge` — the paper's O(1)-round multiplication (Theorem 1.1 /
  1.2) and the O(log n)-round warm-up algorithm.
* :mod:`repro.lis` / :mod:`repro.lcs` — exact LIS in O(log n) rounds
  (Theorem 1.3), LCS via Hunt–Szymanski (Corollary 1.3.1), semi-local variants
  (Corollaries 1.3.2/1.3.3) and sequential baselines.
* :mod:`repro.baselines` — prior-work comparators used to reproduce Table 1.
* :mod:`repro.workloads` / :mod:`repro.analysis` — input generators and
  round-complexity predictions / report formatting for the benchmark harness.
* :mod:`repro.service` — the batched query-serving subsystem (fingerprinted
  semi-local indexes, a byte-budgeted LRU cache with disk spill, and the
  ``QueryService`` behind ``python -m repro serve``).
* :mod:`repro.streaming` — the sliding-window subsystem: a seaweed segment
  tree (:class:`~repro.streaming.aggregator.SeaweedAggregator`) with
  incremental recomposition, ``StreamingLIS`` / ``StreamingLCS`` session
  objects and the ``python -m repro stream`` driver.
* :mod:`repro.perf` — core hot-path micro-benchmarks, the cpu-normalised
  perf regression gate behind ``python -m repro perf``
  (``results/perf_core.json``) and the append-only perf trend log
  (``results/perf_trend.jsonl``).
* :mod:`repro.obs` — the stdlib-only observability layer: process-safe
  metrics with Prometheus text exposition (``GET /metrics``), span-based
  request tracing (``GET /debug/traces``) and the artifact/trend/capacity
  report renderer behind ``python -m repro report``.
* :mod:`repro.experiments` — the declarative experiment registry, runner and
  JSON artifacts behind the ``python -m repro`` CLI.
"""

__version__ = "1.9.0"

from . import (
    analysis,
    baselines,
    core,
    experiments,
    lcs,
    lis,
    mpc,
    mpc_monge,
    obs,
    service,
    streaming,
    workloads,
)

__all__ = [
    "analysis",
    "baselines",
    "core",
    "experiments",
    "lcs",
    "lis",
    "mpc",
    "mpc_monge",
    "obs",
    "service",
    "streaming",
    "workloads",
    "__version__",
]
