"""E12 — Streaming: amortised sliding-window recomposition vs rebuild-per-tick.

Thin pytest wrapper over the registered ``streaming_throughput`` experiment
spec.  The spec's per-point assertions compare every tick's answers against a
rebuild-from-scratch DP oracle and the aggregator's root product against a
from-scratch seaweed build; the cross-point checks assert answer identity
across the serial/thread/process execution backends and an amortised
per-tick speedup of at least 10x over rebuild-per-tick at n >= 4096.  The
timed kernel is one steady-state slide tick (push + exact LIS answer).
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "streaming_throughput"


def test_streaming_throughput(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit(
        f"Streaming throughput (n={result.fixed['n']}, slide={result.fixed['slide']}, "
        f"ticks={result.fixed['ticks']})",
        result.to_table(),
    )

    benchmark(spec.timer())
