"""E1 — Reproduction of Table 1: massively parallel LIS algorithms.

For each algorithm row of Table 1 the bench measures, in the MPC simulator:
the number of rounds, the scalability regime (whether the algorithm admits the
requested δ), and whether the answer is exact — i.e. the three columns of the
paper's table — on the same workload.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.baselines import chs23_lis_length, kt10_lis_length
from repro.lis import lis_length, mpc_lis_approx, mpc_lis_length
from repro.mpc import MPCCluster, ScalabilityError
from repro.workloads import random_permutation_sequence

from conftest import emit

N = 4096
DELTAS = (0.25, 0.5)


def _run_row(name, fn, seq, delta, exact_reference):
    try:
        cluster = MPCCluster(len(seq), delta=delta)
        value = fn(cluster, seq)
        rounds = cluster.stats.num_rounds
        scalable = "yes"
        exact = "exact" if value == exact_reference else f"approx ({value}/{exact_reference})"
    except ScalabilityError:
        rounds, scalable, exact = "-", "no (delta too large)", "-"
    return [name, delta, rounds, scalable, exact]


@pytest.mark.parametrize("delta", DELTAS)
def test_table1(benchmark, delta):
    seq = random_permutation_sequence(N, seed=1)
    exact = lis_length(seq)

    rows = [
        _run_row("KT10 [KT10a]", lambda c, s: kt10_lis_length(c, s), seq, delta, exact),
        _run_row(
            "IMS17-style (1+eps)", lambda c, s: mpc_lis_approx(c, s, epsilon=0.1).length,
            seq, delta, exact,
        ),
        _run_row("CHS23", lambda c, s: chs23_lis_length(c, s), seq, delta, exact),
        _run_row("This paper", lambda c, s: mpc_lis_length(c, s), seq, delta, exact),
    ]
    emit(
        f"Table 1 reproduction (n={N}, delta={delta})",
        format_table(["algorithm", "delta", "rounds", "fully scalable here", "answer"], rows),
    )

    benchmark(lambda: mpc_lis_length(MPCCluster(N, delta=delta), seq))
