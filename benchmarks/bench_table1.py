"""E1 — Reproduction of Table 1: massively parallel LIS algorithms.

Thin pytest wrapper over the registered ``table1`` experiment spec
(:mod:`repro.experiments.specs`): for each algorithm row of Table 1 the spec
measures rounds, the scalability regime and exactness in the MPC simulator.
``python -m repro run table1`` executes the identical code path.
"""

import pytest

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "table1"


@pytest.mark.parametrize("delta", (0.25, 0.5))
def test_table1(benchmark, delta):
    spec = get_spec(SPEC)
    result = run_experiment(spec, overrides={"delta": [delta]})
    emit(f"Table 1 reproduction (n={result.fixed['n']}, delta={delta})", result.to_table())

    benchmark(spec.timer(delta=delta))
