"""E5 — Sequential substrate: wall-clock of the seaweed framework.

Not a table/figure of the paper (which has no sequential experiments) but a
sanity check that the Tiskin-framework substrate scales near-linearly; the
patience-sorting baseline is faster for the plain LIS length (it computes far
less: no semi-local structure), which is the expected trade-off.
"""

import pytest

from repro.core import multiply_permutations, random_permutation
from repro.lis import lis_length, lis_length_seaweed, value_interval_matrix
from repro.workloads import random_permutation_sequence


@pytest.mark.parametrize("n", [2048, 8192])
def test_sequential_multiply(benchmark, rng, n):
    pa, pb = random_permutation(n, rng), random_permutation(n, rng)
    result = benchmark(lambda: multiply_permutations(pa, pb))
    assert result.size == n


@pytest.mark.parametrize("n", [1024, 4096])
def test_sequential_seaweed_lis(benchmark, n):
    seq = random_permutation_sequence(n, seed=n)
    expected = lis_length(seq)
    result = benchmark(lambda: lis_length_seaweed(seq))
    assert result == expected


@pytest.mark.parametrize("n", [4096, 65536])
def test_patience_baseline(benchmark, n):
    seq = random_permutation_sequence(n, seed=n)
    benchmark(lambda: lis_length(seq))


def test_semilocal_matrix_construction(benchmark):
    seq = random_permutation_sequence(2048, seed=7)
    result = benchmark(lambda: value_interval_matrix(seq))
    assert result.lis_length() == lis_length(seq)
