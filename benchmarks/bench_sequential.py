"""E5 — Sequential substrate: wall-clock of the seaweed framework.

Not a table/figure of the paper (which has no sequential experiments) but a
sanity check that the Tiskin-framework substrate scales near-linearly; the
patience-sorting baseline is faster for the plain LIS length (it computes far
less: no semi-local structure), which is the expected trade-off.

The correctness suite is the registered ``sequential`` experiment spec; the
pytest-benchmark timings below reuse the spec's case kernels
(:func:`repro.experiments.specs.sequential_case_callable`) so both share one
code path.
"""

import pytest

from repro.experiments import get_spec, run_experiment
from repro.experiments.specs import sequential_case_callable
from repro.lis import lis_length
from repro.workloads import make_sequence

from conftest import emit

SPEC = "sequential"


def test_sequential_suite():
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit("Sequential substrate wall-clock", result.to_table())


@pytest.mark.parametrize("n", [2048, 8192])
def test_sequential_multiply(benchmark, n):
    result = benchmark(sequential_case_callable("multiply", n))
    assert result.size == n


@pytest.mark.parametrize("n", [1024, 4096])
def test_sequential_seaweed_lis(benchmark, n):
    expected = lis_length(make_sequence("random", n, seed=n))
    result = benchmark(sequential_case_callable("seaweed_lis", n))
    assert result == expected


@pytest.mark.parametrize("n", [4096, 65536])
def test_patience_baseline(benchmark, n):
    benchmark(sequential_case_callable("patience", n))


def test_semilocal_matrix_construction(benchmark):
    result = benchmark(sequential_case_callable("semilocal_matrix", 2048))
    assert result.lis_length() == lis_length(make_sequence("random", 2048, seed=7))
