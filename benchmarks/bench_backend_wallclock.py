"""E10 — Execution-engine comparison: serial vs thread vs process backends.

Thin pytest wrapper over the registered ``backend_wallclock`` experiment
spec.  The spec's cross-point checks assert the engine invariant (backends
change wall-clock only: rounds, communication, peak load and the product
itself are bit-identical); the table records the measured wall-clock of each
backend plus the host's CPU count, since the speedup of the parallel
backends scales with available cores.
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "backend_wallclock"


def test_backend_wallclock(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit(
        f"Execution backends (n={result.fixed['n']}, delta={result.fixed['delta']})",
        result.to_table(),
    )

    benchmark(spec.timer())
