"""E11 — Serving throughput: cached batch querying vs rebuild-per-query.

Thin pytest wrapper over the registered ``service_throughput`` experiment
spec.  The spec's cross-point checks assert the serving claims: answers are
bit-identical across the serial/thread/process execution backends, the cache
counters are exercised, and cached batch serving beats the naive
rebuild-per-query pattern by at least 10x at n >= 4096.  The timed kernel is
a *warm* ``QueryService.submit`` (the steady-state serving cost).
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "service_throughput"


def test_service_throughput(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit(
        f"Serving throughput (n={result.fixed['n']}, mode={result.fixed['mode']})",
        result.to_table(),
    )

    benchmark(spec.timer())
