"""E2 — Theorem 1.1: rounds of the O(1)-round multiplication vs the warm-up.

Reproduces the central claim: the constant-round algorithm's round count stays
(essentially) flat as n grows, while the fan-in-2 warm-up grows like log n and
the CHS23-style combine grows polylogarithmically.
"""

import pytest

from repro.analysis import format_series, format_table
from repro.baselines import chs23_multiply
from repro.core import random_permutation
from repro.mpc import MPCCluster
from repro.mpc_monge import mpc_multiply, mpc_multiply_warmup

from conftest import emit

SIZES = (1024, 4096, 16384, 65536)
DELTA = 0.5


def test_multiply_round_growth(benchmark, rng):
    rows = []
    series = {"this paper": [], "warm-up (fanin 2)": [], "CHS23-style": []}
    for n in SIZES:
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        main = MPCCluster(n, delta=DELTA)
        mpc_multiply(main, pa, pb)
        warm = MPCCluster(n, delta=DELTA)
        mpc_multiply_warmup(warm, pa, pb)
        chs = MPCCluster(n, delta=DELTA)
        chs23_multiply(chs, pa, pb)
        rows.append(
            [n, main.stats.num_rounds, warm.stats.num_rounds, chs.stats.num_rounds,
             main.stats.peak_machine_load, main.space_per_machine]
        )
        series["this paper"].append(main.stats.num_rounds)
        series["warm-up (fanin 2)"].append(warm.stats.num_rounds)
        series["CHS23-style"].append(chs.stats.num_rounds)

    emit(
        "Multiplication rounds vs n (delta=0.5)",
        format_table(
            ["n", "this paper", "warm-up", "CHS23-style", "peak load", "space budget"], rows
        )
        + "\n"
        + "\n".join(format_series(k, SIZES, v) for k, v in series.items()),
    )
    # Shape check: the constant-round algorithm grows far slower than the warm-up.
    growth_main = series["this paper"][-1] / series["this paper"][0]
    growth_warm = series["warm-up (fanin 2)"][-1] / series["warm-up (fanin 2)"][0]
    assert growth_main < growth_warm

    n = SIZES[1]
    pa, pb = random_permutation(n, rng), random_permutation(n, rng)
    benchmark(lambda: mpc_multiply(MPCCluster(n, delta=DELTA), pa, pb))
