"""E2 — Theorem 1.1: rounds of the O(1)-round multiplication vs the warm-up.

Thin pytest wrapper over the registered ``multiply_rounds`` experiment spec:
the constant-round algorithm's round count stays (essentially) flat as n
grows, while the fan-in-2 warm-up grows like log n and the CHS23-style
combine grows polylogarithmically.  The growth-shape assertion lives in the
spec's cross-point checks, so the CLI enforces it too.
"""

from repro.analysis import format_series
from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "multiply_rounds"


def test_multiply_round_growth(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)

    series_lines = []
    for algorithm in result.grid["algorithm"]:
        rows = sorted(
            (p.row() for p in result.points if p.params["algorithm"] == algorithm),
            key=lambda row: row["n"],
        )
        series_lines.append(
            format_series(rows[0]["label"], [row["n"] for row in rows], [row["rounds"] for row in rows])
        )
    emit(
        f"Multiplication rounds vs n (delta={result.fixed['delta']})",
        result.to_table() + "\n" + "\n".join(series_lines),
    )

    benchmark(spec.timer())
