"""E13 — HTTP front-end latency under open/closed-loop load.

Thin pytest wrapper over the registered ``service_latency`` experiment
spec.  The spec's cross-point checks assert the serving claims: every HTTP
answer is bit-identical to a serial ``QueryService`` oracle, no request is
silently dropped (ok + rejected == issued), latency percentiles are
non-degenerate and ordered, and answers agree across arrival patterns.  The
timed kernel is one warm ``POST /v2/batch`` round-trip.
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "service_latency"


def test_service_latency(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit(
        f"Service latency (n={result.fixed['n']}, "
        f"max_inflight={result.fixed['max_inflight']})",
        result.to_table(),
    )

    benchmark(spec.timer())
