"""E7 — Communication volume per round of the MPC algorithms.

Thin pytest wrapper over the registered ``communication`` experiment spec.
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "communication"


def test_communication_volume(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit("Total communication (words) — multiply and LIS", result.to_table())

    benchmark(spec.timer())
