"""E7 — Communication volume per round of the MPC algorithms."""

import pytest

from repro.analysis import format_table
from repro.core import random_permutation
from repro.lis import mpc_lis_length
from repro.mpc import MPCCluster
from repro.mpc_monge import mpc_multiply
from repro.workloads import random_permutation_sequence

from conftest import emit

SIZES = (1024, 4096, 16384)
DELTA = 0.5


def test_communication_volume(benchmark, rng):
    rows = []
    for n in SIZES:
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        mult = MPCCluster(n, delta=DELTA)
        mpc_multiply(mult, pa, pb)
        seq = random_permutation_sequence(n, seed=n)
        lis = MPCCluster(n, delta=DELTA)
        mpc_lis_length(lis, seq)
        rows.append(
            [
                n,
                mult.stats.total_communication,
                mult.stats.max_round_communication,
                f"{mult.stats.total_communication / n:.1f}",
                lis.stats.total_communication,
                f"{lis.stats.total_communication / n:.1f}",
            ]
        )
    emit(
        "Total communication (words) — multiply and LIS",
        format_table(
            ["n", "multiply total", "multiply max/round", "multiply words/elem",
             "LIS total", "LIS words/elem"],
            rows,
        ),
    )
    n = SIZES[0]
    pa, pb = random_permutation(n, rng), random_permutation(n, rng)
    benchmark(lambda: mpc_multiply(MPCCluster(n, delta=DELTA), pa, pb))
