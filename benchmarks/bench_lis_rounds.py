"""E4 — Theorem 1.3: LIS rounds vs n for this paper and the baselines."""

import pytest

from repro.analysis import format_series, format_table
from repro.baselines import chs23_lis_length
from repro.lis import lis_length, mpc_lis_length
from repro.mpc import MPCCluster
from repro.workloads import planted_lis_sequence, random_permutation_sequence

from conftest import emit

SIZES = (512, 2048, 8192)
DELTA = 0.5


@pytest.mark.parametrize("workload", ["random", "planted"])
def test_lis_round_growth(benchmark, workload):
    rows = []
    ours_series, chs_series = [], []
    for n in SIZES:
        if workload == "random":
            seq = random_permutation_sequence(n, seed=n)
        else:
            seq = planted_lis_sequence(n, n // 3, seed=n)
        expected = lis_length(seq)
        ours = MPCCluster(n, delta=DELTA)
        assert mpc_lis_length(ours, seq) == expected
        chs = MPCCluster(n, delta=DELTA)
        assert chs23_lis_length(chs, seq) == expected
        rows.append([n, expected, ours.stats.num_rounds, chs.stats.num_rounds])
        ours_series.append(ours.stats.num_rounds)
        chs_series.append(chs.stats.num_rounds)
    emit(
        f"Exact LIS rounds vs n ({workload} workload, delta={DELTA})",
        format_table(["n", "LIS", "this paper (rounds)", "CHS23-style (rounds)"], rows)
        + "\n"
        + format_series("this paper", SIZES, ours_series)
        + "\n"
        + format_series("CHS23-style", SIZES, chs_series),
    )
    assert all(o < c for o, c in zip(ours_series, chs_series))

    n = SIZES[0]
    seq = random_permutation_sequence(n, seed=n)
    benchmark(lambda: mpc_lis_length(MPCCluster(n, delta=DELTA), seq))
