"""E4 — Theorem 1.3: LIS rounds vs n for this paper and the baselines.

Thin pytest wrapper over the registered ``lis_rounds`` experiment spec; the
exactness and rounds-vs-CHS23 assertions live in the spec, so the CLI
enforces them too.
"""

import pytest

from repro.analysis import format_series
from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "lis_rounds"


@pytest.mark.parametrize("workload", ["random", "planted"])
def test_lis_round_growth(benchmark, workload):
    spec = get_spec(SPEC)
    result = run_experiment(spec, overrides={"workload": [workload]})

    sizes, ours = result.series("n", "rounds")
    _, chs = result.series("n", "rounds_chs23")
    emit(
        f"Exact LIS rounds vs n ({workload} workload, delta={result.fixed['delta']})",
        result.to_table()
        + "\n"
        + format_series("this paper", sizes, ours)
        + "\n"
        + format_series("CHS23-style", sizes, chs),
    )

    benchmark(spec.timer())
