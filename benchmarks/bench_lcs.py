"""E6 — Corollary 1.3.1: LCS rounds and total space via Hunt–Szymanski."""

import pytest

from repro.analysis import format_table
from repro.lcs import count_matches, lcs_cluster_for, lcs_length_dp, mpc_lcs_length
from repro.workloads import correlated_string_pair, random_string_pair

from conftest import emit

CASES = [
    ("random, alphabet 16", 256, 16, None),
    ("random, alphabet 4", 256, 4, None),
    ("correlated (10% mutation)", 256, 16, 0.1),
]


def test_lcs_rounds_and_space(benchmark):
    rows = []
    for name, n, alphabet, mutation in CASES:
        if mutation is None:
            s, t = random_string_pair(n, alphabet, seed=n + alphabet)
        else:
            s, t = correlated_string_pair(n, alphabet, mutation, seed=n)
        matches = count_matches(s, t)
        cluster = lcs_cluster_for(len(s), len(t), matches)
        result = mpc_lcs_length(cluster, s, t)
        assert result.length == lcs_length_dp(s, t)
        rows.append(
            [
                name,
                matches,
                cluster.num_machines,
                cluster.space_per_machine,
                cluster.stats.num_rounds,
                result.length,
            ]
        )
    emit(
        "LCS via Hunt-Szymanski (Corollary 1.3.1)",
        format_table(
            ["workload", "matches", "machines", "space s", "rounds", "LCS"], rows
        ),
    )

    s, t = random_string_pair(256, 16, seed=3)
    cluster = lcs_cluster_for(256, 256, count_matches(s, t))
    benchmark(lambda: mpc_lcs_length(lcs_cluster_for(256, 256, count_matches(s, t)), s, t))
