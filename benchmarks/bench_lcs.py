"""E6 — Corollary 1.3.1: LCS rounds and total space via Hunt–Szymanski.

Thin pytest wrapper over the registered ``lcs`` experiment spec; the
exactness assertion (MPC LCS == DP LCS) lives in the spec's point function.
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "lcs"


def test_lcs_rounds_and_space(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit("LCS via Hunt-Szymanski (Corollary 1.3.1)", result.to_table())

    benchmark(spec.timer())
