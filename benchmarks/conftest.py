"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series it reproduces (rounds, space,
communication) in addition to the pytest-benchmark timing, because the paper's
claims are about round complexity rather than wall-clock time.
"""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


def emit(title, text):
    print(f"\n=== {title} ===\n{text}\n")
