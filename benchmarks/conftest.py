"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series it reproduces (rounds, space,
communication) in addition to the pytest-benchmark timing, because the paper's
claims are about round complexity rather than wall-clock time.  The actual
numbers come from the experiment specs registered in
:mod:`repro.experiments.specs`; the files here are thin pytest wrappers.
"""

import sys

from repro.analysis import format_block


def emit(title, text):
    """Print one titled report block, flushed immediately.

    The explicit flush keeps blocks intact (not lost or interleaved with the
    progress dots) under pytest ``-q``, output capturing and parallel runs.
    """
    sys.stdout.write(format_block(title, text))
    sys.stdout.flush()
