"""E14 — Sharded serving tier: 1→N worker scaling of mixed batches.

Thin pytest wrapper over the registered ``shard_scaling`` experiment spec.
The spec's cross-point checks assert the sharding claims: answers are
bit-identical to a serial ``QueryService`` oracle at every shard count (one
checksum across the whole grid), every shard serves at least one request
(the consistent-hash ring genuinely fans the mixed batch out), no worker
restarts occur on the healthy path, and single-core hosts record an honest
pool-overhead note instead of a fictitious speedup.  The timed kernel is
one warm routed ``submit`` of the mixed batch through an in-process
two-shard router.
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "shard_scaling"


def test_shard_scaling(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit(
        f"Shard scaling (n={result.fixed['n']}, rounds={result.fixed['rounds']})",
        result.to_table(),
    )

    benchmark(spec.timer())
