"""E3 — Fully-scalable claim: rounds and per-machine space across δ.

The paper's algorithm must work for every 0 < δ < 1 (fully scalable), with the
per-machine peak load staying within s = Õ(n^{1-δ}).
"""

import pytest

from repro.analysis import format_table
from repro.core import random_permutation
from repro.mpc import MPCCluster
from repro.mpc_monge import mpc_multiply

from conftest import emit

N = 8192
DELTAS = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


def test_scalability_in_delta(benchmark, rng):
    pa, pb = random_permutation(N, rng), random_permutation(N, rng)
    rows = []
    for delta in DELTAS:
        cluster = MPCCluster(N, delta=delta)
        mpc_multiply(cluster, pa, pb)
        summary = cluster.stats.summary()
        rows.append(
            [
                delta,
                cluster.num_machines,
                cluster.space_per_machine,
                summary["rounds"],
                summary["peak_machine_load"],
                f"{summary['space_utilisation']:.2f}",
            ]
        )
        assert summary["peak_machine_load"] <= cluster.space_per_machine
    emit(
        f"Scalability sweep (n={N})",
        format_table(
            ["delta", "machines", "space s", "rounds", "peak load", "utilisation"], rows
        ),
    )
    benchmark(lambda: mpc_multiply(MPCCluster(N, delta=0.5), pa, pb))
