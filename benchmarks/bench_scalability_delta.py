"""E3 — Fully-scalable claim: rounds and per-machine space across δ.

Thin pytest wrapper over the registered ``scalability_delta`` experiment
spec: the paper's algorithm must work for every 0 < δ < 1 (fully scalable),
with the per-machine peak load staying within s = Õ(n^{1-δ}).  The space
budget assertion lives in the spec's point function and checks.
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "scalability_delta"


def test_scalability_in_delta(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit(f"Scalability sweep (n={result.fixed['n']})", result.to_table())

    benchmark(spec.timer())
