"""E8 — Ablation: fan-in H of the multiway combine (the paper's core trick).

Thin pytest wrapper over the registered ``fanin_ablation`` experiment spec.
Sweeps the number of subproblems merged per level: larger H means a shallower
recursion (fewer rounds) at the cost of more per-level search state — exactly
the trade-off the paper navigates with H = n^{(1-δ)/10}.  The product
correctness and rounds-monotonicity assertions live in the spec.
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "fanin_ablation"


def test_fanin_ablation(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit(
        f"Fan-in ablation (n={result.fixed['n']}, delta={result.fixed['delta']})",
        result.to_table(),
    )

    benchmark(spec.timer())
