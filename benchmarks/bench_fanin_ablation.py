"""E8 — Ablation: fan-in H of the multiway combine (the paper's core trick).

Sweeps the number of subproblems merged per level.  Larger H means a shallower
recursion (fewer rounds) at the cost of more per-level search state — exactly
the trade-off the paper navigates with H = n^{(1-δ)/10}.
"""

import pytest

from repro.analysis import format_table
from repro.core import multiply_permutations, random_permutation
from repro.mpc import MPCCluster
from repro.mpc_monge import MongeMPCConfig, mpc_multiply

from conftest import emit

N = 8192
DELTA = 0.5
FANINS = (2, 4, 8, 16)


def test_fanin_ablation(benchmark, rng):
    pa, pb = random_permutation(N, rng), random_permutation(N, rng)
    expected = multiply_permutations(pa, pb)
    rows = []
    rounds_by_fanin = {}
    for fanin in FANINS:
        cluster = MPCCluster(N, delta=DELTA)
        config = MongeMPCConfig(fanin=fanin, tree_arity=fanin)
        assert mpc_multiply(cluster, pa, pb, config) == expected
        rounds_by_fanin[fanin] = cluster.stats.num_rounds
        rows.append(
            [
                fanin,
                cluster.stats.num_rounds,
                cluster.stats.peak_machine_load,
                cluster.stats.total_communication,
            ]
        )
    emit(
        f"Fan-in ablation (n={N}, delta={DELTA})",
        format_table(["fan-in H", "rounds", "peak load", "total communication"], rows),
    )
    # Larger fan-in must not use more rounds than the binary warm-up.
    assert rounds_by_fanin[FANINS[-1]] <= rounds_by_fanin[2]

    config = MongeMPCConfig(fanin=8, tree_arity=8)
    benchmark(lambda: mpc_multiply(MPCCluster(N, delta=DELTA), pa, pb, config))
