"""E9 — Ablation: grid spacing G and the subgrid-instance space overhead.

Thin pytest wrapper over the registered ``space_overhead`` experiment spec.
The paper's §3.3 refinement brings the total size of the subgrid instances
down to O(n); this implementation keeps the simpler O(G + H)-per-instance
packaging (see DESIGN.md §2), and the spec measures the actual per-instance
and total instance sizes so the overhead is visible and bounded.
"""

from repro.experiments import get_spec, run_experiment

from conftest import emit

SPEC = "space_overhead"


def test_grid_size_ablation(benchmark):
    spec = get_spec(SPEC)
    result = run_experiment(spec)
    emit(
        f"Grid-size / space-overhead ablation (n={result.fixed['n']}, H={result.fixed['num_blocks']})",
        result.to_table(),
    )

    benchmark(spec.timer())
