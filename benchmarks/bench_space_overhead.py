"""E9 — Ablation: grid spacing G and the subgrid-instance space overhead.

The paper's §3.3 refinement brings the total size of the subgrid instances
down to O(n); this implementation keeps the simpler O(G + H)-per-instance
packaging (see DESIGN.md §2).  The bench measures the actual per-instance and
total instance sizes so the overhead is visible and bounded.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import multiply_permutations, random_permutation
from repro.core.dense import multiply_dense
from repro.core.seaweed import expand_block_results, split_into_blocks
from repro.mpc import MPCCluster
from repro.mpc_monge import MongeMPCConfig
from repro.mpc_monge.constant_round import mpc_combine

from conftest import emit

N = 4096
DELTA = 0.5
GRID_SIZES = (16, 32, 64, 128)


def test_grid_size_ablation(benchmark, rng):
    pa, pb = random_permutation(N, rng), random_permutation(N, rng)
    expected = multiply_permutations(pa, pb)
    split = split_into_blocks(pa, pb, 4)
    results = [
        multiply_permutations(a, b) for a, b in zip(split.a_blocks, split.b_blocks)
    ]
    rows_, cols_, colors_ = expand_block_results(results, split)

    table = []
    for grid in GRID_SIZES:
        cluster = MPCCluster(N, delta=DELTA)
        merged, report = mpc_combine(
            cluster, rows_, cols_, colors_, 4, N, MongeMPCConfig(grid_size=grid)
        )
        assert merged.as_permutation() == expected
        table.append(
            [
                grid,
                report.num_grid_lines,
                report.num_active_subgrids,
                report.max_instance_words,
                cluster.space_per_machine,
                cluster.stats.num_rounds,
            ]
        )
    emit(
        f"Grid-size / space-overhead ablation (n={N}, H=4)",
        format_table(
            ["grid G", "grid lines", "active subgrids", "max instance words",
             "space budget s", "combine rounds"],
            table,
        ),
    )

    benchmark(
        lambda: mpc_combine(
            MPCCluster(N, delta=DELTA), rows_, cols_, colors_, 4, N,
            MongeMPCConfig(grid_size=64),
        )
    )
