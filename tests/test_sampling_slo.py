"""Tests for adaptive trace sampling, latency exemplars and the SLO engine.

The contracts this file pins:

* head sampling is a pure function of the trace ID — the same ID gets the
  same verdict in this process, in a fresh subprocess, and at any higher
  sampling rate (the kept-sets nest);
* tail-based retention keeps every latency outlier even when head sampling
  would drop 99% of traffic, and the retained set is explainable: each
  retained trace is either head-sampled or provably slow;
* exemplar annotations on ``/metrics`` parse, survive snapshot merges
  (latest timestamp wins), never confuse the Prometheus text parser, and
  resolve to retained traces via ``/debug/traces/<id>``;
* the SLO engine's multi-window burn rates follow the SRE-workbook math
  under an injected clock, and ``/debug/slo`` reconciles exactly with the
  totals ``/stats`` reports (same snapshot, same numbers);
* span events ride inside spans, export to Chrome instant events, and the
  chrome export download carries a stable Content-Disposition filename.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    merge_snapshots,
    parse_exemplars,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.sampling import TraceSampler, head_decision
from repro.obs.slo import (
    FAST_BURN_THRESHOLD,
    SLOEngine,
    SLObjective,
    default_objectives,
    objectives_from_config,
)
from repro.obs.trace import Tracer, span, span_event
from repro.server import get_json, post_json, start_server

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


# ------------------------------------------------------------- head sampling
class TestHeadSampling:
    def test_deterministic_and_rate_bounded(self):
        ids = [f"{i:016x}" for i in range(4000)]
        kept = [tid for tid in ids if head_decision(tid, 0.25)]
        # Deterministic: a second pass agrees exactly.
        assert kept == [tid for tid in ids if head_decision(tid, 0.25)]
        # Statistically near the configured rate (SHA-256 is uniform).
        assert 0.18 < len(kept) / len(ids) < 0.32

    def test_kept_sets_nest_as_rate_rises(self):
        ids = [f"trace-{i}" for i in range(2000)]
        kept_1 = {tid for tid in ids if head_decision(tid, 0.01)}
        kept_5 = {tid for tid in ids if head_decision(tid, 0.05)}
        kept_50 = {tid for tid in ids if head_decision(tid, 0.50)}
        assert kept_1 <= kept_5 <= kept_50

    def test_edge_rates(self):
        assert head_decision("anything", 1.0) is True
        assert head_decision("anything", 0.0) is False

    def test_same_decision_in_fresh_process(self):
        # Cross-process stability is the whole point of hashing the ID
        # instead of using Python's salted hash(): a fleet of workers must
        # agree on which traces are head-sampled.
        ids = [f"{i:016x}" for i in range(64)]
        local = [head_decision(tid, 0.3) for tid in ids]
        code = (
            "import json, sys\n"
            "from repro.obs.sampling import head_decision\n"
            "ids = json.load(sys.stdin)\n"
            "print(json.dumps([head_decision(t, 0.3) for t in ids]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            input=json.dumps(ids),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert json.loads(proc.stdout) == local

    def test_sampler_validates_configuration(self):
        with pytest.raises(ValueError):
            TraceSampler(1.5)
        with pytest.raises(ValueError):
            TraceSampler(0.5, tail_quantile=1.0)
        with pytest.raises(ValueError):
            TraceSampler(0.5, tail_min_seconds=-1.0)
        with pytest.raises(ValueError):
            TraceSampler(0.5, warmup=0)


# ------------------------------------------------------------ tail retention
class TestTailRetention:
    def test_floor_keeps_slow_traces_without_warmup(self):
        sampler = TraceSampler(0.0, tail_min_seconds=0.05)
        keep, decision = sampler.decide("/v2/batch", 0.2, head_sampled=False)
        assert keep and decision == "tail"
        keep, decision = sampler.decide("/v2/batch", 0.001, head_sampled=False)
        assert not keep and decision is None

    def test_adaptive_threshold_tracks_the_route_quantile(self):
        sampler = TraceSampler(0.0, tail_quantile=0.5, warmup=8)
        assert sampler.tail_threshold("/v2/batch") is None  # cold: no opinion
        for _ in range(20):
            sampler.decide("/v2/batch", 0.001, head_sampled=False)
        threshold = sampler.tail_threshold("/v2/batch")
        # The median of a pile of 1ms observations sits near 1ms on the
        # log-bucket grid, certainly nowhere near seconds.
        assert threshold is not None and 0.0005 < threshold < 0.01
        keep, decision = sampler.decide("/v2/batch", 1.0, head_sampled=False)
        assert keep and decision == "tail"

    def test_threshold_is_per_route(self):
        sampler = TraceSampler(0.0, tail_quantile=0.5, warmup=4)
        for _ in range(8):
            sampler.decide("/fast", 0.001, head_sampled=False)
        assert sampler.tail_threshold("/fast") is not None
        assert sampler.tail_threshold("/slow") is None

    def test_head_sampled_traces_keep_regardless_of_latency(self):
        sampler = TraceSampler(1.0)
        keep, decision = sampler.decide("/v2/batch", 0.0, head_sampled=True)
        assert keep and decision == "head"

    def test_tracer_retention_follows_sampler(self):
        tracer = Tracer(capacity=8, sampler=TraceSampler(0.0, tail_min_seconds=0.05))
        with tracer.start_trace("edge", route="/v2/batch") as fast:
            pass
        with tracer.start_trace("edge", route="/v2/batch") as slow:
            time.sleep(0.08)
        assert not fast.retained and fast.retain_decision is None
        assert slow.retained and slow.retain_decision == "tail"
        assert tracer.get(fast.trace_id) is None
        assert tracer.get(slow.trace_id) is slow
        stats = tracer.stats()
        assert stats["sampled_total"] == 1 and stats["dropped_total"] == 1
        assert stats["sampler"]["tail_min_seconds"] == 0.05


# ----------------------------------------------------------------- exemplars
class TestExemplars:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        hist = registry.histogram("req_seconds", "latency", ("route",))
        hist.observe(0.003, exemplar="deadbeefcafef00d", route="/v2/batch")
        hist.observe(0.003, route="/v2/batch")  # no exemplar: keeps the old one
        text = render_prometheus(registry.snapshot())
        records = parse_exemplars(text)
        assert len(records) == 1
        record = records[0]
        assert record["trace_id"] == "deadbeefcafef00d"
        assert record["value"] == 0.003
        assert ("route", "/v2/batch") in record["labels"]

    def test_exemplar_annotations_do_not_confuse_the_parser(self):
        registry = MetricsRegistry()
        hist = registry.histogram("req_seconds", "latency", ("route",))
        hist.observe(0.003, exemplar="deadbeefcafef00d", route="/v2/batch")
        plain = registry.snapshot()
        parsed = parse_prometheus_text(render_prometheus(plain))
        # Bucket counts parse to the same numbers with or without the
        # trailing `# {...}` annotation.
        assert any(
            value == 1.0
            for labels, value in parsed["req_seconds_bucket"].items()
            if ("route", "/v2/batch") in labels
        )
        assert parsed["req_seconds_count"][(("route", "/v2/batch"),)] == 1.0

    def test_merge_keeps_latest_exemplar_per_bucket(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("req_seconds", "latency").observe(0.003, exemplar="old-trace")
        snap_a = a.snapshot()
        time.sleep(0.01)
        b.histogram("req_seconds", "latency").observe(0.003, exemplar="new-trace")
        snap_b = b.snapshot()
        for merged in (merge_snapshots(snap_a, snap_b), merge_snapshots(snap_b, snap_a)):
            (labels, value), = merged["req_seconds"]["samples"]
            exemplars = value["exemplars"]
            assert len(exemplars) == 1
            (record,) = exemplars.values()
            assert record["trace_id"] == "new-trace"
            # Counts still sum: merging never loses observations.
            assert value["count"] == 2


# ---------------------------------------------------------------- SLO engine
def _avail_snapshot(ok, errors, route="/v2/batch"):
    return {
        "repro_http_requests_total": {
            "type": "counter",
            "samples": [
                ((("route", route), ("status", "200")), float(ok)),
                ((("route", route), ("status", "500")), float(errors)),
            ],
        }
    }


def _latency_snapshot(fast, slow, route="/v2/batch"):
    bounds = [0.1, 0.25, 1.0]
    counts = [float(fast), 0.0, float(slow)]
    return {
        "repro_http_request_seconds": {
            "type": "histogram",
            "bounds": bounds,
            "samples": [
                (
                    (("route", route),),
                    {
                        "counts": counts + [0.0],
                        "count": float(fast + slow),
                        "sum": 0.0,
                    },
                )
            ],
        }
    }


class TestSLOEngine:
    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="weird", target=0.99)
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="availability", target=1.0)
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="latency", target=0.99)  # no threshold

    def test_objectives_from_config_accepts_threshold_ms(self):
        objectives = objectives_from_config(
            [
                {"name": "avail", "kind": "availability", "target": 0.999},
                {
                    "name": "lat",
                    "kind": "latency",
                    "target": 0.99,
                    "route": "/v2/batch",
                    "threshold_ms": 250,
                },
            ]
        )
        assert objectives[1].threshold_seconds == 0.25
        with pytest.raises(ValueError):
            objectives_from_config([])

    def test_burn_rate_math_over_windows(self):
        clock = {"now": 1_000_000.0}
        objective = SLObjective(
            name="avail", kind="availability", target=0.999, route="/v2/batch"
        )
        engine = SLOEngine([objective], clock=lambda: clock["now"])
        engine.record(_avail_snapshot(ok=1000, errors=0))
        clock["now"] += 400.0  # past the 5m window, inside the others
        evaluation = engine.evaluate(_avail_snapshot(ok=1050, errors=50))
        (result,) = evaluation["objectives"]
        windows = result["windows"]
        # 5m window: delta vs the 400s-old point = 100 requests, 50 errors.
        assert windows["5m"]["total"] == 100.0
        assert windows["5m"]["error_ratio"] == pytest.approx(0.5)
        assert windows["5m"]["burn_rate"] == pytest.approx(0.5 / 0.001)
        # 1h window: server younger than the window — everything since
        # start, with honest coverage.
        assert windows["1h"]["total"] == 1100.0
        assert windows["1h"]["coverage_seconds"] == pytest.approx(400.0)
        assert windows["1h"]["burn_rate"] == pytest.approx((50 / 1100) / 0.001)
        assert result["alerts"]["fast_page"] is True
        assert result["alerts"]["severity"] == "page"
        assert windows["5m"]["burn_rate"] >= FAST_BURN_THRESHOLD

    def test_healthy_service_never_alerts(self):
        clock = {"now": 500_000.0}
        engine = SLOEngine(clock=lambda: clock["now"])
        for _ in range(5):
            clock["now"] += 600.0
            snapshot = {}
            snapshot.update(_avail_snapshot(ok=clock["now"], errors=0))
            snapshot.update(_latency_snapshot(fast=1000, slow=0))
            evaluation = engine.evaluate(snapshot)
        for result in evaluation["objectives"]:
            assert result["alerts"]["severity"] == "ok"
            for window in result["windows"].values():
                assert window["burn_rate"] == pytest.approx(0.0)

    def test_latency_objective_counts_buckets_under_threshold(self):
        objective = SLObjective(
            name="lat",
            kind="latency",
            target=0.99,
            route="/v2/batch",
            threshold_seconds=0.25,
        )
        engine = SLOEngine([objective], clock=lambda: 123.0)
        summary = engine.totals_summary(_latency_snapshot(fast=90, slow=10))
        assert summary["lat"]["good"] == 90.0
        assert summary["lat"]["total"] == 100.0

    def test_slow_ticket_requires_both_slow_windows(self):
        clock = {"now": 2_000_000.0}
        objective = SLObjective(
            name="avail", kind="availability", target=0.99, route="/v2/batch"
        )
        engine = SLOEngine([objective], clock=lambda: clock["now"])
        # Long healthy history: ~28 hours of clean traffic, then a point
        # just outside the 5m window, then a fresh burst of errors.
        engine.record(_avail_snapshot(ok=10_000, errors=0))
        clock["now"] += 100_000.0
        engine.record(_avail_snapshot(ok=20_000, errors=0))
        clock["now"] += 310.0
        evaluation = engine.evaluate(_avail_snapshot(ok=20_000, errors=100))
        (result,) = evaluation["objectives"]
        # The 5m window sees 100 requests, all errors — it burns hard.
        assert result["windows"]["5m"]["burn_rate"] > 1.0
        # The slow windows amortise the burst over the long clean history.
        assert result["windows"]["6h"]["burn_rate"] < 1.0
        assert result["windows"]["3d"]["burn_rate"] < 1.0
        assert result["alerts"]["slow_ticket"] is False

    def test_default_objectives_cover_batch_route(self):
        objectives = default_objectives()
        assert {o.kind for o in objectives} == {"availability", "latency"}
        assert all(o.route == "/v2/batch" for o in objectives)


# --------------------------------------------------------------- span events
class TestSpanEvents:
    def test_events_attach_to_the_active_span(self):
        tracer = Tracer(capacity=4)
        with tracer.start_trace("edge", route="/t") as trace:
            with span("work"):
                span_event("cache_spill_save", fingerprint="abc", nbytes=128)
        spans = {sp["name"]: sp for sp in trace.to_jsonable()["spans"]}
        (event,) = spans["work"]["events"]
        assert event["name"] == "cache_spill_save"
        assert event["attrs"] == {"fingerprint": "abc", "nbytes": 128}
        assert event["at_s"] >= 0.0

    def test_event_outside_any_trace_is_a_noop(self):
        span_event("orphan", detail="nothing listens")  # must not raise

    def test_chrome_export_emits_instant_events(self):
        tracer = Tracer(capacity=4)
        with tracer.start_trace("edge", route="/t") as trace:
            with span("work"):
                span_event("shard_restart", shard=1)
        chrome = trace.to_chrome()
        instants = [ev for ev in chrome["traceEvents"] if ev.get("ph") == "i"]
        assert [ev["name"] for ev in instants] == ["shard_restart"]
        json.dumps(chrome)  # stays JSON-serializable

    def test_summary_counts_events(self):
        tracer = Tracer(capacity=4)
        with tracer.start_trace("edge", route="/t") as trace:
            span_event("one")
            span_event("two")
        assert trace.summary()["event_count"] == 2


# ----------------------------------------------- end-to-end tail retention
class _SlowService:
    """Delegating wrapper that sleeps when a marker request passes through."""

    def __init__(self, inner, delay):
        self._inner = inner
        self._delay = delay

    def submit(self, requests):
        if any(str(r.request_id).startswith("slow") for r in requests):
            time.sleep(self._delay)
        return self._inner.submit(requests)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _doc(request_id, seed, n=96):
    return {
        "requests": [
            {
                "op": "lis_length",
                "id": request_id,
                "workload": "random",
                "n": n,
                "seed": seed,
            }
        ]
    }


@pytest.fixture(scope="module")
def sampled_server():
    from repro.service import QueryService

    sampler = TraceSampler(0.01, tail_min_seconds=0.25)
    handle = start_server(
        _SlowService(QueryService(), delay=0.4),
        coalesce_seconds=0.0,
        sampler=sampler,
        trace_capacity=64,
    )
    yield handle
    handle.stop()


class TestEndToEndTailRetention:
    def test_outliers_survive_one_percent_head_sampling(self, sampled_server):
        url = sampled_server.url
        slow_ids, fast_results = [], []
        for i in range(30):
            status, _, body = post_json(url + "/v2/batch", _doc(f"fast-{i}", seed=7))
            assert status == 200
            fast_results.append(body["trace_id"])
            if i % 10 == 5:
                status, _, body = post_json(
                    url + "/v2/batch", _doc(f"slow-{i}", seed=7)
                )
                assert status == 200
                slow_ids.append(body["trace_id"])
        assert len(slow_ids) == 3

        # The acceptance bar: every latency outlier is retrievable even
        # though head sampling keeps ~1% of traffic.
        for trace_id in slow_ids:
            status, _, doc = get_json(url + f"/debug/traces/{trace_id}")
            assert status == 200, f"tail trace {trace_id} was dropped"
            assert doc["trace_id"] == trace_id

        # Every retained trace is explainable: head-sampled by the same
        # deterministic function a client can evaluate, or provably slow.
        status, _, listing = get_json(url + "/debug/traces")
        assert status == 200
        assert listing["traces"], "ring cannot be empty after a load run"
        for entry in listing["traces"]:
            if entry["retain_decision"] == "head":
                assert head_decision(entry["trace_id"], 0.01)
            else:
                assert entry["retain_decision"] == "tail"
                assert entry["duration_s"] >= 0.25
        assert "tail_thresholds" in listing
        assert "/v2/batch" in listing["tail_thresholds"]

        # Sampler counters surface in /stats and reconcile with the ring.
        _, _, stats = get_json(url + "/stats")
        tracing = stats["tracing"]
        assert tracing["sampled_total"] >= len(slow_ids)
        assert tracing["dropped_total"] >= 1
        assert tracing["sampler"]["head_rate"] == 0.01

    def test_metrics_exemplars_resolve_to_retained_traces(self, sampled_server):
        import urllib.request

        url = sampled_server.url
        status, _, body = post_json(url + "/v2/batch", _doc("slow-exemplar", seed=7))
        assert status == 200
        slow_trace = body["trace_id"]

        with urllib.request.urlopen(url + "/metrics", timeout=30) as response:
            text = response.read().decode("utf-8")
        records = [
            record
            for record in parse_exemplars(text)
            if record["series"] == "repro_http_request_seconds_bucket"
            and ("route", "/v2/batch") in record["labels"]
        ]
        assert records, "a retained trace must leave an exemplar on /metrics"
        trace_ids = {record["trace_id"] for record in records}
        assert slow_trace in trace_ids
        status, _, doc = get_json(url + f"/debug/traces/{slow_trace}")
        assert status == 200 and doc["trace_id"] == slow_trace

        # The JSON surface agrees with the text surface.
        status, _, debug = get_json(url + "/debug/exemplars")
        assert status == 200
        assert debug["schema"] == "repro.server.exemplars"
        by_id = {record["trace_id"]: record for record in debug["exemplars"]}
        assert by_id[slow_trace]["retained"] is True

    def test_debug_slo_reconciles_with_stats(self, sampled_server):
        url = sampled_server.url
        status, _, slo = get_json(url + "/debug/slo")
        assert status == 200
        assert slo["schema"] == "repro.server.slo"
        status, _, stats = get_json(url + "/stats")
        assert status == 200
        # GET /stats and /debug/slo only move non-batch counters, so the
        # /v2/batch-scoped objective totals must agree exactly.
        by_name = {entry["name"]: entry for entry in slo["objectives"]}
        for name, summary in stats["slo"].items():
            assert by_name[name]["totals"]["good"] == summary["good"]
            assert by_name[name]["totals"]["total"] == summary["total"]
        availability = by_name["batch-availability-99.9"]
        assert availability["totals"]["total"] > 0
        # The HTTP counter registry is process-global, so /v2/batch traffic
        # from other test modules (e.g. deliberate 504s) may be in the
        # totals: assert burn-rate internal consistency, not a clean slate.
        budget = 1.0 - availability["target"]
        for window in availability["windows"].values():
            expected = (
                (1.0 - window["good"] / window["total"]) / budget
                if window["total"] > 0
                else 0.0
            )
            assert window["burn_rate"] == pytest.approx(expected)


# ------------------------------------------------- chrome export download
class TestChromeDownloadHeader:
    @pytest.mark.parametrize("transport", ("asyncio", "thread"))
    def test_content_disposition_names_the_trace(self, transport):
        import urllib.request

        handle = start_server(transport=transport, coalesce_seconds=0.0)
        try:
            status, _, body = post_json(
                handle.url + "/v2/batch", _doc("dl", seed=3)
            )
            assert status == 200
            trace_id = body["trace_id"]
            with urllib.request.urlopen(
                handle.url + f"/debug/traces/{trace_id}?format=chrome", timeout=30
            ) as response:
                headers = dict(response.headers)
                payload = json.load(response)
            assert (
                headers["Content-Disposition"]
                == f'attachment; filename="repro-trace-{trace_id}.chrome.json"'
            )
            assert headers["Content-Type"] == "application/json"
            assert any(ev["name"] == "edge" for ev in payload["traceEvents"])
        finally:
            handle.stop()
