"""Unit tests for repro.core.permutation."""

import numpy as np
import pytest

from repro.core import (
    EMPTY,
    Permutation,
    SubPermutation,
    identity_permutation,
    random_permutation,
    random_subpermutation,
)


class TestSubPermutation:
    def test_basic_properties(self):
        sp = SubPermutation([2, EMPTY, 0], n_cols=4)
        assert sp.shape == (3, 4)
        assert sp.num_nonzeros == 2
        assert list(sp.nonzero_rows()) == [0, 2]
        assert list(sp.nonzero_cols()) == [0, 2]
        assert not sp.is_full_permutation()

    def test_points_roundtrip(self):
        sp = SubPermutation.from_points([0, 3], [1, 2], n_rows=5, n_cols=4)
        rows, cols = sp.points()
        assert list(rows) == [0, 3]
        assert list(cols) == [1, 2]

    def test_to_dense(self):
        sp = SubPermutation([1, EMPTY], n_cols=2)
        dense = sp.to_dense()
        assert dense.tolist() == [[0, 1], [0, 0]]

    def test_validation_duplicate_column(self):
        with pytest.raises(ValueError):
            SubPermutation([1, 1], n_cols=3)

    def test_validation_out_of_range(self):
        with pytest.raises(ValueError):
            SubPermutation([5], n_cols=3)

    def test_transpose(self):
        sp = SubPermutation([2, EMPTY, 0], n_cols=3)
        tr = sp.transpose()
        assert tr.shape == (3, 3)
        assert np.array_equal(tr.to_dense(), sp.to_dense().T)

    def test_distribution_matrix_convention(self):
        # Single point at (row=1, col=2) in a 3x3 matrix.
        sp = SubPermutation.from_points([1], [2], n_rows=3, n_cols=3)
        dist = sp.distribution_matrix()
        # dist(i, j) = #points with row >= i and col < j.
        for i in range(4):
            for j in range(4):
                expected = 1 if (i <= 1 and j >= 3) else 0
                assert dist[i, j] == expected
                assert sp.distribution_at(i, j) == expected

    def test_empty(self):
        sp = SubPermutation.empty(4, 6)
        assert sp.num_nonzeros == 0
        assert sp.shape == (4, 6)

    def test_equality_and_hash(self):
        a = SubPermutation([1, 0], n_cols=2)
        b = SubPermutation([1, 0], n_cols=2)
        c = SubPermutation([0, 1], n_cols=2)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_as_permutation_raises_when_not_full(self):
        with pytest.raises(ValueError):
            SubPermutation([EMPTY, 0], n_cols=2).as_permutation()


class TestPermutation:
    def test_identity(self):
        p = identity_permutation(5)
        assert p.is_full_permutation()
        assert list(p.row_to_col) == list(range(5))

    def test_inverse(self):
        p = Permutation([2, 0, 1])
        inv = p.inverse()
        assert list(inv.row_to_col) == [1, 2, 0]
        assert p.compose(inv) == identity_permutation(3)

    def test_inverse_equals_transpose(self, rng):
        p = random_permutation(17, rng)
        assert p.inverse() == p.transpose()

    def test_validation(self):
        with pytest.raises(ValueError):
            Permutation([0, 0, 1])
        with pytest.raises(ValueError):
            Permutation([0, 3, 1])

    def test_random_permutation_is_valid(self, rng):
        for _ in range(5):
            p = random_permutation(int(rng.integers(1, 50)), rng)
            p.validate()
            assert p.is_full_permutation()

    def test_random_subpermutation_counts(self, rng):
        sp = random_subpermutation(10, 8, 5, rng)
        assert sp.num_nonzeros == 5
        sp.validate()

    def test_random_subpermutation_too_many_points(self, rng):
        with pytest.raises(ValueError):
            random_subpermutation(4, 3, 5, rng)

    def test_distribution_counts_total(self, rng):
        p = random_permutation(12, rng)
        dist = p.distribution_matrix()
        assert dist[0, 12] == 12
        assert dist[12, :].sum() == 0
        assert dist[:, 0].sum() == 0
