"""Tests for the pluggable execution engine (`repro.mpc.engine`).

The engine contract: backends change *wall-clock* behaviour only.  Results,
data placement and every quantity the accounting layer records (rounds, words,
per-machine loads) must be bit-identical across serial, thread and process
execution — these tests enforce that for the raw primitives, for the
fork/join parallel-composition semantics and for every registered experiment
spec.
"""

import pickle

import numpy as np
import pytest

from repro.experiments import get_spec, run_experiment, spec_names
from repro.mpc import (
    ClusterStats,
    MPCCluster,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    resolve_backend,
)
from repro.mpc.engine import ExecutionBackend

BACKENDS = ["serial", "thread", "process"]


def make_backend(name):
    """Backend instances tuned so the parallel machinery genuinely engages
    (no inline fallbacks from worker/threshold heuristics) even on 1 CPU."""
    return {
        "serial": lambda: SerialBackend(),
        "thread": lambda: ThreadBackend(max_workers=2, min_parallel_items=0),
        "process": lambda: ProcessBackend(max_workers=2),
    }[name]()


# ------------------------------------------------------------- resolution
def test_backend_names_and_resolution():
    assert backend_names() == ["process", "serial", "thread"]
    assert isinstance(resolve_backend(None), SerialBackend)
    assert isinstance(resolve_backend("serial"), SerialBackend)
    assert isinstance(resolve_backend("thread"), ThreadBackend)
    assert isinstance(resolve_backend("process"), ProcessBackend)
    instance = ThreadBackend(max_workers=3)
    assert resolve_backend(instance) is instance
    with pytest.raises(ValueError, match="unknown execution backend"):
        resolve_backend("gpu")
    with pytest.raises(TypeError):
        resolve_backend(42)


def test_cluster_accepts_backend_in_all_forms():
    assert MPCCluster(64, backend=None).backend.name == "serial"
    assert MPCCluster(64, backend="thread").backend.name == "thread"
    assert MPCCluster(64, backend=ProcessBackend(max_workers=2)).backend.name == "process"


def test_pickled_cluster_downgrades_to_serial_backend():
    cluster = MPCCluster(256, delta=0.5, backend="process")
    cluster.charge_round("x", words=10, max_load=5)
    clone = pickle.loads(pickle.dumps(cluster))
    assert isinstance(clone.backend, SerialBackend)
    # Accounting state travels unchanged.
    assert clone.stats.fingerprint() == cluster.stats.fingerprint()


# ------------------------------------------------- primitive bit-identity
def _run_all_primitives(cluster, data, key, dest, perm, queries):
    darr = cluster.distribute(data)
    return {
        "sort": cluster.sort(darr, key=key).to_array(),
        # Per-chunk placement (not just the concatenation) must match.
        "route": [chunk.copy() for chunk in cluster.route(darr, dest).chunks],
        "prefix_ex": cluster.prefix_sum(darr, exclusive=True).to_array(),
        "prefix_in": cluster.prefix_sum(darr, exclusive=False).to_array(),
        "inverse": cluster.inverse_permutation(cluster.distribute(perm)).to_array(),
        "rank": cluster.rank_search(darr, cluster.distribute(queries)).to_array(),
        "map": darr.map_chunks(lambda chunk, idx: chunk + idx).to_array(),
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_primitives_identical_across_backends(backend, rng):
    serial = MPCCluster(400, delta=0.5, num_machines=8, space_per_machine=128)
    other = MPCCluster(
        400, delta=0.5, num_machines=8, space_per_machine=128, backend=make_backend(backend)
    )
    data = rng.integers(0, 50, size=400)  # duplicates exercise stable ties
    key = rng.permutation(400)
    dest = rng.integers(0, 8, size=400)
    perm = rng.permutation(400)
    queries = rng.integers(0, 50, size=80)

    expected = _run_all_primitives(serial, data, key, dest, perm, queries)
    actual = _run_all_primitives(other, data, key, dest, perm, queries)
    for name in expected:
        if name == "route":
            assert len(expected[name]) == len(actual[name])
            for chunk_s, chunk_o in zip(expected[name], actual[name]):
                np.testing.assert_array_equal(chunk_s, chunk_o)
        else:
            np.testing.assert_array_equal(expected[name], actual[name], err_msg=name)
    assert serial.stats.fingerprint() == other.stats.fingerprint()


def test_sort_and_prefix_match_numpy(rng):
    # Chunk-resident implementations agree with the flat NumPy reference.
    cluster = MPCCluster(300, delta=0.5, backend="thread")
    data = rng.integers(0, 20, size=300)
    key = rng.integers(0, 20, size=300)
    np.testing.assert_array_equal(
        cluster.sort(cluster.distribute(data), key=key).to_array(),
        data[np.argsort(key, kind="stable")],
    )
    np.testing.assert_array_equal(
        cluster.prefix_sum(cluster.distribute(data)).to_array(),
        np.cumsum(data) - data,
    )


# --------------------------------------------- fork/join parallel batches
def _charge_task(cluster, rounds, words):
    """Module-level fork-group task (picklable for the process backend)."""
    cluster.charge_rounds(rounds, "work", words_per_round=words, max_load=5)
    cluster.stats.local_operations += rounds
    return rounds


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_forked_parallel_composition(backend):
    """`absorb_parallel` semantics: max over rounds, sum of words — under
    every backend, with results in task order."""
    cluster = MPCCluster(1000, delta=0.5, backend=make_backend(backend))
    results = cluster.run_forked(
        [
            (_charge_task, (5, 10)),
            (_charge_task, (2, 30)),
            (_charge_task, (4, 7)),
        ],
        label="parallel",
    )
    assert results == [5, 2, 4]
    # Parallel composition: rounds = max(5, 2, 4); words add up per round.
    assert cluster.stats.num_rounds == 5
    assert cluster.stats.total_communication == 5 * 10 + 2 * 30 + 4 * 7
    assert cluster.stats.peak_machine_load == 5
    assert cluster.stats.local_operations == 5 + 2 + 4


def test_run_forked_identical_stats_across_backends():
    fingerprints = {}
    for backend in BACKENDS:
        cluster = MPCCluster(1000, delta=0.5, backend=make_backend(backend))
        cluster.run_forked([(_charge_task, (r, 10 * r)) for r in (3, 1, 6, 2)])
        fingerprints[backend] = cluster.stats.fingerprint()
    assert fingerprints["serial"] == fingerprints["thread"] == fingerprints["process"]


def test_run_forked_empty_and_single():
    cluster = MPCCluster(100, delta=0.5, backend="thread")
    assert cluster.run_forked([]) == []
    assert cluster.run_forked([(_charge_task, (1, 4))]) == [1]
    assert cluster.stats.num_rounds == 1


def test_process_backend_falls_back_on_unpicklable_tasks():
    cluster = MPCCluster(1000, delta=0.5, backend=ProcessBackend(max_workers=2))
    captured = []

    def closure_task(child, value):  # closures cannot be pickled
        child.charge_round("c", words=value, max_load=1)
        captured.append(value)
        return value * 2

    results = cluster.run_forked([(closure_task, (3,)), (closure_task, (4,))])
    assert results == [6, 8]
    assert sorted(captured) == [3, 4]  # ran in-process
    assert cluster.stats.total_communication == 7


def test_route_validates_payload_length(rng):
    cluster = MPCCluster(100, delta=0.5, backend="thread")
    darr = cluster.distribute(np.arange(100))
    dest = rng.integers(0, cluster.num_machines, size=100)
    routed = cluster.route(darr, dest, payload=np.arange(100) * 2)
    np.testing.assert_array_equal(np.sort(routed.to_array()), np.arange(100) * 2)
    with pytest.raises(ValueError, match="payload must match"):
        cluster.route(darr, dest, payload=np.arange(50))


def test_process_backend_inside_worker_runs_inline():
    """--backend process composed with the runner's --workers fan-out (or a
    worker-side MongeMPCConfig.backend re-resolve) must not try to spawn a
    nested pool inside a daemonic worker process."""
    import multiprocessing

    with multiprocessing.get_context("fork").Pool(processes=1) as pool:
        rounds, words = pool.apply(_forked_charge_in_worker)
    assert rounds == 4  # max(4, 2): parallel composition held inline
    assert words == 4 * 10 + 2 * 10


def _forked_charge_in_worker():
    cluster = MPCCluster(1000, delta=0.5, backend=ProcessBackend(max_workers=2))
    cluster.run_forked([(_charge_task, (4, 10)), (_charge_task, (2, 10))])
    return cluster.stats.num_rounds, cluster.stats.total_communication


def test_config_backend_reapplied_in_worker_is_safe():
    """Theorem 1.3 pipeline with MongeMPCConfig(backend='process'): the merge
    tasks call mpc_multiply at depth 0 inside pool workers, re-resolving the
    process backend there — which must run inline, not crash."""
    from repro.lis import mpc_lis_length, lis_length
    from repro.mpc_monge import MongeMPCConfig
    from repro.workloads import make_sequence

    seq = make_sequence("random", 512, seed=5)
    cluster = MPCCluster(512, delta=0.5, backend=ProcessBackend(max_workers=2))
    config = MongeMPCConfig(backend="process")
    assert mpc_lis_length(cluster, seq, config) == lis_length(seq)


def test_absorb_parallel_direct_semantics():
    parent = ClusterStats(num_machines=8, space_per_machine=64)
    a = ClusterStats(num_machines=4, space_per_machine=64)
    b = ClusterStats(num_machines=4, space_per_machine=64)
    a.record_round("a", 10, 3)
    a.record_round("a", 10, 3)
    b.record_round("b", 100, 7)
    parent.absorb_parallel([a, b], label="p")
    assert parent.num_rounds == 2  # max over children
    assert parent.total_communication == 120  # sum across children
    assert parent.peak_machine_load == 7  # max across children


# ------------------------------------------- spec-level backend identity
def _strip_timing(metrics):
    return {k: v for k, v in metrics.items() if "seconds" not in k}


#: Reduced grids so the 3-backend comparison stays fast; every registered
#: spec must appear here or in the exclusion list below.
SPEC_CASES = {
    "table1": {"delta": [0.5], "algorithm": ["this_paper", "chs23"]},
    "multiply_rounds": {"n": [1024]},
    "scalability_delta": {"delta": [0.5]},
    "lis_rounds": {"n": [512]},
    "lcs": {"workload": ["random4"]},
    "communication": {"n": [1024]},
    "fanin_ablation": {"fanin": [4], "workload": ["zipfian"]},
    "space_overhead": {"grid_size": [16]},
}
#: Specs where a backend comparison is meaningless, with the reason.
SPEC_EXCLUSIONS = {
    "sequential": "no cluster: the sequential substrate has nothing to schedule",
    "backend_wallclock": "sweeps the backend itself; its own checks assert identity",
    "service_throughput": "sweeps the backend itself; its own checks assert identity "
    "(and tests/test_service.py covers the per-backend answers)",
    "streaming_throughput": "sweeps the backend itself; its own checks assert identity "
    "(and tests/test_streaming.py covers the per-backend answers)",
    "service_latency": "no cluster backend knob: measures the HTTP front-end, whose "
    "answers are oracle-checked inside the point (and tests/test_server.py covers "
    "transport identity)",
    "shard_scaling": "no cluster backend knob: sweeps the shard count, whose answers "
    "are oracle-checked inside the point (and tests/test_sharding.py covers "
    "shard-count identity)",
}


def test_every_registered_spec_is_covered_or_excluded():
    assert set(spec_names()) == set(SPEC_CASES) | set(SPEC_EXCLUSIONS)


@pytest.mark.parametrize("name", sorted(SPEC_CASES))
def test_spec_backends_bit_identical(name):
    """Acceptance criterion: for every registered experiment spec, the
    parallel backends produce bit-identical results and identical
    ClusterStats-derived metrics to the serial backend."""
    outcomes = {}
    for backend in BACKENDS:
        result = run_experiment(
            get_spec(name),
            quick=True,
            overrides=SPEC_CASES[name],
            fixed_overrides={"backend": backend},
        )
        outcomes[backend] = [
            (point.params, _strip_timing(point.metrics)) for point in result.points
        ]
    assert outcomes["serial"] == outcomes["thread"], f"{name}: thread backend diverges"
    assert outcomes["serial"] == outcomes["process"], f"{name}: process backend diverges"
