"""Tests for the MPC simulator (cluster, accounting, primitives)."""

import numpy as np
import pytest

from repro.mpc import (
    MPCCluster,
    MachineCountError,
    ScalabilityError,
    SpaceExceededError,
    inverse_permutation,
    mpc_sort,
    offline_rank_search,
    prefix_sum,
)
from repro.mpc.cluster import RANK_SEARCH_ROUNDS, SORT_ROUNDS


class TestClusterSetup:
    def test_default_sizes(self):
        cl = MPCCluster(10_000, delta=0.5)
        assert cl.num_machines == 100
        assert cl.space_per_machine >= 100  # n^{1-delta} = 100, plus slack
        assert cl.total_space >= 10_000

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            MPCCluster(100, delta=0.0)
        with pytest.raises(ValueError):
            MPCCluster(100, delta=1.0)
        with pytest.raises(ValueError):
            MPCCluster(0, delta=0.5)

    def test_explicit_overrides(self):
        cl = MPCCluster(100, delta=0.5, num_machines=7, space_per_machine=40)
        assert cl.num_machines == 7
        assert cl.space_per_machine == 40

    def test_space_violation_raises(self):
        cl = MPCCluster(100, delta=0.5, num_machines=2, space_per_machine=16)
        with pytest.raises(SpaceExceededError):
            cl.distribute(np.arange(100))

    def test_non_strict_mode_records_peak(self):
        cl = MPCCluster(100, delta=0.5, num_machines=2, space_per_machine=16, strict_space=False)
        cl.distribute(np.arange(100))
        assert cl.stats.peak_machine_load >= 50

    def test_charge_round_accounting(self):
        cl = MPCCluster(1000, delta=0.5)
        cl.charge_round("test", words=500, max_load=10)
        cl.charge_rounds(3, "more", words_per_round=100, max_load=5)
        assert cl.stats.num_rounds == 4
        assert cl.stats.total_communication == 800
        assert cl.stats.rounds[0].label == "test"


class TestDistributedArray:
    def test_distribute_roundtrip(self):
        cl = MPCCluster(256, delta=0.5)
        data = np.arange(256)
        darr = cl.distribute(data)
        assert darr.total_size == 256
        assert darr.num_chunks == cl.num_machines
        assert np.array_equal(darr.to_array(), data)

    def test_map_chunks(self):
        cl = MPCCluster(64, delta=0.5)
        darr = cl.distribute(np.arange(64))
        doubled = darr.map_chunks(lambda chunk, idx: chunk * 2)
        assert np.array_equal(doubled.to_array(), np.arange(64) * 2)

    def test_too_many_chunks(self):
        cl = MPCCluster(64, delta=0.5, num_machines=2, space_per_machine=64)
        with pytest.raises(MachineCountError):
            cl.distributed_from_chunks([np.arange(2)] * 5)


class TestPrimitives:
    def test_sort(self, rng):
        cl = MPCCluster(500, delta=0.5)
        data = rng.integers(0, 1000, size=500)
        result = mpc_sort(cl, data)
        assert np.array_equal(result.to_array(), np.sort(data))
        assert cl.stats.num_rounds == SORT_ROUNDS

    def test_sort_with_key(self, rng):
        cl = MPCCluster(100, delta=0.5)
        data = np.arange(100)
        key = rng.permutation(100)
        result = mpc_sort(cl, data, key=key)
        assert np.array_equal(result.to_array(), np.argsort(key, kind="stable"))

    def test_prefix_sum(self, rng):
        cl = MPCCluster(300, delta=0.5)
        data = rng.integers(0, 10, size=300)
        exclusive = prefix_sum(cl, data, exclusive=True)
        assert np.array_equal(exclusive.to_array(), np.cumsum(data) - data)
        inclusive = prefix_sum(cl, data, exclusive=False)
        assert np.array_equal(inclusive.to_array(), np.cumsum(data))

    def test_inverse_permutation(self, rng):
        cl = MPCCluster(200, delta=0.5)
        perm = rng.permutation(200)
        inv = inverse_permutation(cl, perm).to_array()
        assert np.array_equal(perm[inv], np.arange(200))
        assert cl.stats.num_rounds == 1

    def test_rank_search(self, rng):
        cl = MPCCluster(400, delta=0.5)
        data = rng.integers(0, 100, size=300)
        queries = rng.integers(0, 100, size=100)
        ranks = offline_rank_search(cl, data, queries).to_array()
        expected = np.array([(data < q).sum() for q in queries])
        assert np.array_equal(ranks, expected)
        assert cl.stats.num_rounds >= RANK_SEARCH_ROUNDS - 1

    def test_broadcast_space_limit(self):
        cl = MPCCluster(100, delta=0.5, num_machines=4, space_per_machine=16)
        with pytest.raises(SpaceExceededError):
            cl.broadcast(np.arange(64))

    def test_route(self, rng):
        cl = MPCCluster(120, delta=0.5)
        darr = cl.distribute(np.arange(120))
        dest = rng.integers(0, cl.num_machines, size=120)
        routed = cl.route(darr, dest)
        assert routed.total_size == 120
        # every element lands on its destination machine
        for machine, chunk in enumerate(routed.chunks):
            assert all(dest[v] == machine for v in chunk)


class TestForkJoin:
    def test_parallel_round_semantics(self):
        cl = MPCCluster(1000, delta=0.5)
        children = cl.fork(4)
        assert len(children) == 4
        assert sum(c.num_machines for c in children) >= cl.num_machines
        children[0].charge_rounds(5, "a", words_per_round=10)
        children[1].charge_rounds(2, "b", words_per_round=10)
        cl.join(children)
        # Parallel composition: the parent pays the maximum of the children.
        assert cl.stats.num_rounds == 5
        assert cl.stats.total_communication == 5 * 10 + 2 * 10

    def test_stats_summary_keys(self):
        cl = MPCCluster(100, delta=0.5)
        cl.charge_round("x", words=10)
        summary = cl.stats.summary()
        for key in ("machines", "rounds", "total_communication", "peak_machine_load"):
            assert key in summary
        assert cl.stats.rounds_by_phase()
