"""Tests for the prior-work baselines used in the Table 1 reproduction."""

import numpy as np
import pytest

from repro.baselines import (
    KT10_DELTA_LIMIT,
    chs23_combine_rounds,
    chs23_lis_length,
    chs23_multiply,
    chs23_multiply_subpermutation,
    kt10_check_scalability,
    kt10_lis_length,
    kt10_multiply,
)
from repro.core import multiply, multiply_permutations, random_permutation, random_subpermutation
from repro.lis import lis_length, mpc_lis_length
from repro.mpc import MPCCluster, ScalabilityError
from repro.workloads import random_permutation_sequence


class TestCHS23:
    def test_multiply_correct(self, rng):
        for n in (16, 90, 250):
            pa, pb = random_permutation(n, rng), random_permutation(n, rng)
            cluster = MPCCluster(n, delta=0.5)
            assert chs23_multiply(cluster, pa, pb) == multiply_permutations(pa, pb)

    def test_subpermutation_variant(self, rng):
        pa = random_subpermutation(20, 25, 12, rng)
        pb = random_subpermutation(25, 18, 10, rng)
        cluster = MPCCluster(25, delta=0.5)
        assert chs23_multiply_subpermutation(cluster, pa, pb) == multiply(pa, pb)

    def test_lis_correct(self):
        seq = random_permutation_sequence(300, seed=2)
        cluster = MPCCluster(300, delta=0.5)
        assert chs23_lis_length(cluster, seq) == lis_length(seq)

    def test_combine_rounds_formula(self):
        assert chs23_combine_rounds(1024) == 100
        assert chs23_combine_rounds(2) == 1

    def test_uses_more_rounds_than_this_paper(self):
        n = 1024
        seq = random_permutation_sequence(n, seed=3)
        ours = MPCCluster(n, delta=0.5)
        mpc_lis_length(ours, seq)
        theirs = MPCCluster(n, delta=0.5)
        chs23_lis_length(theirs, seq)
        assert theirs.stats.num_rounds > ours.stats.num_rounds


class TestKT10:
    def test_scalability_check(self):
        with pytest.raises(ScalabilityError):
            kt10_check_scalability(MPCCluster(1000, delta=0.5))
        # Admissible delta passes.
        kt10_check_scalability(MPCCluster(10_000, delta=0.25))
        assert KT10_DELTA_LIMIT == pytest.approx(1.0 / 3.0)

    def test_multiply_correct_in_admissible_range(self, rng):
        n = 200
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        cluster = MPCCluster(n, delta=0.25)
        assert kt10_multiply(cluster, pa, pb) == multiply_permutations(pa, pb)

    def test_multiply_rejected_outside_range(self, rng):
        n = 200
        pa, pb = random_permutation(n, rng), random_permutation(n, rng)
        with pytest.raises(ScalabilityError):
            kt10_multiply(MPCCluster(n, delta=0.6), pa, pb)

    def test_lis_correct(self):
        seq = random_permutation_sequence(250, seed=5)
        cluster = MPCCluster(250, delta=0.25)
        assert kt10_lis_length(cluster, seq) == lis_length(seq)
