"""Tests for the multiway combine engine (Lemmas 3.1-3.10)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import random_permutation, multiply_dense
from repro.core.combine import ColoredPointSet, combine_colored, sigma_from_colored_dense
from repro.core.seaweed import expand_block_results, split_into_blocks


def make_colored_instance(n, num_blocks, rng):
    """Split a random product instance and return expanded colored sub-results."""
    pa, pb = random_permutation(n, rng), random_permutation(n, rng)
    split = split_into_blocks(pa, pb, num_blocks)
    sub_results = [
        multiply_dense(a, b).as_permutation()
        for a, b in zip(split.a_blocks, split.b_blocks)
    ]
    rows, cols, colors = expand_block_results(sub_results, split)
    expected = multiply_dense(pa, pb)
    return rows, cols, colors, expected


class TestColoredPointSet:
    def test_union_is_full_permutation(self, rng):
        rows, cols, colors, _ = make_colored_instance(16, 4, rng)
        assert len(rows) == 16
        assert sorted(rows.tolist()) == list(range(16))
        assert sorted(cols.tolist()) == list(range(16))

    def test_sigma_matches_dense_minplus(self, rng):
        for num_blocks in (2, 3, 5):
            rows, cols, colors, expected = make_colored_instance(14, num_blocks, rng)
            ps = ColoredPointSet(rows, cols, colors, num_blocks, 14, 14)
            sigma = sigma_from_colored_dense(ps)
            assert np.array_equal(sigma, expected.distribution_matrix())

    def test_opt_is_monotone(self, rng):
        rows, cols, colors, _ = make_colored_instance(12, 3, rng)
        ps = ColoredPointSet(rows, cols, colors, 3, 12, 12)
        grid = np.arange(13)
        ii, jj = np.meshgrid(grid, grid, indexing="ij")
        opt = ps.opt(ii.ravel(), jj.ravel()).reshape(13, 13)
        # Lemmas 3.5 / 3.6: opt is nondecreasing along rows and columns.
        assert np.all(np.diff(opt, axis=0) >= 0)
        assert np.all(np.diff(opt, axis=1) >= 0)

    def test_combine_equals_dense(self, rng):
        for n in (5, 9, 17, 33):
            for num_blocks in (2, 3, 4):
                rows, cols, colors, expected = make_colored_instance(n, num_blocks, rng)
                merged = combine_colored(rows, cols, colors, num_blocks, n, n)
                assert merged == expected

    def test_combine_large_instance_uses_tree_path(self, rng):
        # Pick n large enough that the dense-table fast path is disabled.
        from repro.core import combine as combine_module

        n = 80
        rows, cols, colors, expected = make_colored_instance(n, 4, rng)
        old_limit = combine_module.DENSE_TABLE_LIMIT
        combine_module.DENSE_TABLE_LIMIT = 1
        try:
            merged = combine_colored(rows, cols, colors, 4, n, n)
        finally:
            combine_module.DENSE_TABLE_LIMIT = old_limit
        assert merged == expected

    def test_row_point_columns_empty_rows(self):
        # A sub-permutation union with an empty row: no point reported there.
        rows = np.array([0, 2])
        cols = np.array([1, 0])
        colors = np.array([0, 1])
        ps = ColoredPointSet(rows, cols, colors, 2, 3, 3)
        found = ps.row_point_columns()
        assert found[1] == -1 or found[1] >= 0  # row 1 may or may not get a point

    def test_input_validation(self):
        with pytest.raises(ValueError):
            ColoredPointSet(np.array([0]), np.array([5]), np.array([0]), 1, 3, 3)
        with pytest.raises(ValueError):
            ColoredPointSet(np.array([0]), np.array([0]), np.array([3]), 2, 3, 3)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=28),
    num_blocks=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_combine_matches_dense_property(n, num_blocks, seed):
    """Property: the multiway combine always equals the dense oracle."""
    rng = np.random.default_rng(seed)
    num_blocks = min(num_blocks, n)
    rows, cols, colors, expected = make_colored_instance(n, num_blocks, rng)
    merged = combine_colored(rows, cols, colors, num_blocks, n, n)
    assert merged == expected
