"""Tests for the multiway combine engine (Lemmas 3.1-3.10)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import random_permutation, multiply_dense
from repro.core.combine import ColoredPointSet, combine_colored, sigma_from_colored_dense
from repro.core.seaweed import expand_block_results, split_into_blocks


def make_colored_instance(n, num_blocks, rng):
    """Split a random product instance and return expanded colored sub-results."""
    pa, pb = random_permutation(n, rng), random_permutation(n, rng)
    split = split_into_blocks(pa, pb, num_blocks)
    sub_results = [
        multiply_dense(a, b).as_permutation()
        for a, b in zip(split.a_blocks, split.b_blocks)
    ]
    rows, cols, colors = expand_block_results(sub_results, split)
    expected = multiply_dense(pa, pb)
    return rows, cols, colors, expected


class TestColoredPointSet:
    def test_union_is_full_permutation(self, rng):
        rows, cols, colors, _ = make_colored_instance(16, 4, rng)
        assert len(rows) == 16
        assert sorted(rows.tolist()) == list(range(16))
        assert sorted(cols.tolist()) == list(range(16))

    def test_sigma_matches_dense_minplus(self, rng):
        for num_blocks in (2, 3, 5):
            rows, cols, colors, expected = make_colored_instance(14, num_blocks, rng)
            ps = ColoredPointSet(rows, cols, colors, num_blocks, 14, 14)
            sigma = sigma_from_colored_dense(ps)
            assert np.array_equal(sigma, expected.distribution_matrix())

    def test_opt_is_monotone(self, rng):
        rows, cols, colors, _ = make_colored_instance(12, 3, rng)
        ps = ColoredPointSet(rows, cols, colors, 3, 12, 12)
        grid = np.arange(13)
        ii, jj = np.meshgrid(grid, grid, indexing="ij")
        opt = ps.opt(ii.ravel(), jj.ravel()).reshape(13, 13)
        # Lemmas 3.5 / 3.6: opt is nondecreasing along rows and columns.
        assert np.all(np.diff(opt, axis=0) >= 0)
        assert np.all(np.diff(opt, axis=1) >= 0)

    def test_combine_equals_dense(self, rng):
        for n in (5, 9, 17, 33):
            for num_blocks in (2, 3, 4):
                rows, cols, colors, expected = make_colored_instance(n, num_blocks, rng)
                merged = combine_colored(rows, cols, colors, num_blocks, n, n)
                assert merged == expected

    def test_combine_large_instance_uses_tree_path(self, rng):
        # Pick n large enough that the dense-table fast path is disabled.
        from repro.core import combine as combine_module

        n = 80
        rows, cols, colors, expected = make_colored_instance(n, 4, rng)
        old_limit = combine_module.DENSE_TABLE_LIMIT
        combine_module.DENSE_TABLE_LIMIT = 1
        try:
            merged = combine_colored(rows, cols, colors, 4, n, n)
        finally:
            combine_module.DENSE_TABLE_LIMIT = old_limit
        assert merged == expected

    def test_row_point_columns_empty_rows(self):
        # A sub-permutation union with an empty row: no point reported there.
        rows = np.array([0, 2])
        cols = np.array([1, 0])
        colors = np.array([0, 1])
        ps = ColoredPointSet(rows, cols, colors, 2, 3, 3)
        found = ps.row_point_columns()
        assert found[1] == -1 or found[1] >= 0  # row 1 may or may not get a point

    def test_input_validation(self):
        with pytest.raises(ValueError):
            ColoredPointSet(np.array([0]), np.array([5]), np.array([0]), 1, 3, 3)
        with pytest.raises(ValueError):
            ColoredPointSet(np.array([0]), np.array([0]), np.array([3]), 2, 3, 3)

    def test_dense_table_limit_parameter_forces_tree_path(self, rng):
        # The per-instance knob (threaded from MultiplyPlan) must select the
        # sparse color-major path without touching the module default.
        n = 24
        rows, cols, colors, expected = make_colored_instance(n, 3, rng)
        dense = ColoredPointSet(rows, cols, colors, 3, n, n)
        sparse = ColoredPointSet(rows, cols, colors, 3, n, n, dense_table_limit=0)
        assert dense._dense_tables is not None
        assert sparse._dense_tables is None
        assert dense.combine() == sparse.combine() == expected

    def test_vectorised_counts_match_bruteforce(self, rng):
        n = 40
        rows, cols, colors, _ = make_colored_instance(n, 4, rng)
        ps = ColoredPointSet(rows, cols, colors, 4, n, n, dense_table_limit=0)
        queries_i = rng.integers(0, n + 1, size=25)
        queries_j = rng.integers(0, n + 1, size=25)
        suffix = ps.row_suffix_counts(queries_i)
        prefix = ps.col_prefix_counts(queries_j)
        dom = ps.dominance_counts(queries_i, queries_j)
        for b in range(len(queries_i)):
            for x in range(4):
                mask = colors == x
                assert suffix[b, x] == np.count_nonzero(mask & (rows >= queries_i[b]))
                assert prefix[b, x] == np.count_nonzero(mask & (cols < queries_j[b]))
                assert dom[b, x] == np.count_nonzero(
                    mask & (rows >= queries_i[b]) & (cols < queries_j[b])
                )

    def test_sparse_and_dense_sigma_agree(self, rng):
        n = 18
        rows, cols, colors, _ = make_colored_instance(n, 3, rng)
        dense = ColoredPointSet(rows, cols, colors, 3, n, n)
        sparse = ColoredPointSet(rows, cols, colors, 3, n, n, dense_table_limit=0)
        assert np.array_equal(
            sigma_from_colored_dense(dense), sigma_from_colored_dense(sparse)
        )

    def test_nbytes_accounts_for_query_structures(self, rng):
        n = 30
        rows, cols, colors, _ = make_colored_instance(n, 3, rng)
        point_bytes = rows.nbytes + cols.nbytes + colors.nbytes
        dense = ColoredPointSet(rows, cols, colors, 3, n, n)
        sparse = ColoredPointSet(rows, cols, colors, 3, n, n, dense_table_limit=0)
        # Dense tables and the color-major arrays + rank tree both count.
        assert dense.nbytes >= point_bytes + dense._dense_tables.nbytes
        assert sparse.nbytes > point_bytes
        assert sparse.nbytes >= point_bytes + sparse._rank_tree.nbytes

    def test_empty_point_set_paths(self):
        for limit in (None, 0):
            ps = ColoredPointSet(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                2, 4, 4,
                dense_table_limit=limit,
            )
            merged = ps.combine()
            assert merged.num_nonzeros == 0
            assert np.array_equal(ps.sigma(np.array([0, 4]), np.array([4, 0])), [0, 0])
            assert ps.nbytes >= 0


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=28),
    num_blocks=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_combine_matches_dense_property(n, num_blocks, seed):
    """Property: the multiway combine always equals the dense oracle."""
    rng = np.random.default_rng(seed)
    num_blocks = min(num_blocks, n)
    rows, cols, colors, expected = make_colored_instance(n, num_blocks, rng)
    merged = combine_colored(rows, cols, colors, num_blocks, n, n)
    assert merged == expected
