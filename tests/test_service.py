"""Tests for the query-serving subsystem (:mod:`repro.service`)."""

import json

import numpy as np
import pytest

from repro.core.permutation import SubPermutation, random_subpermutation
from repro.experiments import load_artifact
from repro.experiments.cli import main as cli_main
from repro.experiments.specs import (
    check_service_throughput,
    run_service_throughput_point,
)
from repro.lcs.dp_baseline import lcs_length_dp
from repro.lis import lis_length
from repro.lis.dp_baseline import lis_length_dp
from repro.service import (
    IndexCache,
    QueryRequest,
    QueryService,
    SemiLocalIndex,
    ServiceRequestError,
    TargetSpec,
    build_lcs_index,
    build_lis_index,
    lis_index_fingerprint,
    parse_requests_document,
)
from repro.workloads import make_sequence, make_string_pair

BACKENDS = ("serial", "thread", "process")


def _random_windows(rng, n, count, upper=None):
    upper = n if upper is None else upper
    i = rng.integers(0, upper, size=count)
    j = i + rng.integers(0, upper - i + 1)
    return i, j


# ---------------------------------------------------------------- fingerprints
class TestFingerprints:
    def test_identity_covers_input_kind_and_strictness(self):
        seq = make_sequence("random", 64, seed=1)
        base = lis_index_fingerprint(seq, "lis:position", True)
        assert base == lis_index_fingerprint(seq.copy(), "lis:position", True)
        assert base != lis_index_fingerprint(seq, "lis:value", True)
        assert base != lis_index_fingerprint(seq, "lis:position", False)
        other = make_sequence("random", 64, seed=2)
        assert base != lis_index_fingerprint(other, "lis:position", True)

    def test_build_mechanics_do_not_change_identity(self):
        seq = make_sequence("random", 96, seed=3)
        sequential = build_lis_index(seq, mode="sequential")
        mpc = build_lis_index(seq, mode="mpc", delta=0.4, backend="thread")
        assert sequential.fingerprint == mpc.fingerprint
        assert sequential.semilocal.matrix == mpc.semilocal.matrix
        assert mpc.provenance["mode"] == "mpc"
        assert mpc.provenance["backend"] == "thread"
        assert "stats_digest" in mpc.provenance

    def test_mpc_provenance_digest_is_backend_invariant(self):
        seq = make_sequence("random", 96, seed=4)
        digests = {
            build_lis_index(seq, mode="mpc", backend=backend).provenance["stats_digest"]
            for backend in BACKENDS
        }
        assert len(digests) == 1


# ------------------------------------------------------------- batch queries
class TestIndexQueries:
    @pytest.mark.parametrize("workload", ["random", "duplicate_heavy", "near_sorted"])
    def test_substring_batches_match_dp_on_all_backends(self, workload):
        n = 64
        seq = make_sequence(workload, n, seed=5)
        rng = np.random.default_rng(6)
        i, j = _random_windows(rng, n, 24)
        oracle = np.array([lis_length_dp(seq[a:b]) for a, b in zip(i, j)])

        reference = None
        for mode, backend in [("sequential", None)] + [("mpc", b) for b in BACKENDS]:
            index = build_lis_index(seq, mode=mode, backend=backend)
            answers = index.query_substrings(i, j)
            assert np.array_equal(answers, oracle), (mode, backend)
            if reference is None:
                reference = answers
            assert np.array_equal(answers, reference)

    def test_rank_interval_batches_match_filtered_dp(self):
        n = 40
        seq = make_sequence("random", n, seed=7)
        index = build_lis_index(seq, kind="lis:value", mode="mpc")
        rng = np.random.default_rng(8)
        x, y = _random_windows(rng, n, 16)
        expected = [
            lis_length([v for v in seq if a <= v < b]) for a, b in zip(x, y)
        ]
        assert list(index.query_rank_intervals(x, y)) == expected

    def test_lcs_batches_match_dp_on_all_backends(self):
        s, t = make_string_pair("correlated_pair", 48, seed=9, alphabet=6)
        rng = np.random.default_rng(10)
        i, j = _random_windows(rng, len(t), 12)
        oracle = np.array([lcs_length_dp(s, t[a:b]) for a, b in zip(i, j)])
        for mode, backend in [("sequential", None)] + [("mpc", b) for b in BACKENDS]:
            index = build_lcs_index(s, t, mode=mode, backend=backend)
            assert np.array_equal(index.query_substrings(i, j), oracle), (mode, backend)
            assert index.full_length() == lcs_length_dp(s, t)

    def test_window_sweep_equals_explicit_windows(self):
        seq = make_sequence("random", 80, seed=11)
        index = build_lis_index(seq)
        sweep = index.window_sweep(16, step=8)
        starts = np.arange(0, 80 - 16 + 1, 8)
        assert np.array_equal(sweep, index.query_substrings(starts, starts + 16))

    def test_out_of_range_windows_raise_instead_of_wrapping(self):
        seq = make_sequence("random", 32, seed=12)
        index = build_lis_index(seq)
        with pytest.raises(ValueError, match="0 <= i <= j <= 32"):
            index.query_substrings([-1], [10])
        with pytest.raises(ValueError, match="batch position 1"):
            index.query_substrings([0, 5], [10, 40])
        with pytest.raises(ValueError, match="0 <= i <= j"):
            index.query_substrings([20], [10])
        value_index = build_lis_index(seq, kind="lis:value")
        with pytest.raises(ValueError, match="rank interval"):
            value_index.query_rank_intervals([0], [33])

    def test_kind_mismatch_and_sweep_geometry_raise(self):
        seq = make_sequence("random", 32, seed=13)
        index = build_lis_index(seq)
        with pytest.raises(ValueError, match="lis:value"):
            index.query_rank_intervals([0], [4])
        with pytest.raises(ValueError, match="substring"):
            build_lis_index(seq, kind="lis:value").query_substrings([0], [4])
        with pytest.raises(ValueError, match="width"):
            index.window_sweep(0)
        with pytest.raises(ValueError, match="step"):
            index.window_sweep(4, step=0)

    def test_lcs_out_of_range_batch_raises(self):
        s, t = make_string_pair("random_pair", 24, seed=14, alphabet=4)
        index = build_lcs_index(s, t)
        with pytest.raises(ValueError, match="subsegment"):
            index.query_substrings([0], [len(t) + 1])


# -------------------------------------------------------------- npz round-trip
class TestNpzRoundTrip:
    def test_subpermutation_save_load(self, tmp_path):
        matrix = random_subpermutation(40, 50, 30, np.random.default_rng(15))
        path = tmp_path / "matrix.npz"
        matrix.save_npz(str(path))
        assert SubPermutation.load_npz(str(path)) == matrix

    def test_index_save_load_preserves_answers(self, tmp_path):
        seq = make_sequence("random", 64, seed=16)
        index = build_lis_index(seq, mode="mpc")
        path = tmp_path / "index.npz"
        index.save(str(path))
        restored = SemiLocalIndex.load(str(path))
        assert restored.fingerprint == index.fingerprint
        assert restored.provenance == index.provenance
        rng = np.random.default_rng(17)
        i, j = _random_windows(rng, 64, 10)
        assert np.array_equal(restored.query_substrings(i, j), index.query_substrings(i, j))

    def test_lcs_index_save_load(self, tmp_path):
        s, t = make_string_pair("random_pair", 32, seed=18, alphabet=4)
        index = build_lcs_index(s, t)
        index.save(str(tmp_path / "lcs.npz"))
        restored = SemiLocalIndex.load(str(tmp_path / "lcs.npz"))
        assert restored.full_length() == index.full_length()
        assert np.array_equal(restored.match_positions, index.match_positions)

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(4))
        with pytest.raises(ValueError, match="not a serialized SemiLocalIndex"):
            SemiLocalIndex.load(str(path))


# --------------------------------------------------------------------- cache
class TestIndexCache:
    def _tiny_index(self, seed):
        return build_lis_index(make_sequence("random", 48, seed=seed))

    def test_nbytes_includes_query_acceleration_structures(self):
        # The LRU budget must reflect resident memory: the matrix alone is
        # n*8 bytes, but the ColoredPointSet behind the index (dense tables
        # or color-major arrays + rank tree) dominates and must be counted.
        index = self._tiny_index(9)
        matrix_bytes = index.semilocal.matrix.row_to_col.nbytes
        points_bytes = index.semilocal._points.nbytes
        assert points_bytes > 0
        assert index.nbytes >= matrix_bytes + points_bytes
        cache = IndexCache(max_bytes=index.nbytes + 1)
        cache.put(index)
        assert cache.counters()["current_bytes"] == index.nbytes

    def test_hit_miss_and_lru_eviction_counters(self):
        first, second, third = (self._tiny_index(seed) for seed in (1, 2, 3))
        budget = first.nbytes + second.nbytes + third.nbytes // 2
        cache = IndexCache(max_bytes=budget)
        cache.put(first)
        cache.put(second)
        assert cache.get(first.fingerprint) is first  # refreshes recency
        cache.put(third)  # over budget -> evicts LRU (= second)
        assert second.fingerprint not in cache
        assert first.fingerprint in cache and third.fingerprint in cache
        assert cache.get(second.fingerprint) is None
        counters = cache.counters()
        assert counters["evictions"] == 1
        assert counters["hits"] == 1 and counters["misses"] == 1
        assert counters["current_bytes"] == first.nbytes + third.nbytes

    def test_single_oversized_index_is_retained(self):
        index = self._tiny_index(4)
        cache = IndexCache(max_bytes=1)
        cache.put(index)
        assert cache.get(index.fingerprint) is index

    def _oversized_pair(self):
        small = self._tiny_index(11)
        big = build_lis_index(make_sequence("random", 2048, seed=12))
        return small, big

    def test_oversized_put_spills_straight_to_disk(self, tmp_path):
        # Regression: an index larger than the whole budget used to trigger a
        # degenerate evict-everything loop; it must spill directly instead.
        small, big = self._oversized_pair()
        cache = IndexCache(max_bytes=small.nbytes + 16, spill_dir=str(tmp_path))
        cache.put(small)
        cache.put(big)
        counters = cache.counters()
        assert counters["evictions"] == 0, "resident entries must not be flushed"
        assert counters["oversize_spills"] == 1 and counters["spill_saves"] == 1
        assert counters["entries"] == 1 and counters["current_bytes"] == small.nbytes
        assert cache.get(small.fingerprint) is small
        loaded = cache.get(big.fingerprint)
        assert loaded is not None and loaded.fingerprint == big.fingerprint
        # The oversized entry keeps serving from disk, never re-admitted.
        assert cache.counters()["entries"] == 1
        assert cache.counters()["spill_loads"] == 1

    def test_oversized_put_without_spill_dir_leaves_residents_alone(self):
        small, big = self._oversized_pair()
        cache = IndexCache(max_bytes=small.nbytes + 16)
        cache.put(small)
        cache.put(big)
        counters = cache.counters()
        assert counters["evictions"] == 0 and counters["entries"] == 1
        assert cache.get(small.fingerprint) is small
        assert cache.get(big.fingerprint) is None  # uncached: rebuild on demand

    def test_eviction_spills_and_reloads_from_disk(self, tmp_path):
        first, second = self._tiny_index(5), self._tiny_index(6)
        # Either index fits alone (so neither takes the oversized fast path),
        # but not both together: inserting `second` must evict `first`.
        cache = IndexCache(
            max_bytes=max(first.nbytes, second.nbytes) + 1, spill_dir=str(tmp_path)
        )
        cache.put(first)
        cache.put(second)  # evicts `first` to disk
        assert cache.counters()["spill_saves"] == 1
        reloaded = cache.get(first.fingerprint)
        assert reloaded is not None
        assert reloaded.fingerprint == first.fingerprint
        assert cache.counters()["spill_loads"] == 1
        index, was_cached = cache.get_or_build(
            first.fingerprint, lambda: pytest.fail("builder must not run on a spill hit")
        )
        assert was_cached and index.fingerprint == first.fingerprint

    def test_corrupt_spill_file_degrades_to_rebuild(self, tmp_path):
        index = self._tiny_index(8)
        cache = IndexCache(max_bytes=1 << 30, spill_dir=str(tmp_path))
        spill_path = tmp_path / f"{index.fingerprint}.npz"
        spill_path.write_bytes(b"definitely not a zip archive")
        # The truncated file must be dropped and reported as a miss, not
        # crash this (and every later) lookup with BadZipFile.
        assert cache.get(index.fingerprint) is None
        assert not spill_path.exists()
        rebuilt, was_cached = cache.get_or_build(index.fingerprint, lambda: index)
        assert rebuilt is index and not was_cached

    def test_get_or_build_counts_and_fingerprint_guard(self):
        cache = IndexCache()
        index = self._tiny_index(7)
        built, was_cached = cache.get_or_build(index.fingerprint, lambda: index)
        assert built is index and not was_cached
        again, was_cached = cache.get_or_build(index.fingerprint, lambda: pytest.fail("cached"))
        assert again is index and was_cached
        with pytest.raises(ValueError, match="different fingerprint"):
            cache.get_or_build("deadbeef", lambda: index)


# ------------------------------------------------------------------- service
class TestQueryService:
    def _target(self, n=128, seed=20):
        return TargetSpec(kind="sequence", workload="random", n=n, seed=seed)

    def test_mixed_batch_builds_each_index_once(self):
        target = self._target()
        requests = [
            QueryRequest(op="lis_length", target=target, request_id="len"),
            QueryRequest(
                op="substring_query", target=target, request_id="sub", i=[0, 32], j=[64, 128]
            ),
            QueryRequest(op="window_sweep", target=target, request_id="sweep", width=32, step=16),
            QueryRequest(op="rank_interval_query", target=target, request_id="rank", x=0, y=128),
        ]
        service = QueryService()
        first = service.submit(requests)
        # position + value matrices: exactly two builds for four requests.
        assert first.indexes_built == 2 and first.indexes_reused == 0
        second = service.submit(requests)
        assert second.indexes_built == 0 and second.indexes_reused == 2
        assert all(outcome.cache_hit for outcome in second.outcomes)
        assert [o.result for o in first.outcomes] == [o.result for o in second.outcomes]

        seq = target.realise()
        by_id = first.by_id()
        assert by_id["len"].result == lis_length(seq)
        assert by_id["sub"].result == [lis_length(seq[0:64]), lis_length(seq[32:128])]
        assert by_id["rank"].result == lis_length(seq)  # full rank range
        assert len(by_id["sweep"].result) == len(range(0, 128 - 32 + 1, 16))

    def test_answers_bit_identical_across_backends(self):
        target = self._target(n=160, seed=21)
        requests = [
            QueryRequest(
                op="substring_query",
                target=target,
                request_id="sub",
                i=[0, 10, 40],
                j=[160, 90, 160],
            ),
            QueryRequest(op="lis_length", target=target, request_id="len"),
        ]
        results = []
        for backend in BACKENDS:
            service = QueryService(mode="mpc", backend=backend)
            results.append([o.result for o in service.submit(requests).outcomes])
        assert results[0] == results[1] == results[2]

    def test_malformed_requests_fail_fast_with_request_id(self):
        target = self._target()
        bad_window = QueryRequest(
            op="substring_query", target=target, request_id="oops", i=[0], j=[9999]
        )
        with pytest.raises(ServiceRequestError, match="oops"):
            QueryService().submit([bad_window])
        with pytest.raises(ServiceRequestError, match="unknown op"):
            QueryService().submit([QueryRequest(op="nope", target=target, request_id="x")])
        with pytest.raises(ValueError, match="mode"):
            QueryService(mode="quantum")

    def test_empty_window_batch_is_served_not_crashed(self):
        target = self._target(n=64, seed=23)
        empty = QueryRequest(
            op="substring_query", target=target, request_id="empty", i=[], j=[]
        )
        outcome = QueryService().submit([empty]).outcomes[0]
        assert outcome.result == []
        assert outcome.result_summary() == {"count": 0, "min": None, "max": None, "checksum": 0}

    def test_stats_accumulate(self):
        service = QueryService()
        target = self._target(n=64, seed=22)
        service.submit([QueryRequest(op="lis_length", target=target, request_id="a")])
        service.submit([QueryRequest(op="lis_length", target=target, request_id="a")])
        stats = service.stats()
        assert stats["batches_served"] == 2
        assert stats["requests_served"] == 2
        assert stats["indexes_built"] == 1
        assert stats["cache"]["hits"] == 1


# ------------------------------------------------------------ requests schema
class TestRequestsDocument:
    def test_example_file_parses(self):
        import pathlib

        example = pathlib.Path(__file__).resolve().parents[1] / "examples" / "service_requests.json"
        document = json.loads(example.read_text(encoding="utf-8"))
        defaults, requests = parse_requests_document(document)
        assert defaults["mode"] == "mpc"
        assert len(requests) == 7
        kinds = {request.index_kind() for request in requests}
        assert kinds == {"lis:position", "lis:value", "lcs"}

    @pytest.mark.parametrize(
        "mutation, message",
        [
            (lambda d: d.__setitem__("requests", []), "non-empty"),
            (lambda d: d.__setitem__("schema", "wrong"), "unknown requests schema"),
            (lambda d: d.__setitem__("version", 99), "newer than supported"),
            (lambda d: d["requests"][0].__setitem__("op", "frobnicate"), "unknown op"),
            (lambda d: d["requests"][0].pop("workload"), "exactly one way"),
            (
                lambda d: d["requests"][0].__setitem__("workload", "nope"),
                "unknown sequence workload",
            ),
            (lambda d: d["requests"][1].pop("j"), "needs 'i' and 'j'"),
            (lambda d: d["requests"][2].pop("width"), "needs 'width'"),
        ],
    )
    def test_malformed_documents_rejected(self, mutation, message):
        document = {
            "schema": "repro.service.requests",
            "version": 1,
            "requests": [
                {"op": "lis_length", "workload": "random", "n": 64, "seed": 1},
                {"op": "substring_query", "workload": "random", "n": 64, "seed": 1, "i": 0, "j": 8},
                {"op": "window_sweep", "workload": "random", "n": 64, "seed": 1, "width": 8},
            ],
        }
        mutation(document)
        with pytest.raises(ServiceRequestError, match=message):
            parse_requests_document(document)

    def test_non_scalar_workload_args_rejected_at_parse_time(self):
        # Lists would make the (hashable) TargetSpec grouping key blow up
        # with an opaque TypeError deep inside submit; reject them up front.
        with pytest.raises(ServiceRequestError, match="must be scalars"):
            parse_requests_document(
                {
                    "requests": [
                        {
                            "op": "lis_length",
                            "workload": "random",
                            "n": 32,
                            "workload_args": {"weights": [1, 2]},
                        }
                    ]
                }
            )

    def test_op_target_compatibility_enforced(self):
        with pytest.raises(ServiceRequestError, match="sequence target"):
            parse_requests_document(
                {"requests": [{"op": "lis_length", "string_workload": "random_pair", "n": 16}]}
            )
        with pytest.raises(ServiceRequestError, match="string-pair target"):
            parse_requests_document(
                {"requests": [{"op": "lcs_length", "workload": "random", "n": 16}]}
            )

    def test_refresh_requests_parse(self):
        document = {
            "schema": "repro.service.requests",
            "version": 2,
            "requests": [
                {"op": "refresh", "workload": "random", "n": 32, "seed": 2, "append": [7, 1, 9]}
            ],
        }
        _, requests = parse_requests_document(document)
        assert requests[0].op == "refresh"
        assert requests[0].append == (7.0, 1.0, 9.0)
        assert requests[0].index_kind() == "lis:value"

    def test_refresh_requires_append_and_sequence_target(self):
        with pytest.raises(ServiceRequestError, match="needs 'append'"):
            parse_requests_document(
                {"requests": [{"op": "refresh", "workload": "random", "n": 16}]}
            )
        with pytest.raises(ServiceRequestError, match="sequence target"):
            parse_requests_document(
                {
                    "requests": [
                        {"op": "refresh", "string_workload": "random_pair", "n": 16, "append": [1]}
                    ]
                }
            )

    def test_version_1_documents_still_parse(self):
        document = {
            "schema": "repro.service.requests",
            "version": 1,
            "requests": [{"op": "lis_length", "workload": "random", "n": 16, "seed": 1}],
        }
        _, requests = parse_requests_document(document)
        assert requests[0].op == "lis_length"

    def test_cli_default_seed_applies_only_when_target_omits_seed(self):
        document = {
            "requests": [
                {"op": "lis_length", "workload": "random", "n": 16},
                {"op": "lis_length", "workload": "random", "n": 16, "seed": 3},
            ]
        }
        _, requests = parse_requests_document(document, default_seed=9)
        assert requests[0].target.seed == 9
        assert requests[1].target.seed == 3
        _, requests = parse_requests_document(document)
        assert requests[0].target.seed == 0


# -------------------------------------------------------------------- refresh
class TestRefresh:
    def test_refresh_patches_bit_identically_and_reinserts(self):
        service = QueryService()
        target = TargetSpec(kind="sequence", workload="random", n=96, seed=4)
        appended = (5.0, 1.0, 99.0)
        batch = service.submit(
            [QueryRequest(op="refresh", target=target, request_id="r", append=appended)]
        )
        outcome = batch.by_id()["r"]
        extended = np.concatenate(
            [np.asarray(target.realise(), dtype=np.float64), appended]
        )
        rebuilt = build_lis_index(extended, kind="lis:value")
        assert outcome.index_fingerprint == rebuilt.fingerprint
        assert outcome.result == rebuilt.full_length()
        patched = service.cache.get(rebuilt.fingerprint)
        assert patched is not None, "patched index must be re-inserted into the cache"
        assert patched.semilocal.matrix == rebuilt.semilocal.matrix
        assert patched.provenance["mode"] == "refresh"
        assert patched.provenance["appended"] == len(appended)
        assert service.stats()["indexes_refreshed"] == 1

    def test_refresh_reuses_a_cached_base_index(self):
        service = QueryService()
        target = TargetSpec(kind="sequence", workload="random", n=64, seed=5)
        service.submit(
            [QueryRequest(op="rank_interval_query", target=target, request_id="warm", x=0, y=64)]
        )
        batch = service.submit(
            [QueryRequest(op="refresh", target=target, request_id="r", append=(1.0,))]
        )
        assert batch.by_id()["r"].cache_hit, "the base index build must be amortised"
        assert batch.indexes_reused == 1

    def test_refreshed_index_serves_follow_up_inline_queries(self):
        service = QueryService()
        target = TargetSpec(kind="sequence", workload="random", n=48, seed=6)
        service.submit(
            [QueryRequest(op="refresh", target=target, request_id="r", append=(7.0, 2.0))]
        )
        extended = tuple(
            np.concatenate([np.asarray(target.realise(), dtype=np.float64), [7.0, 2.0]]).tolist()
        )
        inline = TargetSpec(kind="sequence", data=extended)
        batch = service.submit(
            [QueryRequest(op="rank_interval_query", target=inline, request_id="q", x=0, y=50)]
        )
        outcome = batch.by_id()["q"]
        assert outcome.cache_hit, "the refreshed index must serve the extended target"
        assert outcome.result == lis_length(np.asarray(extended))

    def test_refresh_strictness_is_respected(self):
        sequence = np.asarray([2.0, 2.0, 2.0, 2.0])
        target = TargetSpec(kind="sequence", data=tuple(sequence.tolist()))
        service = QueryService()
        batch = service.submit(
            [
                QueryRequest(
                    op="refresh", target=target, request_id="r", append=(2.0, 2.0), strict=False
                )
            ]
        )
        assert batch.by_id()["r"].result == 6  # non-decreasing chain of equal values

    def test_refresh_rejects_empty_append(self):
        service = QueryService()
        target = TargetSpec(kind="sequence", data=(1.0, 2.0))
        with pytest.raises(ServiceRequestError, match="at least one appended symbol"):
            service.refresh(target, np.empty(0))


# ----------------------------------------------------------------- serve CLI
class TestServeCLI:
    def _write_requests(self, tmp_path, n=96):
        document = {
            "schema": "repro.service.requests",
            "version": 1,
            "defaults": {"mode": "sequential"},
            "requests": [
                {"op": "lis_length", "workload": "random", "n": n, "seed": 2, "id": "len"},
                {
                    "op": "substring_query",
                    "workload": "random",
                    "n": n,
                    "seed": 2,
                    "i": [0, 16],
                    "j": [n, 64],
                    "id": "sub",
                },
            ],
        }
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(document))
        return path

    def test_serve_writes_validated_artifact_with_cache_hits(self, tmp_path, capsys):
        requests_path = self._write_requests(tmp_path)
        artifact_path = tmp_path / "serve.json"
        code = cli_main(
            [
                "serve",
                "--requests",
                str(requests_path),
                "--repeat",
                "2",
                "--artifact",
                str(artifact_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "submission 2/2" in out
        document = load_artifact(str(artifact_path))
        assert document["experiment"] == "serve"
        assert len(document["points"]) == 4  # 2 requests x 2 submissions
        assert document["service"]["cache"]["hits"] >= 1
        hits = [point["metrics"]["cache_hit"] for point in document["points"]]
        assert hits == [False, False, True, True]
        assert cli_main(["validate", str(artifact_path)]) == 0

    def test_serve_rejects_bad_inputs(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert cli_main(["serve", "--requests", str(missing)]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text('{"requests": []}')
        assert cli_main(["serve", "--requests", str(bad)]) == 1


# -------------------------------------------------- service_throughput spec
class TestServiceThroughputSpec:
    def test_point_answers_identical_across_backends(self):
        rows = [
            run_service_throughput_point(
                workload="random", batch=16, backend=backend, n=256, seed=7
            )
            for backend in BACKENDS
        ]
        checksums = {row["answers_checksum"] for row in rows}
        assert len(checksums) == 1
        for row in rows:
            assert row["cache_hits"] >= 1 and row["cache_misses"] >= 1
            assert row["speedup"] > 1.0

    def test_checks_reject_divergent_backends(self):
        from repro.experiments import PointResult

        good = run_service_throughput_point("random", 8, "serial", n=128, seed=7)
        bad = dict(good, answers_checksum=good["answers_checksum"] + 1)
        points = [
            PointResult(params={"workload": "random", "batch": 8, "backend": "serial"}, metrics=good),
            PointResult(params={"workload": "random", "batch": 8, "backend": "thread"}, metrics=bad),
        ]
        with pytest.raises(AssertionError, match="diverge"):
            check_service_throughput(points)


# ------------------------------------------------------- lenient parsing (v2)
class TestLenientParsing:
    """The per-request validation gap: one bad op must not abort the batch."""

    def _batch(self, bad_entry):
        return {
            "schema": "repro.service.requests",
            "version": 2,
            "requests": [
                {"op": "lis_length", "id": "good0", "workload": "random", "n": 64, "seed": 7},
                bad_entry,
                {"op": "substring_query", "id": "good2", "workload": "random", "n": 64,
                 "seed": 7, "i": 0, "j": 32},
            ],
        }

    def test_malformed_op_becomes_per_request_error(self):
        from repro.service import parse_requests_lenient

        document = self._batch({"op": "bogus", "id": "bad1", "workload": "random", "n": 64})
        defaults, parsed, errors = parse_requests_lenient(document)
        assert [idx for idx, _ in parsed] == [0, 2]
        assert [request.request_id for _, request in parsed] == ["good0", "good2"]
        assert len(errors) == 1
        assert errors[0]["index"] == 1 and errors[0]["id"] == "bad1"
        assert "unknown op" in errors[0]["error"]

    @pytest.mark.parametrize(
        "bad_entry",
        [
            {"op": "lis_length"},  # no target
            {"op": "substring_query", "workload": "random", "n": 64},  # missing i/j
            {"op": "lis_length", "string_workload": "correlated_pair", "n": 64},  # kind mismatch
            "not-an-object",
            {"op": "lis_length", "workload": "nope", "n": 64},  # unknown workload
        ],
    )
    def test_every_malformation_is_isolated(self, bad_entry):
        from repro.service import parse_requests_lenient

        _, parsed, errors = parse_requests_lenient(self._batch(bad_entry))
        assert len(parsed) == 2 and len(errors) == 1
        assert errors[0]["index"] == 1

    def test_strict_parser_still_aborts_whole_batch(self):
        # Pins the historical strict behaviour the CLI depends on.
        document = self._batch({"op": "bogus", "workload": "random", "n": 64})
        with pytest.raises(ServiceRequestError, match="unknown op"):
            parse_requests_document(document)

    def test_malformed_envelope_still_raises(self):
        from repro.service import parse_requests_lenient

        for document in ({"schema": "wrong"}, {"requests": []}, [], {"requests": "x"}):
            with pytest.raises(ServiceRequestError):
                parse_requests_lenient(document)

    def test_anonymous_bad_entries_get_positional_ids(self):
        from repro.service import parse_requests_lenient

        _, _, errors = parse_requests_lenient(self._batch({"op": "bogus", "workload": "random", "n": 4}))
        assert errors[0]["id"] == "r1"


# ------------------------------------------------------------- ensure_index
class TestEnsureIndex:
    def test_defaults_kind_by_target_and_caches(self):
        service = QueryService(cache=IndexCache())
        target = TargetSpec(kind="sequence", workload="random", n=128, seed=7)
        index, was_cached = service.ensure_index(target)
        assert index.kind == "lis:position" and not was_cached
        again, was_cached = service.ensure_index(target)
        assert was_cached and again.fingerprint == index.fingerprint

        pair = TargetSpec(kind="string_pair", workload="correlated_pair", n=64, seed=3)
        index, _ = service.ensure_index(pair)
        assert index.kind == "lcs"

    def test_rejects_incompatible_kind(self):
        service = QueryService(cache=IndexCache())
        sequence = TargetSpec(kind="sequence", workload="random", n=64, seed=7)
        pair = TargetSpec(kind="string_pair", workload="correlated_pair", n=64, seed=3)
        with pytest.raises(ServiceRequestError, match="does not fit"):
            service.ensure_index(sequence, "lcs")
        with pytest.raises(ServiceRequestError, match="does not fit"):
            service.ensure_index(pair, "lis:position")
        with pytest.raises(ServiceRequestError, match="unknown index kind"):
            service.ensure_index(sequence, "bogus")

    def test_shares_fingerprints_with_submit(self):
        service = QueryService(cache=IndexCache())
        target = TargetSpec(kind="sequence", workload="random", n=128, seed=7)
        service.ensure_index(target, "lis:position")
        batch = service.submit(
            [QueryRequest(op="lis_length", target=target, request_id="q")]
        )
        assert batch.outcomes[0].cache_hit
