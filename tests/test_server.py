"""Tests for the HTTP front-end (:mod:`repro.server`).

The concurrency harness every later scaling PR regresses against:

* bit-identity — N concurrent clients through the server must match serial
  :class:`QueryService` evaluation exactly, with coalescing counters
  proving duplicate-fingerprint queries actually merged;
* fault injection — a failing index build yields a structured error for
  its group only, the server stays up, and the in-flight pass map is
  cleaned (no poisoned fingerprint);
* backpressure — past ``max_inflight`` the server answers 429 +
  ``Retry-After``, keeps honest queue stats, and drops nothing silently.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro.service.serving as serving_module
from repro.experiments import get_spec, run_experiment
from repro.server import get_json, post_json, run_load, start_server
from repro.service import IndexCache, QueryService, parse_requests_document

TRANSPORTS = ("asyncio", "thread")


def _wait_build(url, token, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, record = get_json(f"{url}/builds/{token}")
        assert status == 200
        if record["status"] in ("done", "failed"):
            return record
        time.sleep(0.02)
    raise AssertionError(f"build {token} did not settle within {timeout}s")


def _mixed_documents():
    """Eight mixed batch documents over a handful of shared targets.

    Several documents hit the same (target, kind) groups so concurrent
    clients genuinely contend on the same fingerprints.
    """
    sequence = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]
    documents = []
    for variant in range(8):
        requests = [
            {"op": "lis_length", "id": "len", "workload": "random", "n": 512, "seed": 7},
            {
                "op": "substring_query",
                "id": "sub",
                "workload": "random",
                "n": 512,
                "seed": 7,
                "i": [variant * 8, variant * 16],
                "j": [256 + variant * 8, 512],
            },
            {
                "op": "rank_interval_query",
                "id": "rank",
                "sequence": sequence,
                "x": variant % 4,
                "y": 8 + variant % 8,
            },
            {
                "op": "lcs_length",
                "id": "lcs",
                "string_workload": "correlated_pair",
                "n": 128,
                "seed": 3,
            },
            {
                "op": "window_sweep",
                "id": "sweep",
                "workload": "near_sorted",
                "n": 256,
                "seed": 5,
                "width": 64 + 8 * variant,
                "step": 32,
            },
        ]
        documents.append(
            {"schema": "repro.service.requests", "version": 2, "requests": requests}
        )
    return documents


def _serial_answers(documents):
    """The oracle: every document through a fresh, single-threaded service."""
    oracle = QueryService(cache=IndexCache())
    answers = []
    for document in documents:
        _, requests = parse_requests_document(document)
        batch = oracle.submit(requests)
        answers.append([outcome.result for outcome in batch.outcomes])
    return answers


# ---------------------------------------------------------------- plumbing
@pytest.mark.parametrize("transport", TRANSPORTS)
class TestRoutes:
    def test_health_stats_and_errors(self, transport):
        handle = start_server(transport=transport)
        try:
            status, _, body = get_json(handle.url + "/healthz")
            assert status == 200 and body["transport"] == transport

            status, _, stats = get_json(handle.url + "/stats")
            assert status == 200
            assert stats["schema"] == "repro.server.stats"
            assert stats["transport"] == transport
            assert stats["aiohttp_available"] is False  # not installed here
            assert stats["requests"]["received"] == 0

            status, _, body = get_json(handle.url + "/nope")
            assert status == 404 and "error" in body

            status, _, body = post_json(handle.url + "/healthz", {})
            assert status in (400, 404)  # no POST route at /healthz

            status, _, body = post_json(handle.url + "/v2/batch", None)
            assert status == 400

            import urllib.request

            request = urllib.request.Request(
                handle.url + "/v2/batch",
                data=b"{not json",
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=10) as response:
                    status = response.status
            except Exception as exc:  # noqa: BLE001
                status = exc.code
            assert status == 400
        finally:
            handle.stop()

    def test_batch_answers_match_cli_serve_semantics(self, transport):
        handle = start_server(transport=transport)
        try:
            document = _mixed_documents()[0]
            status, _, body = post_json(handle.url + "/v2/batch", document)
            assert status == 200
            assert body["schema"] == "repro.server.batch"
            assert body["transport"] == transport
            assert body["ok"] == 5 and body["errors"] == 0
            (expected,) = _serial_answers([document])
            observed = [entry["result"] for entry in body["results"]]
            assert observed == expected
            # Warm resubmission hits the cache for every request.
            status, _, warm = post_json(handle.url + "/v2/batch", document)
            assert status == 200
            assert all(entry["cache_hit"] for entry in warm["results"])
        finally:
            handle.stop()


# ---------------------------------------------------- concurrency bit-identity
class TestConcurrentBitIdentity:
    def test_32_tasks_match_serial_oracle_with_coalescing(self):
        documents = _mixed_documents()
        expected = _serial_answers(documents)
        handle = start_server(coalesce_seconds=0.02, max_inflight=256)
        try:
            results = [None] * 32

            def worker(slot):
                variant = slot % len(documents)
                results[slot] = (variant, post_json(handle.url + "/v2/batch", documents[variant]))

            threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(32)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            for variant, (status, _, body) in results:
                assert status == 200, body
                assert body["errors"] == 0
                observed = [entry["result"] for entry in body["results"]]
                assert observed == expected[variant], (
                    f"variant {variant} diverged from the serial oracle"
                )

            _, _, stats = get_json(handle.url + "/stats")
            coalescing = stats["coalescing"]
            assert coalescing["merged_passes"] >= 1, (
                f"no pass merged concurrent requests: {coalescing}"
            )
            assert coalescing["coalesced_requests"] >= 1
            assert coalescing["failed_passes"] == 0
            assert coalescing["inflight_fingerprints"] == 0  # map fully drained
            assert stats["requests"]["received"] == 32 * 5
            assert stats["requests"]["answered"] == 32 * 5
            assert stats["requests"]["failed"] == 0
            # Coalescing genuinely saved work: fewer passes than request groups.
            assert coalescing["passes"] < 32 * 5
            timings = stats["timings"]
            assert timings["answer"]["count"] == 32 * 5
            assert timings["answer"]["max_seconds"] >= timings["answer"]["mean_seconds"]
        finally:
            handle.stop()

    def test_closed_loop_load_generator_matches_oracle(self):
        documents = _mixed_documents()[:4]
        expected = _serial_answers(documents)
        handle = start_server(coalesce_seconds=0.01)
        try:
            report = run_load(
                handle.url, documents, pattern="closed", total=24, concurrency=6
            )
            assert report.ok == 24 and report.failed == 0 and report.rejected == 0
            for variant, observed_lists in report.answers.items():
                for observed in observed_lists:
                    assert observed == expected[variant]
            assert report.qps > 0 and report.p50_ms > 0
        finally:
            handle.stop()


# ------------------------------------------------------------- fault injection
class TestFaultInjection:
    def test_failing_build_is_isolated_and_server_recovers(self, monkeypatch):
        handle = start_server(coalesce_seconds=0.0)
        try:
            lis_doc = {
                "schema": "repro.service.requests",
                "requests": [
                    {"op": "lis_length", "id": "q-lis", "workload": "random", "n": 128, "seed": 42},
                    {"op": "lcs_length", "id": "q-lcs", "s": [1, 2, 3, 4], "t": [2, 3, 4, 5]},
                ],
            }

            real_builder = serving_module.build_lis_index

            def exploding_builder(*args, **kwargs):
                raise RuntimeError("injected build failure")

            monkeypatch.setattr(serving_module, "build_lis_index", exploding_builder)
            status, _, body = post_json(handle.url + "/v2/batch", lis_doc)
            assert status == 200  # the batch answers; the group fails
            by_id = {entry["id"]: entry for entry in body["results"]}
            assert by_id["q-lis"]["status"] == "error"
            assert "injected build failure" in by_id["q-lis"]["error"]
            # The LCS group shares the batch but not the failure.
            assert by_id["q-lcs"]["status"] == "ok"
            assert by_id["q-lcs"]["result"] == 3

            _, _, stats = get_json(handle.url + "/stats")
            assert stats["coalescing"]["failed_passes"] >= 1
            assert stats["coalescing"]["inflight_fingerprints"] == 0  # not poisoned

            # Server stays up and, once the builder is healthy, the same
            # fingerprint serves fine (the pending map held no corpse).
            monkeypatch.setattr(serving_module, "build_lis_index", real_builder)
            status, _, body = post_json(handle.url + "/v2/batch", lis_doc)
            assert status == 200
            by_id = {entry["id"]: entry for entry in body["results"]}
            assert by_id["q-lis"]["status"] == "ok"
            assert isinstance(by_id["q-lis"]["result"], int)
        finally:
            handle.stop()

    def test_failure_propagates_to_every_coalesced_contributor(self, monkeypatch):
        handle = start_server(coalesce_seconds=0.05)
        try:
            def exploding_builder(*args, **kwargs):
                time.sleep(0.05)
                raise RuntimeError("injected build failure")

            monkeypatch.setattr(serving_module, "build_lis_index", exploding_builder)
            document = {
                "schema": "repro.service.requests",
                "requests": [
                    {"op": "lis_length", "id": "q", "workload": "random", "n": 64, "seed": 99}
                ],
            }
            results = []

            def worker():
                results.append(post_json(handle.url + "/v2/batch", document))

            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for status, _, body in results:
                assert status == 200
                assert body["results"][0]["status"] == "error"
                assert "injected build failure" in body["results"][0]["error"]
            _, _, stats = get_json(handle.url + "/stats")
            assert stats["coalescing"]["inflight_fingerprints"] == 0
            assert stats["requests"]["failed"] == 6
        finally:
            handle.stop()

    def test_failing_background_build_is_recorded(self, monkeypatch):
        handle = start_server()
        try:
            def exploding_builder(*args, **kwargs):
                raise RuntimeError("injected background failure")

            monkeypatch.setattr(serving_module, "build_lis_index", exploding_builder)
            status, _, body = post_json(
                handle.url + "/builds", {"workload": "random", "n": 64, "seed": 1}
            )
            assert status == 200
            record = _wait_build(handle.url, body["token"])
            assert record["status"] == "failed"
            assert "injected background failure" in record["error"]
            _, _, stats = get_json(handle.url + "/stats")
            assert stats["builds"]["failed"] == 1
            # Still serving.
            status, _, body = get_json(handle.url + "/healthz")
            assert status == 200
        finally:
            handle.stop()


# --------------------------------------------------------------- backpressure
class TestBackpressure:
    def test_429_with_retry_after_and_honest_stats(self, monkeypatch):
        real_builder = serving_module.build_lis_index

        def slow_builder(*args, **kwargs):
            time.sleep(0.25)
            return real_builder(*args, **kwargs)

        monkeypatch.setattr(serving_module, "build_lis_index", slow_builder)
        handle = start_server(max_inflight=2, coalesce_seconds=0.0, retry_after_seconds=0.5)
        try:
            results = []
            lock = threading.Lock()

            def worker(seed):
                # Unique seeds => unique fingerprints => no coalescing escape
                # hatch; every admitted request occupies the service thread.
                document = {
                    "schema": "repro.service.requests",
                    "requests": [
                        {"op": "lis_length", "id": f"s{seed}", "workload": "random",
                         "n": 64, "seed": seed}
                    ],
                }
                outcome = post_json(handle.url + "/v2/batch", document)
                with lock:
                    results.append(outcome)

            threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            statuses = [status for status, _, _ in results]
            assert len(statuses) == 8  # nothing silently dropped
            assert statuses.count(429) >= 1, f"no backpressure at max_inflight=2: {statuses}"
            assert statuses.count(200) >= 1
            assert statuses.count(200) + statuses.count(429) == 8
            for status, headers, body in results:
                if status == 429:
                    assert int(headers["Retry-After"]) >= 1
                    assert "capacity" in body["error"]

            _, _, stats = get_json(handle.url + "/stats")
            assert stats["peak_inflight"] <= 2
            assert stats["inflight"] == 0
            assert stats["requests"]["rejected"] == statuses.count(429)
            assert stats["requests"]["answered"] == statuses.count(200)

            # The server recovers once load subsides.
            status, _, body = post_json(
                handle.url + "/v2/batch",
                {"schema": "repro.service.requests",
                 "requests": [{"op": "lis_length", "workload": "random", "n": 64, "seed": 0}]},
            )
            assert status == 200 and body["ok"] == 1
        finally:
            handle.stop()

    def test_oversized_batch_is_a_client_error_not_backpressure(self):
        handle = start_server(max_inflight=2)
        try:
            document = {
                "schema": "repro.service.requests",
                "requests": [
                    {"op": "lis_length", "id": f"r{k}", "workload": "random", "n": 32, "seed": k}
                    for k in range(3)
                ],
            }
            status, headers, body = post_json(handle.url + "/v2/batch", document)
            assert status == 400
            assert "exceeds --max-inflight" in body["error"]
            assert "Retry-After" not in headers  # not retriable at this size
        finally:
            handle.stop()

    def test_build_queue_limit_returns_429(self, monkeypatch):
        real_builder = serving_module.build_lis_index

        def slow_builder(*args, **kwargs):
            time.sleep(0.3)
            return real_builder(*args, **kwargs)

        monkeypatch.setattr(serving_module, "build_lis_index", slow_builder)
        handle = start_server(build_queue_limit=2)
        try:
            statuses = []
            tokens = []
            for seed in range(4):
                status, _, body = post_json(
                    handle.url + "/builds", {"workload": "random", "n": 64, "seed": 100 + seed}
                )
                statuses.append(status)
                if status == 200:
                    tokens.append(body["token"])
            assert statuses.count(200) == 2
            assert statuses.count(429) == 2
            for token in tokens:
                assert _wait_build(handle.url, token)["status"] == "done"
        finally:
            handle.stop()


# ------------------------------------------------------------------- builds
class TestBuilds:
    def test_background_build_then_cache_hit(self):
        handle = start_server()
        try:
            status, _, body = post_json(
                handle.url + "/builds",
                {"workload": "random", "n": 256, "seed": 7, "kind": "lis:position"},
            )
            assert status == 200 and body["status"] == "queued"
            record = _wait_build(handle.url, body["token"])
            assert record["status"] == "done"
            assert record["cache_hit"] is False
            assert record["kind"] == "lis:position"
            assert len(record["fingerprint"]) == 64

            # A query against the pre-built target is a pure cache hit.
            status, _, answer = post_json(
                handle.url + "/v2/batch",
                {"schema": "repro.service.requests",
                 "requests": [{"op": "lis_length", "workload": "random", "n": 256, "seed": 7}]},
            )
            assert status == 200
            assert answer["results"][0]["cache_hit"] is True
            assert answer["results"][0]["index_fingerprint"] == record["fingerprint"]

            status, _, listing = get_json(handle.url + "/builds")
            assert status == 200 and len(listing["builds"]) == 1
        finally:
            handle.stop()

    def test_build_validation_errors(self):
        handle = start_server()
        try:
            status, _, body = post_json(handle.url + "/builds", {"workload": "random", "n": 64, "kind": "bogus"})
            assert status == 400 and "unknown index kind" in body["error"]
            status, _, body = post_json(handle.url + "/builds", {"op": "x"})
            assert status == 400
            status, _, body = get_json(handle.url + "/builds/b999")
            assert status == 404
        finally:
            handle.stop()


# ----------------------------------------------------------------- sessions
class TestSessions:
    def test_lis_session_lifecycle(self):
        from repro.lis import lis_length

        handle = start_server()
        try:
            values = [3, 1, 4, 1, 5, 9, 2, 6]
            status, _, state = post_json(
                handle.url + "/sessions", {"kind": "lis", "window": 6, "push": values}
            )
            assert status == 200
            sid = state["id"]
            assert state["size"] == 6  # window cap applied
            assert state["answer"] == lis_length(values[-6:])

            status, _, state = post_json(
                handle.url + f"/sessions/{sid}/push", {"symbols": [7, 8]}
            )
            assert status == 200
            assert state["dropped"] == 2
            assert state["answer"] == lis_length((values + [7, 8])[-6:])
            assert state["ticks"] == 2

            status, _, fetched = get_json(handle.url + f"/sessions/{sid}")
            assert status == 200 and fetched["answer"] == state["answer"]

            status, _, listing = get_json(handle.url + "/sessions")
            assert status == 200 and len(listing["sessions"]) == 1

            status, _, gone = post_json(handle.url + f"/sessions/{sid}/push", {"symbols": []})
            assert status == 400

            import urllib.request

            request = urllib.request.Request(
                handle.url + f"/sessions/{sid}", method="DELETE"
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                deleted = json.load(response)
            assert deleted["status"] == "deleted"
            status, _, _ = get_json(handle.url + f"/sessions/{sid}")
            assert status == 404
        finally:
            handle.stop()

    def test_lcs_session_against_dp_oracle(self):
        from repro.lcs import lcs_length_dp
        from repro.workloads import make_string_pair

        handle = start_server()
        try:
            s, t = make_string_pair("correlated_pair", 48, seed=3)
            status, _, state = post_json(
                handle.url + "/sessions",
                {"kind": "lcs", "string_workload": "correlated_pair", "n": 48, "seed": 3,
                 "push": t[:32].tolist()},
            )
            assert status == 200
            assert state["kind"] == "lcs" and state["size"] == 32
            assert state["answer"] == lcs_length_dp(s, t[:32])

            status, _, state = post_json(
                handle.url + f"/sessions/{state['id']}/push", {"symbols": t[32:].tolist()}
            )
            assert status == 200
            assert state["answer"] == lcs_length_dp(s, t)
        finally:
            handle.stop()

    def test_session_validation(self):
        handle = start_server()
        try:
            status, _, body = post_json(handle.url + "/sessions", {"kind": "bogus"})
            assert status == 400
            status, _, body = post_json(handle.url + "/sessions", {"kind": "lcs", "workload": "random", "n": 16})
            assert status == 400  # lcs needs a string-pair target
            status, _, body = post_json(handle.url + "/sessions/s999/push", {"symbols": [1]})
            assert status == 404
        finally:
            handle.stop()


# ------------------------------------------------------ per-request parse gap
class TestBatchParseErrors:
    def test_malformed_op_yields_error_slot_not_batch_abort(self):
        handle = start_server()
        try:
            document = {
                "schema": "repro.service.requests",
                "requests": [
                    {"op": "lis_length", "id": "ok0", "workload": "random", "n": 64, "seed": 7},
                    {"op": "not_an_op", "id": "bad1", "workload": "random", "n": 64, "seed": 7},
                    {"op": "substring_query", "id": "ok2", "workload": "random", "n": 64,
                     "seed": 7, "i": 0, "j": 32},
                ],
            }
            status, _, body = post_json(handle.url + "/v2/batch", document)
            assert status == 200
            assert body["ok"] == 2 and body["errors"] == 1
            entries = body["results"]
            assert [entry["id"] for entry in entries] == ["ok0", "bad1", "ok2"]
            assert entries[0]["status"] == "ok"
            assert entries[1]["status"] == "error" and "unknown op" in entries[1]["error"]
            assert entries[2]["status"] == "ok"
            _, _, stats = get_json(handle.url + "/stats")
            assert stats["requests"]["parse_errors"] == 1
        finally:
            handle.stop()

    def test_envelope_errors_still_reject_whole_batch(self):
        handle = start_server()
        try:
            status, _, body = post_json(handle.url + "/v2/batch", {"schema": "wrong", "requests": [{}]})
            assert status == 400
            status, _, body = post_json(handle.url + "/v2/batch", {"requests": []})
            assert status == 400
        finally:
            handle.stop()


# -------------------------------------------------------- service_latency spec
class TestServiceLatencySpec:
    def test_quick_grid_passes_checks(self):
        spec = get_spec("service_latency")
        result = run_experiment(spec, quick=True)
        assert result.checks_passed is True
        for point in result.points:
            row = point.row()
            assert row["mismatches"] == 0
            assert row["ok"] > 0 and row["failed"] == 0
            assert 0 < row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
            assert row["qps"] > 0
            assert row["aiohttp_available"] is False


# ------------------------------------------------------------------ CLI e2e
class TestServeHttpCLI:
    def test_serve_http_subprocess_cycle(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve-http", "--port", "0", "--duration", "30"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            line = process.stdout.readline()
            assert "listening on" in line, line
            url = line.split("listening on ", 1)[1].split(" ", 1)[0]
            status, _, body = get_json(url + "/healthz", timeout=10)
            assert status == 200

            document = {
                "schema": "repro.service.requests",
                "requests": [{"op": "lis_length", "workload": "random", "n": 128, "seed": 7}],
            }
            status, _, cold = post_json(url + "/v2/batch", document, timeout=30)
            assert status == 200 and cold["results"][0]["cache_hit"] is False
            status, _, warm = post_json(url + "/v2/batch", document, timeout=30)
            assert status == 200 and warm["results"][0]["cache_hit"] is True

            process.send_signal(signal.SIGINT)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, stderr
            assert "served" in stdout
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
